//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no network access, so the real `crossbeam`
//! cannot be downloaded. This shim provides the two pieces the workspace
//! uses — [`thread::scope`] (over `std::thread::scope`) and
//! [`channel`] (an MPMC queue on `Mutex` + `Condvar`) — behind
//! crossbeam-compatible signatures. Performance characteristics differ
//! (no lock-free fast paths); semantics match.

#![forbid(unsafe_code)]

pub mod thread {
    //! Scoped threads (subset of `crossbeam::thread`).

    use std::any::Any;

    /// Spawn scope handed to the [`scope`] closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope so it can
        /// spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which spawned threads may borrow from the
    /// environment; joins them all before returning.
    ///
    /// Unlike the real crossbeam, a panicking child propagates the panic
    /// out of `scope` (via `std::thread::scope`) instead of surfacing it in
    /// the returned `Result` — the `Ok` arm is therefore the only one ever
    /// returned, which satisfies every caller that `.expect(..)`s it.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    //! MPMC channels (subset of `crossbeam::channel`).

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        capacity: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half; clonable (multi-producer).
    pub struct Sender<T>(Arc<Inner<T>>);

    /// The receiving half; clonable (multi-consumer).
    pub struct Receiver<T>(Arc<Inner<T>>);

    /// Send failed: every receiver is gone. Returns the unsent value.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Receive failed: the channel is empty and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Why `try_recv` returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Why `recv_timeout` returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// A bounded MPMC channel; `send` blocks while `cap` messages queue.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(inner.clone()), Receiver(inner))
    }

    impl<T> Sender<T> {
        /// Sends, blocking while a bounded channel is full. Errs when every
        /// receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().expect("channel lock");
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = self
                    .0
                    .capacity
                    .is_some_and(|cap| st.queue.len() >= cap.max(1));
                if !full {
                    st.queue.push_back(value);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                st = self.0.not_full.wait(st).expect("channel lock");
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives, blocking while the channel is empty. Errs when it is
        /// empty and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().expect("channel lock");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.not_empty.wait(st).expect("channel lock");
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.state.lock().expect("channel lock");
            if let Some(v) = st.queue.pop_front() {
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receives, blocking up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.0.state.lock().expect("channel lock");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .0
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .expect("channel lock");
                st = guard;
            }
        }

        /// Blocking iterator draining the channel until disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter(self)
        }
    }

    /// See [`Receiver::iter`].
    pub struct Iter<'a, T>(&'a Receiver<T>);

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().expect("channel lock").senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().expect("channel lock").receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().expect("channel lock");
            st.senders -= 1;
            if st.senders == 0 {
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().expect("channel lock");
            st.receivers -= 1;
            if st.receivers == 0 {
                self.0.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvError, TryRecvError};
    use super::thread;
    use std::time::Duration;

    #[test]
    fn scope_joins_and_borrows() {
        let data = [1, 2, 3];
        let mut results = Vec::new();
        thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            for h in handles {
                results.push(h.join().expect("no panic"));
            }
        })
        .expect("scope");
        results.sort();
        assert_eq!(results, vec![10, 20, 30]);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let out = thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 7).join().expect("inner"))
                .join()
                .expect("outer")
        })
        .expect("scope");
        assert_eq!(out, 7);
    }

    #[test]
    fn unbounded_fifo_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn mpmc_distributes_all_items() {
        let (tx, rx) = bounded::<usize>(2);
        let n = 100;
        let total: usize = thread::scope(|s| {
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move |_| rx.iter().count())
                })
                .collect();
            drop(rx); // workers hold the only receivers
            for i in 0..n {
                tx.send(i).unwrap();
            }
            drop(tx);
            consumers.into_iter().map(|h| h.join().expect("ok")).sum()
        })
        .expect("scope");
        assert_eq!(total, n);
    }

    #[test]
    fn try_and_timeout_receive() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        assert!(rx.recv_timeout(Duration::from_millis(10)).is_err());
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_once_receivers_are_gone() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
