//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be downloaded. This shim keeps the workspace's property tests
//! running by implementing the API subset they use: the [`proptest!`]
//! macro, [`Strategy`] with `prop_map`/`prop_filter`/`boxed`, range and
//! tuple strategies, [`collection::vec`], [`prop_oneof!`], [`any`], and
//! the `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case reports the case number and panics
//!   with the original assertion message; it is not minimized.
//! - **Deterministic seeding.** Each test derives its RNG seed from the
//!   test-function name (override with the `PROPTEST_SEED` environment
//!   variable), so failures reproduce across runs and machines.

#![forbid(unsafe_code)]

use rand::SeedableRng;

/// The RNG driving value generation.
pub type TestRng = rand::rngs::StdRng;

/// Per-run configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Derives the RNG for one property test. Seeded from the test name so
/// runs are reproducible; `PROPTEST_SEED` overrides.
pub fn test_rng(test_name: &str) -> TestRng {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = s.parse::<u64>() {
            return TestRng::seed_from_u64(seed);
        }
    }
    // FNV-1a over the name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

pub mod strategy {
    //! Value-generation strategies.

    use super::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values (subset of `proptest::strategy::Strategy`;
    /// generation only, no value trees or shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Discards generated values failing `f` (regenerates, bounded).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                source: self,
                whence,
                f,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe generation, for [`BoxedStrategy`].
    trait DynStrategy<V> {
        fn dyn_generate(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.dyn_generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        source: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.source.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter `{}` rejected 1000 candidates", self.whence);
        }
    }

    /// Uniform choice among boxed alternatives (backs [`prop_oneof!`]).
    pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            assert!(!self.0.is_empty(), "prop_oneof! needs at least one branch");
            let i = rng.gen_range(0..self.0.len());
            self.0[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
    }

    /// Types with a canonical whole-domain strategy (subset of
    /// `proptest::arbitrary::Arbitrary`).
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rand::Standard::standard(rng)
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

    /// Whole-domain strategy for `T` (use as `any::<u64>()`).
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Sizes accepted by [`vec`]: a fixed `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// A `Vec` of values from `element`, with a length drawn from `size`.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `Vec`s (subset of `proptest::collection::vec`).
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property (panics with the case context).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests (subset of `proptest::proptest!`): an optional
/// `#![proptest_config(..)]` header followed by `fn name(arg in strategy,
/// ...) { body }` items, each becoming a `#[test]` that runs the body over
/// `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                // Mirror the real proptest: the body runs in a closure
                // returning `Result`, so `return Ok(())` exits one case.
                #[allow(clippy::redundant_closure_call)]
                let __result: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!("case {}/{} failed: {e}", __case + 1, config.cases);
                }
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::test_rng("ranges");
        for _ in 0..200 {
            let v = (0u64..10).generate(&mut rng);
            assert!(v < 10);
            let f = (0.25f64..=0.75).generate(&mut rng);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn map_filter_and_vec_compose() {
        let mut rng = crate::test_rng("compose");
        let strat = crate::collection::vec((0u32..5).prop_map(|x| x * 2), 1..4);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|x| x % 2 == 0 && *x < 10));
        }
        let evens = (0u32..100).prop_filter("even", |x| x % 2 == 0);
        for _ in 0..100 {
            assert_eq!(evens.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn oneof_draws_from_every_branch() {
        let mut rng = crate::test_rng("oneof");
        let strat = prop_oneof![(0u32..1).prop_map(|_| 1u32), (0u32..1).prop_map(|_| 2u32)];
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[strat.generate(&mut rng) as usize - 1] = true;
        }
        assert_eq!(seen, [true, true]);
    }

    #[test]
    fn seeding_is_deterministic_per_name() {
        if std::env::var("PROPTEST_SEED").is_ok() {
            return; // explicit seed overrides the per-name derivation
        }
        let a: Vec<u64> = {
            let mut rng = crate::test_rng("x");
            (0..5).map(|_| any::<u64>().generate(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = crate::test_rng("x");
            (0..5).map(|_| any::<u64>().generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut rng = crate::test_rng("y");
            (0..5).map(|_| any::<u64>().generate(&mut rng)).collect()
        };
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(a in 0u64..100, b in 0u64..100) {
            prop_assert!(a < 100 && b < 100);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, a + b + 1);
        }

        #[test]
        fn tuples_and_just(pair in (0i64..3, Just(7i64))) {
            prop_assert!(pair.0 < 3);
            prop_assert_eq!(pair.1, 7);
        }
    }
}
