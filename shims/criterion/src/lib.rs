//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be downloaded. This shim keeps the workspace's benches compiling
//! and running: it implements `criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `BenchmarkGroup` configuration methods,
//! `bench_function`/`bench_with_input`, and `Bencher::iter`, measuring
//! wall-clock time and printing a `name  time: [median]` line per bench.
//! No statistical analysis, no HTML reports, no regression detection.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(
            name,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            f,
        );
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            f,
        );
        self
    }

    /// Benchmarks `f` under `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op beyond dropping).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id from a function name and a displayed parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.parameter.is_empty() {
            write!(f, "{}", self.function)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: String::new(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: String::new(),
        }
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures `f`: warm-up, then `sample_size` timed samples (bounded by
    /// the measurement budget), each averaging enough iterations to be
    /// clock-resolvable.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut iters_done = 0u32;
        while warm_start.elapsed() < self.warm_up_time || iters_done == 0 {
            black_box(f());
            iters_done += 1;
            if iters_done >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed() / iters_done.max(1);
        // Aim each sample at ~1ms of work, at least one iteration.
        let iters_per_sample = if per_iter.is_zero() {
            1000
        } else {
            (Duration::from_millis(1).as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 100_000)
                as u32
        };
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            self.samples.push(t.elapsed() / iters_per_sample);
            if budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    mut f: F,
) {
    let mut b = Bencher {
        sample_size,
        warm_up_time,
        measurement_time,
        samples: Vec::new(),
    };
    f(&mut b);
    b.samples.sort();
    let median = if b.samples.is_empty() {
        Duration::ZERO
    } else {
        b.samples[b.samples.len() / 2]
    };
    let (lo, hi) = (
        b.samples.first().copied().unwrap_or_default(),
        b.samples.last().copied().unwrap_or_default(),
    );
    println!("{name:<60} time: [{lo:>10.2?} {median:>10.2?} {hi:>10.2?}]");
}

/// Declares a benchmark group function calling each target with a shared
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = false;
        g.bench_with_input(BenchmarkId::new("noop", 1), &41u64, |b, &x| {
            b.iter(|| x + 1);
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn group_macros_compile() {
        fn target(c: &mut Criterion) {
            c.bench_function("t", |b| b.iter(|| 1 + 1));
        }
        criterion_group!(benches, target);
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }
}
