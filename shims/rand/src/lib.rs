//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! the real `rand` cannot be downloaded. This shim implements the small API
//! subset the workspace uses — `SeedableRng::seed_from_u64`, `Rng::gen`,
//! `Rng::gen_range` over integer and float ranges, `Rng::gen_bool` — on top
//! of a seeded **xoshiro256++** generator (public-domain algorithm by
//! Blackman & Vigna). Streams differ from the real `rand`'s ChaCha-based
//! `StdRng`, but every consumer in this workspace only relies on seeded
//! determinism, not on a specific stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable random generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed type (fixed-width byte array in the real crate).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed (splitmix64 expansion, like
    /// the real crate).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// A low-level `u64` source (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// splitmix64 — used for seed expansion.
pub(crate) struct SplitMix64(pub u64);

impl SplitMix64 {
    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ core state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256 {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // All-zero state is the one degenerate seed for xoshiro.
        if s == [0; 4] {
            s = [
                0x9E3779B97F4A7C15,
                0x6A09E667F3BCC909,
                0xBB67AE8584CAA73B,
                0x3C6EF372FE94F82B,
            ];
        }
        Xoshiro256 { s }
    }
}

/// Sampling from a range (subset of `rand::distributions::uniform`).
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi - lo) as u64 + 1;
                lo + (reject_sample(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as $u).wrapping_sub(lo as $u) as u64 + 1;
                lo.wrapping_add(reject_sample(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = unit_f64(rng) as $t;
                // Half-open: u ∈ [0, 1), so start + u·(end−start) < end for
                // any representable span.
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let u = unit_inclusive_f64(rng) as $t;
                (lo + u * (hi - lo)).clamp(lo, hi)
            }
        }
    )*};
}
impl_sample_float!(f32, f64);

/// Uniform in `[0, span)` by rejection (unbiased).
fn reject_sample<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// Uniform in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform in `[0, 1]` with 53 bits of precision.
fn unit_inclusive_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
}

/// Values `gen()` can produce directly (subset of
/// `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A value of any [`Standard`] type.
    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} not in [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{SeedableRng, Xoshiro256};

    /// Stand-in for `rand::rngs::StdRng` (xoshiro256++ here, ChaCha12 in
    /// the real crate — seeded determinism is preserved, streams differ).
    pub type StdRng = Xoshiro256;

    /// Stand-in for `rand::rngs::SmallRng`.
    pub type SmallRng = Xoshiro256;

    /// Entropy-less fallback for `rand::thread_rng()`-style use: a fixed
    /// documented seed, so code paths relying on it stay deterministic.
    pub fn deterministic() -> StdRng {
        StdRng::seed_from_u64(0x5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let v = rng.gen_range(0usize..3);
            assert!(v < 3);
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&v));
            let v = rng.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn full_u64_range_is_supported() {
        let mut rng = StdRng::seed_from_u64(11);
        // Must not overflow the span computation.
        let _ = rng.gen_range(0u64..=u64::MAX);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
    }

    #[test]
    fn bounds_are_hit() {
        // Small inclusive range: both endpoints appear.
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn uniformity_is_rough_but_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "bucket count {c}");
        }
    }
}
