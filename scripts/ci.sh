#!/usr/bin/env bash
# The full CI gate, runnable locally: formatting, lints, build, tests.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "CI gate passed."
