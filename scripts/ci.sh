#!/usr/bin/env bash
# The full CI gate, runnable locally: formatting, lints, build, tests.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> ordering-kernel equivalence tests"
cargo test -q -p qpo-core --test kernel_equivalence

echo "==> serving-layer session equivalence tests"
cargo test -q -p qpo-exec --test session_equivalence

echo "==> live introspection server smoke (std TcpStream client, byte-identity vs offline exporters)"
cargo test -q -p qpo-exec --test introspection_server

echo "==> source-backend integration tests (against a live qpo-source-server)"
cargo build --release -p qpo-exec --bin qpo-source-server
addr_file="$(mktemp /tmp/qpo-source-addr.XXXXXX)"
rm -f "$addr_file"
./target/release/qpo-source-server --quiet --addr-file "$addr_file" &
server_pid=$!
trap 'kill "$server_pid" 2>/dev/null || true' EXIT
for _ in $(seq 1 50); do
  [[ -s "$addr_file" ]] && break
  sleep 0.1
done
[[ -s "$addr_file" ]] || { echo "qpo-source-server never reported an address"; exit 1; }
QPO_SOURCE_SERVER_ADDR="$(cat "$addr_file")" cargo test -q -p qpo-exec --test backends

echo "==> distributed-tracing gate (traced run against the live server, validated end to end)"
cargo build --release -p qpo-bench --bin bench-backends --bin trace-validate
remote_trace="$(mktemp /tmp/qpo-remote-trace.XXXXXX.jsonl)"
./target/release/bench-backends --smoke --tcp-addr "$(cat "$addr_file")" --trace "$remote_trace"
./target/release/trace-validate "$remote_trace"
rm -f "$remote_trace"
server_dump="$(./target/release/qpo-source-server --metrics "$(cat "$addr_file")")"
[[ -n "$server_dump" ]] || { echo "server span journal is empty after a traced run"; exit 1; }
echo "$server_dump" | tail -n 3
kill "$server_pid" 2>/dev/null || true
rm -f "$addr_file"

echo "==> trace journal validation gate"
cargo build --release --example flaky_sources -p query-plan-ordering
cargo build --release -p qpo-bench --bin trace-validate
trace_file="$(mktemp /tmp/qpo-trace.XXXXXX.jsonl)"
./target/release/examples/flaky_sources --trace "$trace_file" > /dev/null
./target/release/trace-validate "$trace_file"
rm -f "$trace_file"

echo "==> ordering-kernel bench smoke (release)"
bash scripts/bench.sh --smoke

echo "==> serving-cache bench smoke (release)"
cargo build --release -p qpo-bench --bin bench-serving
./target/release/bench-serving --smoke

echo "==> any-k streaming bench smoke (release)"
cargo build --release -p qpo-bench --bin bench-anyk
./target/release/bench-anyk --smoke

echo "==> shared-execution memo bench smoke (release)"
cargo build --release -p qpo-bench --bin bench-sharing
./target/release/bench-sharing --smoke

echo "==> source-backend bench smoke (release: sim/store/tcp answer equivalence)"
cargo build --release -p qpo-bench --bin bench-backends
./target/release/bench-backends --smoke

echo "CI gate passed."
