#!/usr/bin/env bash
# The full CI gate, runnable locally: formatting, lints, build, tests.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> ordering-kernel equivalence tests"
cargo test -q -p qpo-core --test kernel_equivalence

echo "==> ordering-kernel bench smoke (release)"
bash scripts/bench.sh --smoke

echo "CI gate passed."
