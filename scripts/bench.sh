#!/usr/bin/env bash
# Ordering-kernel benchmark: incremental kernel vs the preserved reference
# loop, with CountingMeasure eval counters and wall-clock per workload.
# Writes BENCH_ordering.json at the repo root (committed, so future PRs
# can diff their numbers against this baseline).
#
# Usage:
#   scripts/bench.sh            # full workloads, rewrite BENCH_ordering.json
#   scripts/bench.sh --smoke    # reduced workloads, no file write; exits
#                               # non-zero if the >=2x eval-reduction gate
#                               # fails (CI regression check)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release -p qpo-bench --bin bench-ordering"
cargo build --release -p qpo-bench --bin bench-ordering

if [[ "${1:-}" == "--smoke" ]]; then
  echo "==> bench-ordering --smoke"
  ./target/release/bench-ordering --smoke
else
  echo "==> bench-ordering --out BENCH_ordering.json"
  ./target/release/bench-ordering --out BENCH_ordering.json
fi
