#!/usr/bin/env bash
# Benchmark drivers, committed-baseline style: each bench writes a JSON
# file at the repo root so future PRs can diff their numbers against this
# PR's baseline.
#
# - bench-ordering: incremental kernel vs the preserved reference loop,
#   with CountingMeasure eval counters (BENCH_ordering.json).
# - bench-serving: the canonicalized reformulation cache under a mixed
#   cold/repeated/renamed workload (BENCH_serving.json).
# - bench-anyk: time-to-k-th-tuple of the any-k stream vs the
#   plan-at-a-time ranked baseline, merged into BENCH_ordering.json as
#   the "anyk" section (after bench-ordering rewrites the base file).
# - bench-sharing: cross-plan shared-execution memo on/off (live source
#   accesses, tuple throughput, time-to-k-th-plan), merged into
#   BENCH_ordering.json as the "sharing" section.
# - bench-backends: the same query through the sim/store/tcp source
#   backends (access p50/p95, answer equivalence), merged into
#   BENCH_ordering.json as the "backends" section.
#
# Usage:
#   scripts/bench.sh            # full workloads, rewrite both JSON files
#   scripts/bench.sh --smoke    # reduced ordering workloads, no file
#                               # writes; exits non-zero if the >=2x
#                               # eval-reduction gate fails (CI check;
#                               # the serving smoke runs separately in
#                               # scripts/ci.sh)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release -p qpo-bench --bin bench-ordering"
cargo build --release -p qpo-bench --bin bench-ordering

if [[ "${1:-}" == "--smoke" ]]; then
  echo "==> bench-ordering --smoke"
  ./target/release/bench-ordering --smoke
else
  echo "==> bench-ordering --out BENCH_ordering.json"
  ./target/release/bench-ordering --out BENCH_ordering.json
  echo "==> cargo build --release -p qpo-bench --bin bench-anyk"
  cargo build --release -p qpo-bench --bin bench-anyk
  echo "==> bench-anyk --merge BENCH_ordering.json"
  ./target/release/bench-anyk --merge BENCH_ordering.json
  echo "==> cargo build --release -p qpo-bench --bin bench-sharing"
  cargo build --release -p qpo-bench --bin bench-sharing
  echo "==> bench-sharing --merge BENCH_ordering.json"
  ./target/release/bench-sharing --merge BENCH_ordering.json
  echo "==> cargo build --release -p qpo-bench --bin bench-backends"
  cargo build --release -p qpo-bench --bin bench-backends
  echo "==> bench-backends --merge BENCH_ordering.json"
  ./target/release/bench-backends --merge BENCH_ordering.json
  echo "==> cargo build --release -p qpo-bench --bin bench-serving"
  cargo build --release -p qpo-bench --bin bench-serving
  echo "==> bench-serving --out BENCH_serving.json"
  ./target/release/bench-serving --out BENCH_serving.json
fi
