//! A miniature of the paper's Figure 6: time to the first k best plans —
//! and, one level deeper, time to the first k best *tuples*.
//!
//! Generates a synthetic instance (query length 3, configurable bucket
//! size) and measures, for each algorithm, the wall-clock time and the
//! number of plan evaluations needed to emit the 1st, 10th and 100th best
//! plan under plan coverage and under cost-with-source-failure. Then
//! switches to the movie domain and streams the globally ranked any-k
//! tuple stream with its live quality curve.
//!
//! Run with: `cargo run --release --example anytime_answers [bucket_size]`

use query_plan_ordering::prelude::*;
use std::time::Instant;

fn run_case<M: UtilityMeasure>(
    label: &str,
    inst: &ProblemInstance,
    measure: M,
    streamer_applies: bool,
) {
    println!("\n== {label} (plan space: {} plans) ==", inst.plan_count());
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>12}",
        "algorithm", "k=1", "k=10", "k=100", "evals@100"
    );
    let ks = [1usize, 10, 100];

    let mut rows: Vec<(&str, Vec<f64>, u64)> = Vec::new();
    let mut streamer_work: Option<StreamerStats> = None;

    // Streamer (single instance reused across k — it is incremental).
    if streamer_applies {
        let counting = CountingMeasure::new(&measure);
        let mut alg = Streamer::new(inst, &counting, &ByExpectedTuples).unwrap();
        let start = Instant::now();
        let mut times = Vec::new();
        let mut emitted = 0;
        for &k in &ks {
            while emitted < k && alg.next_plan().is_some() {
                emitted += 1;
            }
            times.push(start.elapsed().as_secs_f64() * 1e3);
        }
        streamer_work = Some(alg.stats());
        rows.push(("streamer", times, counting.total_evals()));
    }

    // iDrips.
    {
        let counting = CountingMeasure::new(&measure);
        let mut alg = IDrips::new(inst, &counting, ByExpectedTuples);
        let start = Instant::now();
        let mut times = Vec::new();
        let mut emitted = 0;
        for &k in &ks {
            while emitted < k && alg.next_plan().is_some() {
                emitted += 1;
            }
            times.push(start.elapsed().as_secs_f64() * 1e3);
        }
        rows.push(("idrips", times, counting.total_evals()));
    }

    // PI.
    {
        let counting = CountingMeasure::new(&measure);
        let mut alg = Pi::new(inst, &counting);
        let start = Instant::now();
        let mut times = Vec::new();
        let mut emitted = 0;
        for &k in &ks {
            while emitted < k && alg.next_plan().is_some() {
                emitted += 1;
            }
            times.push(start.elapsed().as_secs_f64() * 1e3);
        }
        rows.push(("pi", times, counting.total_evals()));
    }

    for (name, times, evals) in rows {
        println!(
            "{:<10} {:>8.2}ms {:>8.2}ms {:>8.2}ms {:>12}",
            name, times[0], times[1], times[2], evals
        );
    }
    if let Some(s) = streamer_work {
        println!(
            "streamer work: {} refinements, {} links created / {} recycled / {} invalidated, \
             {} utility recomputations",
            s.refinements,
            s.links_created,
            s.links_recycled,
            s.links_invalidated,
            s.utility_recomputations
        );
    }
}

/// Streams the globally ranked tuple stream of the movie mediator: the
/// any-k layer delivers the best answers first, pulling plans lazily
/// only when the next tuple needs them, and the tuple-quality tracker
/// reports cumulative score mass and regret against the offline exact
/// ranked list as the stream advances.
fn stream_ranked_tuples() {
    println!("\n== any-k: globally ranked tuple stream (movie domain) ==");
    let mediator = Mediator::new(movie_domain(), MOVIE_UNIVERSE, &["ford"]);
    let prepared = mediator.prepare(&movie_query()).unwrap();
    let mut session = QuerySession::new(&mediator, &prepared, &Coverage, Strategy::IDrips)
        .unwrap()
        .with_tuple_scorer(CatalogScorer::new(MOVIE_UNIVERSE).with_jitter(0.25))
        .with_tuple_quality(true);
    println!(
        "{:<4} {:>8} {:>7} {:>10} {:>10}  tuple",
        "k", "score", "plans", "mass", "regret"
    );
    let mut shown = 0usize;
    while let Some(rt) = session.next_tuple() {
        shown += 1;
        let plans = session.plans_emitted();
        let quality = session.tuple_quality().expect("tuple quality enabled");
        if shown <= 8 {
            println!(
                "{:<4} {:>8.3} {:>7} {:>10.3} {:>10.6}  {:?}",
                shown, rt.score, plans, quality.mass, quality.regret, rt.tuple
            );
        }
    }
    let quality = session.tuple_quality().expect("tuple quality enabled");
    println!(
        "... {shown} tuples total over {} plans; final mass {:.3}, regret vs offline \
         exact sort {:.6} (an exact stream trails the oracle by nothing)",
        session.plans_emitted(),
        quality.mass,
        quality.regret
    );
}

fn main() {
    let bucket_size: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);

    let inst = GeneratorConfig::new(3, bucket_size)
        .with_seed(42)
        .with_overlap_rate(0.3)
        .build();

    run_case("plan coverage", &inst, Coverage, true);
    run_case(
        "cost with source failure (no caching)",
        &inst,
        FailureCost::without_caching(),
        true,
    );
    run_case(
        "cost with source failure (caching)",
        &inst,
        FailureCost::with_caching(),
        false, // no diminishing returns → Streamer inapplicable
    );
    run_case(
        "average monetary cost per tuple",
        &inst,
        MonetaryCost::without_caching(),
        true,
    );

    println!(
        "\nExpected shapes (paper, Figure 6): Streamer ≪ PI for the first plans under \
         coverage and no-caching failure-cost; iDrips ≪ PI under caching; \
         gains shrink for the monetary measure."
    );

    stream_ranked_tuples();
}
