//! The §3 digital-camera scenario: abstraction over groups of similar
//! sources.
//!
//! The camera catalog has 24 sources in natural groups (discount resellers,
//! specialty stores, national chains, warehouse clubs; free and paid review
//! sites) with similar statistics within a group — exactly the structure §3
//! argues makes abstraction effective. This example orders the 24 × 8 plan
//! space under the average-monetary-cost measure and under coverage, and
//! reports how many plans the abstraction algorithms actually evaluated
//! versus the plan-space size.
//!
//! Run with: `cargo run --example camera_shopping`

use query_plan_ordering::prelude::*;

fn main() {
    let catalog = camera_domain();
    let query = camera_query();
    println!("Query: {query}");
    println!("Catalog: {} sources\n", catalog.len());

    let reform = reformulate(&catalog, &query).expect("query is answerable");
    let inst = reform
        .problem_instance(&catalog, CAMERA_UNIVERSE, 5.0)
        .expect("instance assembles");
    println!(
        "Buckets: {} resellers × {} review sites = {} plans",
        inst.buckets[0].len(),
        inst.buckets[1].len(),
        inst.plan_count()
    );

    // Cheapest-per-tuple shopping plans (no caching → Streamer applies).
    println!("\n== Top 5 plans by average monetary cost per tuple ==");
    let monetary = CountingMeasure::new(MonetaryCost::without_caching());
    let mut streamer =
        Streamer::new(&inst, &monetary, &ByExpectedTuples).expect("no caching → dim. returns");
    for plan in streamer.order_k(5) {
        println!(
            "  {:<22} {:>7.4} per tuple",
            reform.plan_sources(&plan.plan).join(" + "),
            -plan.utility
        );
    }
    println!(
        "Streamer evaluated {} plans (abstract + concrete) out of {} — \
         grouping similar stores pays off.",
        monetary.total_evals(),
        inst.plan_count()
    );

    // Broadest-coverage plans: which store/review-site combinations see the
    // most camera models nobody has shown us yet?
    println!("\n== Top 5 plans by (residual) coverage ==");
    let coverage = CountingMeasure::new(Coverage);
    let mut streamer = Streamer::new(&inst, &coverage, &ByExtentMidpoint).expect("dim. returns");
    for plan in streamer.order_k(5) {
        println!(
            "  {:<22} {:>6.2}% new coverage",
            reform.plan_sources(&plan.plan).join(" + "),
            plan.utility * 100.0
        );
    }
    println!(
        "Streamer evaluated {} plans out of {}.",
        coverage.total_evals(),
        inst.plan_count()
    );

    // The national chains carry everything — expect them early in the
    // coverage ordering.
    let pi_first = {
        let mut pi = Pi::new(&inst, &Coverage);
        pi.next_plan().expect("plan space non-empty")
    };
    println!(
        "\nBrute-force agrees: best coverage plan is {}.",
        reform.plan_sources(&pi_first.plan).join(" + ")
    );
}
