//! The serving layer end to end: one shared mediator, many sessions, a
//! canonicalized reformulation cache.
//!
//! Run with `cargo run --example serving_sessions`. The example serves
//! the Figure 1 movie query three times — cold, repeated verbatim, and
//! under a variable renaming — then pulls plans interactively from a
//! session and prints the cache and session telemetry the mediator
//! collected along the way.

use query_plan_ordering::prelude::*;

fn main() {
    let obs = Obs::new();
    let mediator = Mediator::new(movie_domain(), MOVIE_UNIVERSE, &["ford"]).with_obs(&obs);
    let query = movie_query();

    // ---- Serve the same query shape three ways -------------------------
    println!("== one mediator, three structurally identical queries\n");
    let cold = mediator
        .answer_until(&query, &Coverage, Strategy::Pi, StopCondition::answers(3))
        .unwrap();
    println!(
        "cold:     {} plans executed, {} answers (cache: {:?} generations)",
        cold.executed(),
        cold.answers.len(),
        mediator.cache_stats().generations
    );

    let warm = mediator
        .answer_until(&query, &Coverage, Strategy::Pi, StopCondition::answers(3))
        .unwrap();
    println!(
        "repeated: {} plans executed, {} answers (served from cache)",
        warm.executed(),
        warm.answers.len()
    );

    let renamed =
        parse_query("q(Movie, Rev) :- play_in(ford, Movie), review_of(Rev, Movie)").unwrap();
    let via_rename = mediator
        .answer_until(&renamed, &Coverage, Strategy::Pi, StopCondition::answers(3))
        .unwrap();
    println!(
        "renamed:  {} plans executed, {} answers (canonical key collides)\n",
        via_rename.executed(),
        via_rename.answers.len()
    );

    // ---- Pull-based session: the client decides after every plan -------
    println!("== pull-based session (anytime interaction of §1)\n");
    let prepared = mediator.prepare(&query).unwrap();
    println!(
        "prepared plan space: {} plans, canonical form {}",
        prepared.plan_count(),
        prepared.canonical.query()
    );
    let mut session = QuerySession::new(&mediator, &prepared, &Coverage, Strategy::Pi).unwrap();
    while let Some(report) = session.next_report() {
        println!(
            "  plan {:?} via {:?}: {} new tuples ({} total)",
            report.ordered.plan, report.sources, report.new_tuples, report.cumulative
        );
        if report.cumulative >= 5 {
            println!(
                "  ... satisfied after {} plans, stopping early",
                session.plans_emitted()
            );
            break;
        }
    }

    // ---- What the mediator observed ------------------------------------
    let stats = mediator.cache_stats();
    println!(
        "\ncache: {} hits / {} misses / {} generations (hit rate {:.2})",
        stats.hits,
        stats.misses,
        stats.generations,
        stats.hit_rate()
    );
    println!(
        "sessions opened: {}",
        obs.registry.counter_total("qpo_sessions_total")
    );
    assert_eq!(
        stats.generations, 1,
        "one query shape: plan generation ran exactly once"
    );
}
