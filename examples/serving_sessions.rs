//! The serving layer end to end: one shared mediator, many sessions, a
//! canonicalized reformulation cache.
//!
//! Run with `cargo run --example serving_sessions`. The example serves
//! the Figure 1 movie query three times — cold, repeated verbatim, and
//! under a variable renaming — then pulls plans interactively from a
//! session and prints the cache and session telemetry the mediator
//! collected along the way.
//!
//! With `--serve <port>` (use port `0` for an ephemeral one) it
//! additionally enables trace journaling, mounts the introspection
//! server on the mediator's observability bundle after the demo, prints
//! the endpoint URLs, and blocks until Enter is pressed — so you can
//! `curl` the live `/metrics`, `/traces`, `/sessions`, and `/explain`
//! views while the process is up.
//!
//! With `--memo` the pull-based session runs twice over one shared
//! [`ExecutionMemo`]: the first session populates the source-access and
//! partial-join memos, the second replays and seeds from them, and the
//! example prints the reuse counters (the same `memo_hits` /
//! `subplans_reused` the `/sessions` endpoint exposes).
//!
//! With `--profile` it enables trace journaling and, after the demo,
//! reconstructs the span-tree profile of every traced run from the
//! journal alone and prints the `EXPLAIN ANALYZE`-style report — the
//! same text the `/profile` introspection endpoint serves.

use query_plan_ordering::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let serve_port: Option<u16> = args
        .iter()
        .position(|a| a == "--serve")
        .map(|i| args.get(i + 1).and_then(|p| p.parse().ok()).unwrap_or(0));
    let with_memo = args.iter().any(|a| a == "--memo");
    let with_profile = args.iter().any(|a| a == "--profile");

    // Journaling on when serving or profiling, so the trace-derived
    // views (/traces, /explain, /profile, the printed report) have
    // content.
    let obs = if serve_port.is_some() || with_profile {
        Obs::with_trace()
    } else {
        Obs::new()
    };
    let mediator = Mediator::new(movie_domain(), MOVIE_UNIVERSE, &["ford"]).with_obs(&obs);
    let query = movie_query();

    // ---- Serve the same query shape three ways -------------------------
    println!("== one mediator, three structurally identical queries\n");
    let cold = mediator
        .answer_until(&query, &Coverage, Strategy::Pi, StopCondition::answers(3))
        .unwrap();
    println!(
        "cold:     {} plans executed, {} answers (cache: {:?} generations)",
        cold.executed(),
        cold.answers.len(),
        mediator.cache_stats().generations
    );

    let warm = mediator
        .answer_until(&query, &Coverage, Strategy::Pi, StopCondition::answers(3))
        .unwrap();
    println!(
        "repeated: {} plans executed, {} answers (served from cache)",
        warm.executed(),
        warm.answers.len()
    );

    let renamed =
        parse_query("q(Movie, Rev) :- play_in(ford, Movie), review_of(Rev, Movie)").unwrap();
    let via_rename = mediator
        .answer_until(&renamed, &Coverage, Strategy::Pi, StopCondition::answers(3))
        .unwrap();
    println!(
        "renamed:  {} plans executed, {} answers (canonical key collides)\n",
        via_rename.executed(),
        via_rename.answers.len()
    );

    // ---- Pull-based session: the client decides after every plan -------
    println!("== pull-based session (anytime interaction of §1)\n");
    let prepared = mediator.prepare(&query).unwrap();
    println!(
        "prepared plan space: {} plans, canonical form {}",
        prepared.plan_count(),
        prepared.canonical.query()
    );
    let mut session = QuerySession::new(&mediator, &prepared, &Coverage, Strategy::Pi)
        .unwrap()
        .with_quality(true);
    while let Some(report) = session.next_report() {
        println!(
            "  plan {:?} via {:?}: {} new tuples ({} total)",
            report.ordered.plan, report.sources, report.new_tuples, report.cumulative
        );
        if report.cumulative >= 5 {
            println!(
                "  ... satisfied after {} plans, stopping early",
                session.plans_emitted()
            );
            break;
        }
    }

    // ---- Shared-execution memo across sessions (opt-in) ----------------
    if with_memo {
        println!("\n== shared execution memo across two sessions (--memo)\n");
        let memo = ExecutionMemo::new();
        for label in ["first ", "second"] {
            let mut s = QuerySession::new(&mediator, &prepared, &Coverage, Strategy::Pi)
                .unwrap()
                .with_memo(&memo);
            while s.next_report().is_some() {}
            println!(
                "{label} session: {} plans, memo hits {}, subplans reused {}",
                s.plans_emitted(),
                s.memo_hits(),
                s.subplans_reused()
            );
        }
        println!(
            "memo now holds {} subplan prefixes (~{} bytes across all layers)",
            memo.subplans.len(),
            memo.approx_bytes()
        );
    }

    // ---- What the mediator observed ------------------------------------
    let stats = mediator.cache_stats();
    println!(
        "\ncache: {} hits / {} misses / {} generations (hit rate {:.2})",
        stats.hits,
        stats.misses,
        stats.generations,
        stats.hit_rate()
    );
    println!(
        "sessions opened: {}",
        obs.registry.counter_total("qpo_sessions_total")
    );
    if let Some(snap) = session.quality() {
        println!(
            "session quality: utility mass {:.4}, oracle regret {:.6} over {} emissions",
            snap.mass,
            snap.regret,
            snap.points.len()
        );
    }
    assert_eq!(
        stats.generations, 1,
        "one query shape: plan generation ran exactly once"
    );

    // ---- Span-tree profile, reconstructed from the trace (opt-in) -------
    if with_profile {
        println!("\n== span-tree profile (--profile)\n");
        // Re-run the movie query on the concurrent executor so the trace
        // has real (virtual) source latencies, retries, and schedule
        // waits to attribute — the in-memory sessions above run at
        // virtual time zero.
        mediator
            .run_concurrent_observed(
                &query,
                &Coverage,
                Strategy::IDrips,
                StopCondition::answers(3),
                RuntimePolicy::parallel(2).with_lookahead(2),
                &obs,
            )
            .unwrap();
        let index = ProfileIndex::from_journal(&obs.journal);
        let profile = index.latest().expect("the traced run profiles");
        profile
            .check()
            .expect("reconstructed span tree is well-formed");
        let makespan = profile.makespan.expect("the run was sealed");
        assert_eq!(
            profile.critical_path.to_bits(),
            makespan.to_bits(),
            "reconstruction bit-equals the executor's reported makespan"
        );
        println!("{}", profile.render_text());
    }

    // ---- Live introspection (opt-in) ------------------------------------
    if let Some(port) = serve_port {
        drop(session); // close the board entry so /sessions shows the lifecycle
        let server = mediator
            .spawn_introspection(port)
            .expect("introspection server binds");
        let addr = server.addr();
        println!("\n== introspection server listening on http://{addr}");
        for endpoint in ["healthz", "metrics", "traces", "sessions"] {
            println!("   curl http://{addr}/{endpoint}");
        }
        println!("   curl 'http://{addr}/explain?plan=0,0'");
        println!("press Enter to stop the server");
        let mut line = String::new();
        let _ = std::io::stdin().read_line(&mut line);
    }
}
