//! Mediation over *flaky* sources: graceful degradation under failures.
//!
//! The paper's setting (§1) is a mediator over autonomous web sources that
//! time out, fail transiently, and occasionally go down for good. This
//! example runs the Figure 1 movie query three ways on the concurrent
//! runtime:
//!
//! 1. fault-free — bit-for-bit identical to the serial mediator;
//! 2. every source failing ≥ 25% of access attempts — retries with capped
//!    exponential backoff still recover the *full* answer set;
//! 3. one source permanently down — its plans are marked failed, the run
//!    carries on, and the answers degrade to exactly what the surviving
//!    sources support.
//!
//! Run with: `cargo run --example flaky_sources`

use query_plan_ordering::prelude::*;

fn main() {
    let mediator = Mediator::new(movie_domain(), MOVIE_UNIVERSE, &["ford"]);
    let query = movie_query();
    println!("Query: {query}\n");

    // Reference: the serial mediator on perfectly reliable sources.
    let serial = mediator
        .answer_until(&query, &Coverage, Strategy::Pi, StopCondition::unbounded())
        .expect("mediation succeeds");
    let full = serial.answers.len();
    println!("Serial reference run: 9 plans, {full} answers.\n");

    // 1. Concurrent, faults off: the equivalence case.
    let calm = mediator
        .run_concurrent(
            &query,
            &Coverage,
            Strategy::Pi,
            StopCondition::unbounded(),
            RuntimePolicy::parallel(4),
        )
        .expect("mediation succeeds");
    assert_eq!(calm.runtime.answers, serial.answers);
    println!(
        "[1] 4 workers, no faults:   {} plans, {} answers — identical to serial.",
        calm.runtime.reports.len(),
        calm.runtime.answers.len()
    );

    // 2. Transient chaos: ≥ 25% of attempts fail, retries absorb it all.
    let flaky = mediator
        .run_concurrent(
            &query,
            &Coverage,
            Strategy::Pi,
            StopCondition::unbounded(),
            RuntimePolicy::parallel(4)
                .with_faults(FaultConfig::with_seed(2002).with_extra_transient_rate(0.25))
                .with_retry(RetryPolicy {
                    max_attempts: 10,
                    ..RetryPolicy::standard()
                }),
        )
        .expect("mediation succeeds");
    let s = &flaky.runtime.stats;
    println!(
        "[2] 25% transient failures: {} answers, {} attempts for {} accesses \
         ({} failed transiently), {} plans lost.",
        flaky.runtime.answers.len(),
        s.attempts,
        9 * 2,
        s.transient_failures,
        flaky.failed(),
    );
    assert_eq!(
        flaky.runtime.answers, serial.answers,
        "retries recover the full answer set"
    );
    println!("    Observed per-source failure rates (catalog says 0.0–0.2 + 0.25 injected):");
    for ((bucket, index), rec) in flaky.health.iter() {
        println!(
            "      bucket {bucket} source {index}: {:>5.1}% over {} attempts",
            rec.observed_transient_rate().unwrap_or(0.0) * 100.0,
            rec.attempts
        );
    }

    // 3. v1 goes down for good: plans through it fail, the rest deliver.
    let degraded = mediator
        .run_concurrent(
            &query,
            &Coverage,
            Strategy::Pi,
            StopCondition::unbounded(),
            RuntimePolicy::parallel(4)
                .with_faults(FaultConfig::with_seed(7).with_source_down("v1")),
        )
        .expect("mediation succeeds");
    println!(
        "\n[3] v1 permanently down:    {} of {} plans failed, {} answers \
         (vs {full} with v1 up) — the run degrades, it does not abort.",
        degraded.failed(),
        degraded.runtime.reports.len(),
        degraded.runtime.answers.len(),
    );
    assert!(degraded.failed() > 0 && degraded.executed() > 0);
    assert!(degraded.runtime.answers.len() < full);
    assert!(!degraded.runtime.answers.is_empty());

    // 4. What the ordering itself costs: run iDrips over the same query
    // and dump the incremental kernel's work counters.
    let catalog = movie_domain();
    let reform = reformulate(&catalog, &query).expect("query reformulates");
    let inst = reform
        .problem_instance(&catalog, MOVIE_UNIVERSE, 5.0)
        .expect("instance builds");
    let mut idrips = IDrips::new(&inst, &Coverage, ByExpectedTuples);
    let ordered = idrips.order_k(usize::MAX);
    println!(
        "\n[4] iDrips ordered all {} plans of the movie query;",
        ordered.len()
    );
    println!("{}", format_kernel_stats(&idrips.kernel_stats()));
}
