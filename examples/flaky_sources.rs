//! Mediation over *flaky* sources: graceful degradation under failures.
//!
//! The paper's setting (§1) is a mediator over autonomous web sources that
//! time out, fail transiently, and occasionally go down for good. This
//! example runs the Figure 1 movie query three ways on the concurrent
//! runtime:
//!
//! 1. fault-free — bit-for-bit identical to the serial mediator;
//! 2. every source failing ≥ 25% of access attempts — retries with capped
//!    exponential backoff still recover the *full* answer set;
//! 3. one source permanently down — its plans are marked failed, the run
//!    carries on, and the answers degrade to exactly what the surviving
//!    sources support.
//!
//! Run with:
//! `cargo run --example flaky_sources [--trace out.jsonl] [--metrics out.prom] [--backend sim|store|tcp]`
//!
//! `--trace <path>` records every run on a shared [`Obs`] bundle and
//! writes the deterministic plan-lifecycle trace journal as JSONL;
//! `--metrics <path>` writes a Prometheus-style snapshot of the metrics
//! registry. Either flag also prints the human-readable telemetry
//! summary at the end.
//!
//! `--backend store` / `--backend tcp` additionally re-run the fault-free
//! case through a *real* source backend — a persistent indexed store in a
//! temp directory, or an in-process loopback source server behind a
//! `TcpBackend` — seeded from the mediator's own extensions, and assert
//! the answers match the simulator bit for bit. Sections 1–3 always run
//! on the simulator (`sim`, the default), keeping the traced runs
//! deterministic.

use query_plan_ordering::prelude::*;
use std::sync::Arc;

/// Pulls `--flag <value>` out of the argument list, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_path = flag_value(&args, "--trace");
    let metrics_path = flag_value(&args, "--metrics");
    let backend = flag_value(&args, "--backend").unwrap_or_else(|| "sim".to_string());
    assert!(
        matches!(backend.as_str(), "sim" | "store" | "tcp"),
        "--backend must be one of sim, store, tcp (got {backend:?})"
    );
    let obs = if trace_path.is_some() {
        Obs::with_trace()
    } else {
        Obs::new()
    };

    let mediator = Mediator::new(movie_domain(), MOVIE_UNIVERSE, &["ford"]);
    let query = movie_query();
    println!("Query: {query}\n");

    // Reference: the serial mediator on perfectly reliable sources.
    let serial = mediator
        .answer_until(&query, &Coverage, Strategy::Pi, StopCondition::unbounded())
        .expect("mediation succeeds");
    let full = serial.answers.len();
    println!("Serial reference run: 9 plans, {full} answers.\n");

    // 1. Concurrent, faults off: the equivalence case.
    let calm = mediator
        .run_concurrent_observed(
            &query,
            &Coverage,
            Strategy::Pi,
            StopCondition::unbounded(),
            RuntimePolicy::parallel(4),
            &obs,
        )
        .expect("mediation succeeds");
    assert_eq!(calm.runtime.answers, serial.answers);
    println!(
        "[1] 4 workers, no faults:   {} plans, {} answers — identical to serial.",
        calm.runtime.reports.len(),
        calm.runtime.answers.len()
    );

    // 2. Transient chaos: ≥ 25% of attempts fail, retries absorb it all.
    let flaky = mediator
        .run_concurrent_observed(
            &query,
            &Coverage,
            Strategy::Pi,
            StopCondition::unbounded(),
            RuntimePolicy::parallel(4)
                .with_faults(FaultConfig::with_seed(2002).with_extra_transient_rate(0.25))
                .with_retry(RetryPolicy {
                    max_attempts: 10,
                    ..RetryPolicy::standard()
                }),
            &obs,
        )
        .expect("mediation succeeds");
    let s = &flaky.runtime.stats;
    println!(
        "[2] 25% transient failures: {} answers, {} attempts for {} accesses \
         ({} failed transiently), {} plans lost.",
        flaky.runtime.answers.len(),
        s.attempts,
        9 * 2,
        s.transient_failures,
        flaky.failed(),
    );
    assert_eq!(
        flaky.runtime.answers, serial.answers,
        "retries recover the full answer set"
    );
    println!("    Observed per-source failure rates (catalog says 0.0–0.2 + 0.25 injected):");
    for ((bucket, index), rec) in flaky.health.iter() {
        println!(
            "      bucket {bucket} source {index}: {:>5.1}% over {} attempts",
            rec.observed_transient_rate().unwrap_or(0.0) * 100.0,
            rec.attempts
        );
    }

    // 3. v1 goes down for good: plans through it fail, the rest deliver.
    let degraded = mediator
        .run_concurrent_observed(
            &query,
            &Coverage,
            Strategy::Pi,
            StopCondition::unbounded(),
            RuntimePolicy::parallel(4)
                .with_faults(FaultConfig::with_seed(7).with_source_down("v1")),
            &obs,
        )
        .expect("mediation succeeds");
    println!(
        "\n[3] v1 permanently down:    {} of {} plans failed, {} answers \
         (vs {full} with v1 up) — the run degrades, it does not abort.",
        degraded.failed(),
        degraded.runtime.reports.len(),
        degraded.runtime.answers.len(),
    );
    assert!(degraded.failed() > 0 && degraded.executed() > 0);
    assert!(degraded.runtime.answers.len() < full);
    assert!(!degraded.runtime.answers.is_empty());

    // Optional: the fault-free case again, through a real backend seeded
    // from the same extensions — identical answers, real I/O.
    if backend != "sim" {
        let mut _server_guard = None;
        let store_dir =
            std::env::temp_dir().join(format!("qpo-flaky-backend-{}", std::process::id()));
        let real: Arc<dyn SourceBackend> = match backend.as_str() {
            "store" => {
                let _ = std::fs::remove_dir_all(&store_dir);
                let store = StoreBackend::open(&store_dir).expect("store opens");
                for (name, rows) in snapshot_relations(mediator.database()) {
                    store.put_relation(&name, &rows).expect("store seeds");
                }
                store.flush().expect("store flushes");
                Arc::new(store)
            }
            _ => {
                let provider = MemProvider::new();
                for (name, rows) in snapshot_relations(mediator.database()) {
                    provider.insert(name, rows);
                }
                let server =
                    SourceServer::serve(Arc::new(provider), 0).expect("loopback server binds");
                let addr = server.addr().to_string();
                _server_guard = Some(server);
                Arc::new(TcpBackend::new(addr))
            }
        };
        let mediator = mediator
            .clone()
            .with_backends(BackendRegistry::new().with(backend.as_str(), real));
        let remote = mediator
            .run_concurrent_on(
                &backend,
                &query,
                &Coverage,
                Strategy::Pi,
                StopCondition::unbounded(),
                RuntimePolicy::parallel(4),
            )
            .expect("backend mediation succeeds");
        assert_eq!(
            remote.runtime.answers, serial.answers,
            "real backends answer bit-identically to the simulator"
        );
        println!(
            "\n[{backend}] fault-free rerun through the {backend} backend: \
             {} plans, {} answers — identical to the simulator.",
            remote.runtime.reports.len(),
            remote.runtime.answers.len()
        );
        let _ = std::fs::remove_dir_all(&store_dir);
    }

    // 4. What the ordering itself costs: run iDrips over the same query
    // and dump the incremental kernel's work counters.
    let catalog = movie_domain();
    let reform = reformulate(&catalog, &query).expect("query reformulates");
    let inst = reform
        .problem_instance(&catalog, MOVIE_UNIVERSE, 5.0)
        .expect("instance builds");
    let mut idrips = IDrips::new(&inst, &Coverage, ByExpectedTuples).with_obs(&obs);
    let ordered = idrips.order_k(usize::MAX);
    println!(
        "\n[4] iDrips ordered all {} plans of the movie query;",
        ordered.len()
    );
    println!("{}", format_kernel_stats(&idrips.kernel_stats()));

    // 5. Telemetry exports, when asked for.
    if let Some(path) = &trace_path {
        let jsonl = obs.journal.to_jsonl();
        std::fs::write(path, &jsonl).expect("trace file is writable");
        let report = validate_trace(&jsonl).expect("journal validates");
        println!(
            "\n[5] trace: {} events ({} plan spans opened, {} closed) -> {path}",
            report.events, report.spans_opened, report.spans_closed
        );
    }
    if let Some(path) = &metrics_path {
        std::fs::write(path, prometheus_text(&obs.registry)).expect("metrics file is writable");
        println!("    metrics snapshot -> {path}");
    }
    if trace_path.is_some() || metrics_path.is_some() {
        println!("\n{}", summary_text(&obs.registry));
    }
}
