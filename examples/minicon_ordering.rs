//! §7's MiniCon integration: ordering over *multiple* plan spaces.
//!
//! MiniCon covers query subgoals with MCDs; views that hide a join variable
//! must cover several subgoals at once, so plans live in multiple plan
//! spaces (one per partition of the subgoals). Every plan in every space is
//! sound by construction — no per-plan soundness test needed. This example
//! orders the union of all spaces under a context-free cost measure by
//! merging one Streamer per space, and cross-checks the global order.
//!
//! Run with: `cargo run --example minicon_ordering`

use query_plan_ordering::ordering::merge_streamers;
use query_plan_ordering::prelude::*;
use query_plan_ordering::reformulation::minicon_instances;

fn main() {
    // Schema: r(X, Y), s(Y, Z). Query: the r–s chain.
    let schema =
        MediatedSchema::with_relations([SchemaRelation::new("r", 2), SchemaRelation::new("s", 2)]);
    let mut catalog = Catalog::new(schema);
    // Pre-joined warehouse views hide the join variable — each covers both
    // subgoals at once. Fragment views export it.
    let sources: [(&str, f64, f64, f64); 8] = [
        // (view, tuples, α, failure probability)
        ("warehouse0(X, Z) :- r(X, Y), s(Y, Z)", 120.0, 0.4, 0.05),
        ("warehouse1(X, Z) :- r(X, Y), s(Y, Z)", 400.0, 0.2, 0.20),
        ("rfrag0(X, Y) :- r(X, Y)", 300.0, 0.3, 0.02),
        ("rfrag1(X, Y) :- r(X, Y)", 150.0, 0.9, 0.10),
        ("rfrag2(X, Y) :- r(X, Y)", 800.0, 0.1, 0.30),
        ("sfrag0(Y, Z) :- s(Y, Z)", 250.0, 0.5, 0.01),
        ("sfrag1(Y, Z) :- s(Y, Z)", 100.0, 1.2, 0.15),
        ("sfrag2(Y, Z) :- s(Y, Z)", 500.0, 0.2, 0.25),
    ];
    for (view, tuples, alpha, fail) in sources {
        catalog
            .add_source(
                SourceDescription::new(parse_query(view).expect("view parses")),
                SourceStats::new()
                    .with_extent(Extent::new(0, tuples as u64))
                    .with_tuples(tuples)
                    .with_transmission_cost(alpha)
                    .with_failure_prob(fail),
            )
            .expect("source registers");
    }

    let query = parse_query("q(X, Z) :- r(X, Y), s(Y, Z)").expect("query parses");
    println!("Query: {query}\n");

    // MiniCon: generalized buckets → plan spaces, all plans sound.
    let spaces = minicon_plan_spaces(&query, &catalog.descriptions());
    println!("MiniCon produced {} plan spaces:", spaces.len());
    for (i, space) in spaces.iter().enumerate() {
        let shape: Vec<String> = space
            .buckets
            .iter()
            .map(|b| format!("{} MCDs over subgoals {:?}", b.entries.len(), b.covered))
            .collect();
        println!(
            "  space {i}: {} plans ({})",
            space.plan_count(),
            shape.join(" × ")
        );
    }

    // One ProblemInstance per space; merge per-space Streamers. The cost
    // measure is context-free, so the merge is globally exact.
    let instances = minicon_instances(&catalog, &spaces, 1000, 5.0).expect("instances assemble");
    let measure = FailureCost::without_caching();
    let mut merged =
        merge_streamers(&instances, &measure, &ByExpectedTuples).expect("context-free measure");

    println!("\nGlobal plan ordering (expected cost, lower is better):");
    let emitted = merged.order_k(usize::MAX);
    for (space_idx, plan) in &emitted {
        let q = spaces[*space_idx].plan(&query, &plan.plan);
        println!("  cost {:9.2}  space {}  {}", -plan.utility, space_idx, q);
    }

    // Sanity: globally non-increasing utility, and no soundness test was
    // ever needed (MiniCon plans are sound by construction).
    assert!(emitted
        .windows(2)
        .all(|w| w[0].1.utility >= w[1].1.utility - 1e-12));
    let total: usize = spaces.iter().map(|s| s.plan_count()).sum();
    assert_eq!(emitted.len(), total);
    println!(
        "\nEmitted all {total} sound plans across {} spaces in exact global order.",
        spaces.len()
    );
}
