//! Quickstart: the paper's Figure 1 end to end.
//!
//! Builds the movie catalog (sources `v1..v6`), reformulates the sample
//! query with the bucket algorithm, and orders the nine plans two ways:
//! with Greedy under a fully monotonic cost measure, and with Streamer
//! under plan coverage.
//!
//! Run with: `cargo run --example quickstart`

use query_plan_ordering::prelude::*;

fn main() {
    // Figure 1: the mediated schema + six sources.
    let catalog = movie_domain();
    let query = movie_query();
    println!("User query:   {query}");
    println!("Sources:");
    for entry in catalog.iter() {
        println!("  {}", entry.description);
    }

    // The bucket algorithm: one bucket per subgoal.
    let reform = reformulate(&catalog, &query).expect("query is answerable");
    for (i, bucket) in reform.buckets.iter().enumerate() {
        let names: Vec<_> = bucket.iter().map(|e| e.source.to_string()).collect();
        println!("Bucket B{}: {{{}}}", i + 1, names.join(", "));
    }
    let inst = reform
        .problem_instance(&catalog, MOVIE_UNIVERSE, 5.0)
        .expect("instance assembles");
    println!("Plan space: {} candidate plans\n", inst.plan_count());

    // Ordering 1: linear cost (eq. (1)) is fully monotonic → Greedy.
    println!("== Greedy under linear cost (fully monotonic, §4) ==");
    let mut greedy = Greedy::new(&inst, &LinearCost).expect("linear cost is fully monotonic");
    for plan in greedy.order_k(9) {
        println!(
            "  {:<12} cost {:8.1}",
            reform.plan_sources(&plan.plan).join(" ⋈ "),
            -plan.utility
        );
    }

    // Ordering 2: plan coverage is *not* monotonic but has diminishing
    // returns → Streamer (§5.2).
    println!("\n== Streamer under plan coverage (abstraction + recycling, §5.2) ==");
    let mut streamer =
        Streamer::new(&inst, &Coverage, &ByExpectedTuples).expect("coverage has dim. returns");
    let ordering = streamer.order_k(9);
    for plan in &ordering {
        println!(
            "  {:<12} new coverage {:6.2}%",
            reform.plan_sources(&plan.plan).join(" ⋈ "),
            plan.utility * 100.0
        );
    }
    let stats = streamer.stats();
    println!(
        "Streamer work: {} refinements, {} links created, {} recycled, {} invalidated",
        stats.refinements, stats.links_created, stats.links_recycled, stats.links_invalidated
    );

    // Both orderings are exact (Definition 2.1); double-check the second.
    verify_ordering(&inst, &Coverage, &ordering, 1e-12).expect("ordering is exact");
    println!("\nVerified: Streamer's ordering matches brute force exactly.");
}
