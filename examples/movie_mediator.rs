//! End-to-end mediation: why ordering plans matters for *time to first
//! answers*.
//!
//! Materializes the Figure 1 movie sources as in-memory relations, then
//! answers the sample query twice: once executing plans in coverage order
//! (Streamer) and once in an arbitrary fixed order. The cumulative-answer
//! curves show coverage ordering front-loading the tuples a user sees —
//! the paper's motivating claim (§1).
//!
//! Run with: `cargo run --example movie_mediator`

use query_plan_ordering::prelude::*;

fn main() {
    let catalog = movie_domain();
    let query = movie_query();
    let mediator = Mediator::new(catalog, MOVIE_UNIVERSE, &["ford"]);
    println!(
        "Materialized {} source tuples.",
        mediator.database().total_facts()
    );
    println!("Query: {query}\n");

    // Coverage-ordered execution.
    let ordered = mediator
        .answer(&query, &Coverage, Strategy::Streamer, 9)
        .expect("mediation succeeds");

    // "Unordered" baseline: plans in whatever order the reformulator
    // produced them — simulated by a measure that considers all plans
    // equal, so emission order is arbitrary-but-deterministic.
    struct Indifferent;
    impl UtilityMeasure for Indifferent {
        fn name(&self) -> &'static str {
            "indifferent"
        }
        fn utility(&self, _: &ProblemInstance, _: &[usize], _: &ExecutionContext) -> f64 {
            0.0
        }
        fn utility_interval(
            &self,
            _: &ProblemInstance,
            _: &[Vec<usize>],
            _: &ExecutionContext,
        ) -> Interval {
            Interval::ZERO
        }
        fn diminishing_returns(&self) -> bool {
            true
        }
        fn monotone_subgoals(&self, inst: &ProblemInstance) -> Vec<bool> {
            vec![false; inst.query_len()]
        }
        fn independent(&self, _: &ProblemInstance, _: &[usize], _: &[usize]) -> bool {
            true
        }
    }
    let unordered = mediator
        .answer(&query, &Indifferent, Strategy::Pi, 9)
        .expect("mediation succeeds");

    println!("plan#  coverage-ordered        arbitrary order");
    println!("       plan        cum.answers plan        cum.answers");
    for (i, (a, b)) in ordered.reports.iter().zip(&unordered.reports).enumerate() {
        println!(
            "{:>4}   {:<11} {:>6}      {:<11} {:>6}",
            i + 1,
            a.sources.join("⋈"),
            a.cumulative,
            b.sources.join("⋈"),
            b.cumulative
        );
    }
    let total = ordered.answers.len();
    assert_eq!(total, unordered.answers.len(), "same final answers");
    println!("\nBoth executions end at the same {total} answers (union semantics),");

    // Where do the curves stand halfway?
    let half_ordered = ordered.reports[3].cumulative;
    let half_unordered = unordered.reports[3].cumulative;
    println!(
        "but after 4 plans the coverage ordering has {half_ordered} answers \
         vs {half_unordered} for the arbitrary order."
    );
    assert!(half_ordered >= half_unordered);
}
