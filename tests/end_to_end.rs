//! End-to-end integration: catalog → reformulation → ordering → execution,
//! over the paper's two narrative domains.

use query_plan_ordering::prelude::*;

#[test]
fn all_strategies_agree_on_movie_answers() {
    let mediator = Mediator::new(movie_domain(), MOVIE_UNIVERSE, &["ford", "hanks"]);
    let query = movie_query();

    let streamer = mediator
        .answer(&query, &Coverage, Strategy::Streamer, 9)
        .unwrap();
    let idrips = mediator
        .answer(&query, &Coverage, Strategy::IDrips, 9)
        .unwrap();
    let pi = mediator.answer(&query, &Coverage, Strategy::Pi, 9).unwrap();

    assert_eq!(streamer.answers, idrips.answers);
    assert_eq!(streamer.answers, pi.answers);
    assert!(!streamer.answers.is_empty());
    // Same utility sequences too.
    for (a, b) in streamer.reports.iter().zip(&pi.reports) {
        assert!((a.ordered.utility - b.ordered.utility).abs() < 1e-12);
    }
}

#[test]
fn executed_answers_match_direct_plan_union() {
    // The mediator's union must equal evaluating every sound plan directly.
    let catalog = movie_domain();
    let query = movie_query();
    let mediator = Mediator::new(catalog.clone(), MOVIE_UNIVERSE, &["ford"]);
    let run = mediator
        .answer(&query, &LinearCost, Strategy::Greedy, 9)
        .unwrap();

    let views = catalog.descriptions();
    let buckets = create_buckets(&query, &views);
    let mut expected = std::collections::BTreeSet::new();
    for (_, plan) in enumerate_sound_plans(&query, &views, &buckets) {
        expected.extend(mediator.database().evaluate(&plan));
    }
    assert_eq!(run.answers, expected);
}

#[test]
fn camera_domain_end_to_end() {
    let mediator = Mediator::new(camera_domain(), CAMERA_UNIVERSE, &["store"]);
    let query = camera_query();
    let run = mediator
        .answer(
            &query,
            &MonetaryCost::without_caching(),
            Strategy::Streamer,
            12,
        )
        .unwrap();
    assert_eq!(run.reports.len(), 12);
    assert_eq!(run.discarded(), 0, "all camera plans are sound");
    // Monetary utilities are context-free → non-increasing sequence.
    for w in run.reports.windows(2) {
        assert!(w[0].ordered.utility >= w[1].ordered.utility - 1e-12);
    }
}

#[test]
fn coverage_ordering_maximizes_prefix_answers_per_plan_count() {
    // Compare against every other *order* of the same plan set: no prefix
    // of the Streamer order may trail the best possible prefix by much.
    // (Greedy-by-coverage is the optimal adaptive strategy under the box
    // model; here we just sanity-check strong front-loading.)
    let mediator = Mediator::new(movie_domain(), MOVIE_UNIVERSE, &["ford"]);
    let query = movie_query();
    let run = mediator
        .answer(&query, &Coverage, Strategy::Streamer, 9)
        .unwrap();
    let total = run.answers.len() as f64;
    // The first plan alone gets the plan-space maximum share.
    let first = run.reports[0].new_tuples as f64;
    assert!(first >= total * 0.3, "first plan only {first}/{total}");
    // New-tuple counts are non-increasing (diminishing returns, exact order).
    for w in run.reports.windows(2) {
        assert!(
            w[0].new_tuples >= w[1].new_tuples,
            "coverage order not front-loaded: {:?}",
            run.reports.iter().map(|r| r.new_tuples).collect::<Vec<_>>()
        );
    }
}

#[test]
fn unsound_candidates_are_discarded_but_everything_else_executes() {
    // Add a source over an unrelated relation that still lands in a bucket
    // via its play_in atom but produces unsound combinations.
    let mut catalog = movie_domain();
    catalog
        .add_source(
            SourceDescription::new(
                parse_query("v7(A, M) :- play_in(A, M), russian(M), american(M)").unwrap(),
            ),
            SourceStats::new().with_extent(Extent::new(0, 10)),
        )
        .unwrap();
    let mediator = Mediator::new(catalog, MOVIE_UNIVERSE, &["ford"]);
    let run = mediator
        .answer(&movie_query(), &Coverage, Strategy::Pi, 12)
        .unwrap();
    // v7 plans are still sound (an over-constrained source is sound), so
    // nothing is discarded; 4 × 3 = 12 plans all execute.
    assert_eq!(run.reports.len(), 12);
    assert_eq!(run.discarded(), 0);
}

#[test]
fn mediator_k_limits_are_respected() {
    let mediator = Mediator::new(movie_domain(), MOVIE_UNIVERSE, &["ford"]);
    for k in [0, 1, 3, 9, 50] {
        let run = mediator
            .answer(&movie_query(), &Coverage, Strategy::IDrips, k)
            .unwrap();
        assert_eq!(run.reports.len(), k.min(9));
    }
}
