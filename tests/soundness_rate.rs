//! §2's soundness argument, reproduced: the ordering algorithms run over
//! the *Cartesian product* of the buckets, before any soundness test; the
//! paper argues that even if only a fraction of candidates is sound, a
//! sound plan appears within the first few emissions with high probability
//! ("even when only 20% of plans are sound … we still find a sound plan in
//! the first 20 plans with probability 1 − 0.8²⁰ = 0.99").
//!
//! We build catalogs where pre-joined views poison the buckets with
//! join-losing combinations, drive the mediator, and check both that the
//! unsound candidates are discarded and that sound plans surface early.

use query_plan_ordering::datalog::expansion::view_map;
use query_plan_ordering::prelude::*;

/// A catalog over `r(X,Y), s(Y,Z)` with `full` fragment views per relation
/// (sound combinations) and `pairs` pre-joined views (which enter *both*
/// buckets but lose the join when mixed).
fn poisoned_catalog(full: usize, pairs: usize) -> Catalog {
    let schema =
        MediatedSchema::with_relations([SchemaRelation::new("r", 2), SchemaRelation::new("s", 2)]);
    let mut catalog = Catalog::new(schema);
    for i in 0..full {
        for (rel, name) in [("r", "f"), ("s", "g")] {
            catalog
                .add_source(
                    SourceDescription::new(
                        parse_query(&format!("{name}{i}(A, B) :- {rel}(A, B)")).unwrap(),
                    ),
                    SourceStats::new()
                        .with_extent(Extent::new((i as u64) * 7 % 40, 20 + i as u64))
                        .with_transmission_cost(0.2 + i as f64 * 0.1),
                )
                .unwrap();
        }
    }
    for i in 0..pairs {
        catalog
            .add_source(
                SourceDescription::new(
                    parse_query(&format!("w{i}(A, C) :- r(A, B), s(B, C)")).unwrap(),
                ),
                SourceStats::new()
                    .with_extent(Extent::new((i as u64) * 11 % 30, 15 + i as u64))
                    .with_transmission_cost(0.5 + i as f64 * 0.05),
            )
            .unwrap();
    }
    catalog
}

fn chain_query() -> ConjunctiveQuery {
    parse_query("q(X, Z) :- r(X, Y), s(Y, Z)").unwrap()
}

#[test]
fn buckets_contain_unsound_candidates_at_the_expected_rate() {
    let catalog = poisoned_catalog(2, 3);
    let query = chain_query();
    let views = catalog.descriptions();
    let buckets = create_buckets(&query, &views);
    // Bucket 0: f0, f1 + w0..w2 (via their r-atom) = 5; bucket 1 likewise.
    assert_eq!(buckets[0].len(), 5);
    assert_eq!(buckets[1].len(), 5);
    let sound = enumerate_sound_plans(&query, &views, &buckets);
    // Sound combinations: fi × gj only (pre-joined views lose the join
    // even paired with themselves, since each bucket entry uses one atom).
    assert_eq!(sound.len(), 4, "{sound:?}");
    let rate = sound.len() as f64 / 25.0;
    assert!(rate < 0.2, "soundness rate {rate} should be low");
}

#[test]
fn mediator_discards_unsound_candidates_and_still_answers() {
    let catalog = poisoned_catalog(2, 3);
    let query = chain_query();
    let mediator = Mediator::new(catalog.clone(), 100, &["k"]);
    let run = mediator
        .answer(
            &query,
            &FailureCost::without_caching(),
            Strategy::IDrips,
            25,
        )
        .unwrap();
    assert_eq!(run.reports.len(), 25, "entire Cartesian product emitted");
    assert_eq!(run.executed(), 4, "only the four sound plans execute");
    assert_eq!(run.discarded(), 21);
    // Answers equal the direct union over the sound plans.
    let views = catalog.descriptions();
    let buckets = create_buckets(&query, &views);
    let mut expected = std::collections::BTreeSet::new();
    for (_, plan) in enumerate_sound_plans(&query, &views, &buckets) {
        expected.extend(mediator.database().evaluate(&plan));
    }
    assert_eq!(run.answers, expected);
}

#[test]
fn sound_plans_surface_early_in_the_ordering() {
    // §2's probabilistic claim, checked empirically across catalogs with a
    // ~14% soundness rate: the first sound plan should typically appear
    // within the first handful of emissions, never pathologically late.
    let mut first_positions = Vec::new();
    for full in 1..=3usize {
        let pairs = 4;
        let catalog = poisoned_catalog(full, pairs);
        let query = chain_query();
        let views = catalog.descriptions();
        let reform = reformulate(&catalog, &query).unwrap();
        let inst = reform.problem_instance(&catalog, 100, 5.0).unwrap();
        let vm = view_map(&views);
        let measure = FailureCost::without_caching();
        let mut orderer = Streamer::new(&inst, &measure, &ByExpectedTuples).unwrap();
        let mut position = 0usize;
        let first_sound = loop {
            let Some(p) = orderer.next_plan() else {
                panic!("no sound plan found at all");
            };
            position += 1;
            let plan = reform.plan_query(&p.plan);
            if query_plan_ordering::datalog::is_sound_plan(&plan, &vm, &query).unwrap() {
                break position;
            }
        };
        first_positions.push(first_sound);
        let total = inst.plan_count();
        assert!(
            first_sound <= total / 2,
            "first sound plan at {first_sound} of {total}"
        );
    }
    // At least one configuration should find it very early.
    assert!(
        first_positions.iter().any(|&p| p <= 5),
        "first sound positions: {first_positions:?}"
    );
}
