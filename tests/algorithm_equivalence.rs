//! Cross-algorithm equivalence: every applicable algorithm must solve
//! Definition 2.1 *exactly* on randomly generated instances, for every
//! utility measure — the paper's central correctness claim ("Both iDrips
//! and Streamer return the correct plan ordering", §6).

use proptest::prelude::*;
use query_plan_ordering::prelude::*;

/// Builds a small random instance from proptest-chosen knobs.
fn instance(seed: u64, query_len: usize, bucket_size: usize, overlap: f64) -> ProblemInstance {
    GeneratorConfig::new(query_len, bucket_size)
        .with_seed(seed)
        .with_overlap_rate(overlap)
        .build()
}

fn check_all<M: UtilityMeasure>(inst: &ProblemInstance, measure: &M, k: usize) {
    let tol = 1e-9;
    // iDrips: always applicable.
    let ordering = IDrips::new(inst, measure, ByExpectedTuples).order_k(k);
    verify_ordering(inst, measure, &ordering, tol)
        .unwrap_or_else(|e| panic!("idrips/{}: {e}", measure.name()));
    // PI and Naive: always applicable.
    let ordering = Pi::new(inst, measure).order_k(k);
    verify_ordering(inst, measure, &ordering, tol)
        .unwrap_or_else(|e| panic!("pi/{}: {e}", measure.name()));
    let ordering = Naive::new(inst, measure).order_k(k);
    verify_ordering(inst, measure, &ordering, tol)
        .unwrap_or_else(|e| panic!("naive/{}: {e}", measure.name()));
    // Streamer: when diminishing returns holds.
    if measure.diminishing_returns() {
        let ordering = Streamer::new(inst, measure, &ByExpectedTuples)
            .expect("diminishing returns checked")
            .order_k(k);
        verify_ordering(inst, measure, &ordering, tol)
            .unwrap_or_else(|e| panic!("streamer/{}: {e}", measure.name()));
    }
    // Greedy: when fully monotonic.
    if measure.is_fully_monotonic(inst) {
        let ordering = Greedy::new(inst, measure)
            .expect("monotonicity checked")
            .order_k(k);
        verify_ordering(inst, measure, &ordering, tol)
            .unwrap_or_else(|e| panic!("greedy/{}: {e}", measure.name()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn coverage_orderings_are_exact(seed in 0u64..1000, m in 2usize..6, ov in 0.1f64..0.8) {
        let inst = instance(seed, 2, m, ov);
        check_all(&inst, &Coverage, 8);
    }

    #[test]
    fn failure_cost_orderings_are_exact(seed in 0u64..1000, m in 2usize..5) {
        let inst = instance(seed, 3, m, 0.3);
        check_all(&inst, &FailureCost::without_caching(), 8);
        check_all(&inst, &FailureCost::with_caching(), 8);
    }

    #[test]
    fn monetary_orderings_are_exact(seed in 0u64..1000, m in 2usize..5) {
        let inst = instance(seed, 3, m, 0.3);
        check_all(&inst, &MonetaryCost::without_caching(), 6);
        check_all(&inst, &MonetaryCost::with_caching(), 6);
    }

    #[test]
    fn monotone_cost_orderings_are_exact(seed in 0u64..1000, m in 2usize..6) {
        let inst = instance(seed, 3, m, 0.3);
        check_all(&inst, &LinearCost, 10);
        check_all(&inst, &FusionCost, 10);
    }

    /// Example 1.2's weighted combination orders exactly too (Streamer
    /// applies: both components exhibit diminishing returns).
    #[test]
    fn combined_orderings_are_exact(seed in 0u64..1000, m in 2usize..5) {
        let inst = instance(seed, 2, m, 0.4);
        let measure = Combined::new(Coverage, 50.0, FailureCost::without_caching(), 1.0);
        check_all(&inst, &measure, 8);
    }

    /// The emitted *utility sequences* coincide across algorithms (plans
    /// may differ on exact ties, the utilities may not).
    #[test]
    fn utility_sequences_coincide(seed in 0u64..1000, m in 2usize..5) {
        let inst = instance(seed, 3, m, 0.3);
        let k = 10;
        let pi: Vec<f64> = Pi::new(&inst, &Coverage).order_k(k)
            .into_iter().map(|o| o.utility).collect();
        let idrips: Vec<f64> = IDrips::new(&inst, &Coverage, ByExpectedTuples).order_k(k)
            .into_iter().map(|o| o.utility).collect();
        let streamer: Vec<f64> = Streamer::new(&inst, &Coverage, &ByExpectedTuples).unwrap()
            .order_k(k).into_iter().map(|o| o.utility).collect();
        prop_assert_eq!(pi.len(), idrips.len());
        prop_assert_eq!(pi.len(), streamer.len());
        for i in 0..pi.len() {
            prop_assert!((pi[i] - idrips[i]).abs() < 1e-9, "pi {:?} vs idrips {:?}", pi, idrips);
            prop_assert!((pi[i] - streamer[i]).abs() < 1e-9, "pi {:?} vs streamer {:?}", pi, streamer);
        }
    }
}

/// Exhausting the plan space emits every plan exactly once, whatever the
/// algorithm.
#[test]
fn exhaustive_emission_is_a_permutation() {
    let inst = instance(99, 2, 4, 0.4);
    let total = inst.plan_count();
    let orderings: Vec<Vec<OrderedPlan>> = vec![
        IDrips::new(&inst, &Coverage, ByExpectedTuples).order_k(total + 5),
        Streamer::new(&inst, &Coverage, &ByExpectedTuples)
            .unwrap()
            .order_k(total + 5),
        Pi::new(&inst, &Coverage).order_k(total + 5),
    ];
    for ordering in orderings {
        assert_eq!(ordering.len(), total);
        let distinct: std::collections::BTreeSet<_> =
            ordering.iter().map(|o| o.plan.clone()).collect();
        assert_eq!(distinct.len(), total);
    }
}

/// Heuristics change work done, never the utility sequence.
#[test]
fn heuristics_do_not_change_results() {
    let inst = instance(5, 3, 4, 0.3);
    let reference: Vec<f64> = Streamer::new(&inst, &Coverage, &ByExpectedTuples)
        .unwrap()
        .order_k(12)
        .into_iter()
        .map(|o| o.utility)
        .collect();
    let alternates: Vec<Vec<f64>> = vec![
        Streamer::new(&inst, &Coverage, &ByExtentMidpoint)
            .unwrap()
            .order_k(12)
            .into_iter()
            .map(|o| o.utility)
            .collect(),
        Streamer::new(&inst, &Coverage, &RandomKey { seed: 3 })
            .unwrap()
            .order_k(12)
            .into_iter()
            .map(|o| o.utility)
            .collect(),
        IDrips::new(&inst, &Coverage, RandomKey { seed: 8 })
            .order_k(12)
            .into_iter()
            .map(|o| o.utility)
            .collect(),
    ];
    for alt in alternates {
        assert_eq!(reference.len(), alt.len());
        for (a, b) in reference.iter().zip(&alt) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
