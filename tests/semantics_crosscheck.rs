//! Cross-validation of three answering semantics that must agree:
//!
//! 1. the bucket-algorithm mediator (order → soundness-test → execute →
//!    union),
//! 2. direct execution of MiniCon's sound-by-construction plan spaces,
//! 3. evaluation of the inverse-rule datalog program (Duschka–Genesereth
//!    maximally contained rewriting).
//!
//! For conjunctive queries, (3) is the gold standard; (1) equals it when no
//! view hides a join variable, and (2) equals it in general (MiniCon covers
//! multi-subgoal MCDs that single-source-per-subgoal bucket plans cannot).

use query_plan_ordering::prelude::*;
use query_plan_ordering::reformulation::answer_with_inverse_rules;
use std::collections::BTreeSet;

#[test]
fn mediator_matches_inverse_rules_on_the_movie_domain() {
    let catalog = movie_domain();
    let query = movie_query();
    let mediator = Mediator::new(catalog.clone(), MOVIE_UNIVERSE, &["ford", "hanks"]);
    let run = mediator
        .answer(&query, &LinearCost, Strategy::Greedy, usize::MAX)
        .unwrap();
    let inverse = answer_with_inverse_rules(&query, &catalog.descriptions(), mediator.database());
    assert!(!inverse.is_empty());
    assert_eq!(run.answers, inverse);
}

#[test]
fn mediator_matches_inverse_rules_on_the_camera_domain() {
    let catalog = camera_domain();
    let query = camera_query();
    let mediator = Mediator::new(catalog.clone(), CAMERA_UNIVERSE, &["shop"]);
    let run = mediator
        .answer(
            &query,
            &FailureCost::without_caching(),
            Strategy::IDrips,
            usize::MAX,
        )
        .unwrap();
    let inverse = answer_with_inverse_rules(&query, &catalog.descriptions(), mediator.database());
    assert_eq!(run.answers, inverse);
}

/// Views hiding a join variable: the bucket algorithm's plans lose the
/// answers only derivable *through* the view, while MiniCon and the
/// inverse rules both recover them.
#[test]
fn hidden_joins_separate_bucket_from_minicon_and_inverse() {
    let schema =
        MediatedSchema::with_relations([SchemaRelation::new("r", 2), SchemaRelation::new("s", 2)]);
    let mut catalog = Catalog::new(schema);
    // One pre-joined view (hides Y) plus fragments over disjoint extents,
    // so the pre-joined view contributes answers nobody else has.
    for (text, start) in [
        ("w(A, C) :- r(A, B), s(B, C)", 0u64),
        ("fr(A, B) :- r(A, B)", 40),
        ("gs(B, C) :- s(B, C)", 40),
    ] {
        catalog
            .add_source(
                SourceDescription::new(parse_query(text).unwrap()),
                SourceStats::new().with_extent(Extent::new(start, 30)),
            )
            .unwrap();
    }
    let query = parse_query("q(X, Z) :- r(X, Y), s(Y, Z)").unwrap();
    let mediator = Mediator::new(catalog.clone(), 100, &["k"]);
    let db = mediator.database();
    let views = catalog.descriptions();

    // (1) bucket mediator.
    let bucket_answers = mediator
        .answer(
            &query,
            &FailureCost::without_caching(),
            Strategy::Pi,
            usize::MAX,
        )
        .unwrap()
        .answers;

    // (2) MiniCon plan spaces executed directly.
    let mut minicon_answers: BTreeSet<_> = BTreeSet::new();
    for space in minicon_plan_spaces(&query, &views) {
        let mut choice = vec![0usize; space.buckets.len()];
        'space: loop {
            minicon_answers.extend(db.evaluate(&space.plan(&query, &choice)));
            let mut b = space.buckets.len();
            loop {
                if b == 0 {
                    break 'space;
                }
                b -= 1;
                choice[b] += 1;
                if choice[b] < space.buckets[b].entries.len() {
                    break;
                }
                choice[b] = 0;
            }
        }
    }

    // (3) inverse-rule program.
    let inverse_answers = answer_with_inverse_rules(&query, &views, db);

    assert_eq!(
        minicon_answers, inverse_answers,
        "MiniCon must match the maximally contained rewriting"
    );
    assert!(
        bucket_answers.is_subset(&inverse_answers),
        "bucket plans are sound"
    );
    assert!(
        bucket_answers.len() < inverse_answers.len(),
        "the hidden-join answers are only reachable through w: {} vs {}",
        bucket_answers.len(),
        inverse_answers.len()
    );
}

/// On single-atom views all three semantics coincide exactly.
#[test]
fn all_three_semantics_agree_without_hidden_joins() {
    let schema =
        MediatedSchema::with_relations([SchemaRelation::new("r", 2), SchemaRelation::new("s", 2)]);
    let mut catalog = Catalog::new(schema);
    for (i, (rel, prefix)) in [("r", "fr"), ("s", "gs")].iter().enumerate() {
        for j in 0..3u64 {
            catalog
                .add_source(
                    SourceDescription::new(
                        parse_query(&format!("{prefix}{j}(A, B) :- {rel}(A, B)")).unwrap(),
                    ),
                    SourceStats::new().with_extent(Extent::new(j * 13 + i as u64, 25)),
                )
                .unwrap();
        }
    }
    let query = parse_query("q(X, Z) :- r(X, Y), s(Y, Z)").unwrap();
    let mediator = Mediator::new(catalog.clone(), 100, &["k"]);
    let views = catalog.descriptions();

    let bucket_answers = mediator
        .answer(
            &query,
            &FailureCost::without_caching(),
            Strategy::Streamer,
            usize::MAX,
        )
        .unwrap()
        .answers;
    let inverse_answers = answer_with_inverse_rules(&query, &views, mediator.database());
    assert_eq!(bucket_answers, inverse_answers);
}
