//! Cross-checks among the reformulation algorithms and the datalog
//! substrate, on randomized LAV settings: the bucket algorithm with the
//! soundness filter, MiniCon's sound-by-construction plan spaces, and the
//! inverse-rule bucket grouping must all agree.

use proptest::prelude::*;
use query_plan_ordering::datalog::expansion::view_map;
use query_plan_ordering::prelude::*;
use query_plan_ordering::reformulation::{buckets_from_inverse_rules, invert};
use std::collections::BTreeSet;

/// Builds a randomized LAV setting over schema relations `r0..r2` (binary):
/// a chain query of length `qlen` and `nviews` random single-atom or
/// chain-pair views.
fn random_setting(
    seed: u64,
    qlen: usize,
    nviews: usize,
) -> (ConjunctiveQuery, Vec<SourceDescription>) {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    // Chain query: q(X0, Xq) :- r_{c0}(X0, X1), r_{c1}(X1, X2), ...
    let mut body = String::new();
    for i in 0..qlen {
        if i > 0 {
            body.push_str(", ");
        }
        body.push_str(&format!("r{}(X{}, X{})", next() % 3, i, i + 1));
    }
    let query = parse_query(&format!("q(X0, X{qlen}) :- {body}")).unwrap();

    let mut views = Vec::new();
    for v in 0..nviews {
        let text = match next() % 3 {
            // Full single-atom view: exports both attributes.
            0 => format!("v{v}(A, B) :- r{}(A, B)", next() % 3),
            // Projection view: hides the second attribute.
            1 => format!("v{v}(A) :- r{}(A, B)", next() % 3),
            // Chain-pair view: hides the join variable.
            _ => format!("v{v}(A, C) :- r{}(A, B), r{}(B, C)", next() % 3, next() % 3),
        };
        views.push(SourceDescription::new(parse_query(&text).unwrap()));
    }
    (query, views)
}

/// Brute force: every combination of views (with every body-atom mapping)
/// is already enumerated by the bucket Cartesian product, so the reference
/// "sound plan set" is bucket × soundness filter. MiniCon must produce a
/// subset of it (its no-equating restriction may drop candidates, never add
/// unsound ones) that covers at least the single-atom-per-subgoal plans.
#[test]
fn minicon_plans_are_sound_and_bucket_consistent() {
    for seed in 0..30u64 {
        let (query, views) = random_setting(seed, 2, 4);
        let vm = view_map(&views);
        // MiniCon: every plan in every space must be sound.
        for space in minicon_plan_spaces(&query, &views) {
            let mut choice = vec![0usize; space.buckets.len()];
            'space: loop {
                let plan = space.plan(&query, &choice);
                assert!(
                    query_plan_ordering::datalog::is_sound_plan(&plan, &vm, &query).unwrap(),
                    "seed {seed}: unsound MiniCon plan {plan} for {query}"
                );
                let mut b = space.buckets.len();
                loop {
                    if b == 0 {
                        break 'space;
                    }
                    b -= 1;
                    choice[b] += 1;
                    if choice[b] < space.buckets[b].entries.len() {
                        break;
                    }
                    choice[b] = 0;
                }
            }
        }
    }
}

#[test]
fn bucket_sound_plans_expand_correctly() {
    for seed in 0..30u64 {
        let (query, views) = random_setting(seed, 2, 4);
        let buckets = create_buckets(&query, &views);
        let vm = view_map(&views);
        for (_, plan) in enumerate_sound_plans(&query, &views, &buckets) {
            // Double-check through the containment machinery directly.
            let expansion =
                query_plan_ordering::datalog::expand_plan(&plan, &vm).expect("plan expands");
            assert!(
                query_plan_ordering::datalog::contains(&expansion, &query),
                "seed {seed}: expansion {expansion} of sound plan not contained in {query}"
            );
        }
    }
}

#[test]
fn inverse_rule_buckets_match_bucket_algorithm_membership() {
    // For single-atom views (the case where both algorithms' admission
    // rules coincide exactly), the source sets per bucket must be equal.
    for seed in 0..30u64 {
        let (query, views) = random_setting(seed, 3, 6);
        let single_atom: Vec<SourceDescription> = views
            .into_iter()
            .filter(|v| v.definition.body.len() == 1 && v.arity() == 2)
            .collect();
        let buckets = create_buckets(&query, &single_atom);
        let rules = invert(&single_atom);
        let rule_buckets = buckets_from_inverse_rules(&query, &rules);
        assert_eq!(buckets.len(), rule_buckets.len());
        for (b, (bucket, rbucket)) in buckets.iter().zip(&rule_buckets).enumerate() {
            let a: BTreeSet<String> = bucket.iter().map(|e| e.source.to_string()).collect();
            let c: BTreeSet<String> = rbucket
                .iter()
                .map(|r| r.source.predicate.to_string())
                .collect();
            assert_eq!(a, c, "seed {seed}: bucket {b} membership differs");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Containment is reflexive and transitive on random chain queries, and
    /// agrees with evaluation on a random ground database.
    #[test]
    fn containment_agrees_with_evaluation(seed in 0u64..5000) {
        let (q1, _) = random_setting(seed, 2, 1);
        let (q2, _) = random_setting(seed / 2 + 1, 2, 1);
        prop_assert!(query_plan_ordering::datalog::contains(&q1, &q1));
        // Build a small random database over r0..r2.
        let mut db = Database::new();
        let mut s = seed | 1;
        for _ in 0..12 {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            let rel = format!("r{}", s % 3);
            let a = Constant::Int((s / 3 % 4) as i64);
            let b = Constant::Int((s / 12 % 4) as i64);
            db.insert(&rel, vec![a, b]);
        }
        if query_plan_ordering::datalog::contains(&q1, &q2) {
            let a1 = db.evaluate(&q1);
            let a2 = db.evaluate(&q2);
            prop_assert!(a1.is_subset(&a2),
                "containment {q1} ⊑ {q2} violated on db: {a1:?} ⊄ {a2:?}");
        }
    }

    /// Plan expansion is stable under bucket choice: every candidate plan
    /// from the buckets expands without errors (unknown sources/arity are
    /// impossible by construction).
    #[test]
    fn bucket_candidates_always_expand(seed in 0u64..5000) {
        let (query, views) = random_setting(seed, 2, 4);
        let buckets = create_buckets(&query, &views);
        if buckets.iter().any(Vec::is_empty) {
            return Ok(());
        }
        let vm = view_map(&views);
        let choice = vec![0usize; buckets.len()];
        let plan = query_plan_ordering::reformulation::candidate_plan(&query, &buckets, &choice);
        let expanded = query_plan_ordering::datalog::expand_plan(&plan, &vm);
        prop_assert!(
            expanded.is_ok(),
            "candidate failed to expand: {plan} ({expanded:?})"
        );
    }
}
