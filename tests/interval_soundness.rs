//! Soundness of abstract-plan evaluation: the utility interval of an
//! abstract plan must contain the exact utility of *every* concrete plan it
//! represents, for every measure, under arbitrary execution contexts —
//! the invariant the whole Drips family rests on (§5.1).

use proptest::prelude::*;
use query_plan_ordering::prelude::*;

fn instance(seed: u64, query_len: usize, bucket_size: usize) -> ProblemInstance {
    GeneratorConfig::new(query_len, bucket_size)
        .with_seed(seed)
        .build()
}

/// Deterministically picks a sub-cube of candidates and an executed set
/// from the seed.
fn candidates_and_context(
    inst: &ProblemInstance,
    pick: u64,
) -> (Vec<Vec<usize>>, ExecutionContext) {
    let mut state = pick.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let candidates: Vec<Vec<usize>> = inst
        .buckets
        .iter()
        .map(|b| {
            let mut set: Vec<usize> = (0..b.len()).filter(|_| next() % 2 == 0).collect();
            if set.is_empty() {
                set.push((next() % b.len() as u64) as usize);
            }
            set
        })
        .collect();
    let mut ctx = ExecutionContext::new();
    for _ in 0..(next() % 4) {
        let plan: Vec<usize> = inst
            .buckets
            .iter()
            .map(|b| (next() % b.len() as u64) as usize)
            .collect();
        ctx.record(&plan);
    }
    (candidates, ctx)
}

fn assert_sound<M: UtilityMeasure>(
    inst: &ProblemInstance,
    measure: &M,
    candidates: &[Vec<usize>],
    ctx: &ExecutionContext,
) {
    let interval = measure.utility_interval(inst, candidates, ctx);
    // Enumerate the member product.
    let mut members = vec![Vec::new()];
    for cands in candidates {
        let mut next = Vec::with_capacity(members.len() * cands.len());
        for m in &members {
            for &i in cands {
                let mut p = m.clone();
                p.push(i);
                next.push(p);
            }
        }
        members = next;
    }
    for plan in members {
        let u = measure.utility(inst, &plan, ctx);
        assert!(
            interval.lo() - 1e-9 <= u && u <= interval.hi() + 1e-9,
            "{}: member {:?} utility {} outside {} (ctx: {} executed)",
            measure.name(),
            plan,
            u,
            interval,
            ctx.len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn intervals_contain_members(seed in 0u64..10_000, pick in 0u64..10_000,
                                 qlen in 1usize..4, m in 2usize..6) {
        let inst = instance(seed, qlen, m);
        let (cands, ctx) = candidates_and_context(&inst, pick);
        assert_sound(&inst, &Coverage, &cands, &ctx);
        assert_sound(&inst, &LinearCost, &cands, &ctx);
        assert_sound(&inst, &FusionCost, &cands, &ctx);
        assert_sound(&inst, &FailureCost::without_caching(), &cands, &ctx);
        assert_sound(&inst, &FailureCost::with_caching(), &cands, &ctx);
        assert_sound(&inst, &MonetaryCost::without_caching(), &cands, &ctx);
        assert_sound(&inst, &MonetaryCost::with_caching(), &cands, &ctx);
    }

    /// Concrete candidate lists collapse to exact points.
    #[test]
    fn concrete_intervals_are_points(seed in 0u64..10_000, pick in 0u64..10_000,
                                     m in 2usize..6) {
        let inst = instance(seed, 3, m);
        let (_, ctx) = candidates_and_context(&inst, pick);
        let plan: Vec<usize> = inst.buckets.iter()
            .map(|b| (pick as usize) % b.len())
            .collect();
        let singles: Vec<Vec<usize>> = plan.iter().map(|&i| vec![i]).collect();
        for measure in [
            Box::new(Coverage) as Box<dyn UtilityMeasure>,
            Box::new(FailureCost::with_caching()),
            Box::new(MonetaryCost::without_caching()),
            Box::new(FusionCost),
        ] {
            let iv = measure.utility_interval(&inst, &singles, &ctx);
            prop_assert!(iv.is_point(), "{}: {iv} not a point", measure.name());
            let u = measure.utility(&inst, &plan, &ctx);
            prop_assert!((iv.lo() - u).abs() < 1e-12);
        }
    }

    /// Independence oracles must be sound: if two plans are declared
    /// independent, executing one must not change the other's utility.
    #[test]
    fn independence_is_sound(seed in 0u64..10_000, pick in 0u64..10_000,
                             m in 2usize..6) {
        let inst = instance(seed, 3, m);
        let (_, mut ctx) = candidates_and_context(&inst, pick);
        let pa = (pick as usize) % inst.plan_count();
        let pb = (pick as usize / 7) % inst.plan_count();
        let plans = inst.all_plans();
        let (p, q) = (&plans[pa], &plans[pb]);
        for measure in [
            Box::new(Coverage) as Box<dyn UtilityMeasure>,
            Box::new(FailureCost::with_caching()),
            Box::new(FailureCost::without_caching()),
            Box::new(MonetaryCost::with_caching()),
        ] {
            if measure.independent(&inst, p, q) {
                let before = measure.utility(&inst, p, &ctx);
                ctx.record(q);
                let after = measure.utility(&inst, p, &ctx);
                prop_assert!((before - after).abs() < 1e-12,
                    "{}: utility of {:?} changed ({before} → {after}) after executing independent {:?}",
                    measure.name(), p, q);
            }
        }
    }

    /// Diminishing returns: measures that declare it must never increase a
    /// plan's utility as the context grows.
    #[test]
    fn diminishing_returns_holds_when_declared(seed in 0u64..10_000, pick in 0u64..10_000,
                                               m in 2usize..6) {
        let inst = instance(seed, 2, m);
        let plans = inst.all_plans();
        let target = &plans[(pick as usize) % plans.len()];
        for measure in [
            Box::new(Coverage) as Box<dyn UtilityMeasure>,
            Box::new(FailureCost::without_caching()),
            Box::new(MonetaryCost::without_caching()),
            Box::new(LinearCost),
            Box::new(FusionCost),
        ] {
            prop_assert!(measure.diminishing_returns());
            let mut ctx = ExecutionContext::new();
            let mut prev = measure.utility(&inst, target, &ctx);
            for (i, e) in plans.iter().enumerate().take(6) {
                ctx.record(e);
                let now = measure.utility(&inst, target, &ctx);
                prop_assert!(now <= prev + 1e-12,
                    "{}: utility rose {prev} → {now} at step {i}", measure.name());
                prev = now;
            }
        }
    }
}
