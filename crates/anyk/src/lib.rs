//! # qpo-anyk — tuple-level ranked (any-k) answer streaming
//!
//! The paper orders *plans*; users consume *answers*. This crate pushes
//! the ranking down one level: it enumerates each plan's answer tuples in
//! non-increasing score order without materializing the join
//! ([`RankedJoin`], the Tziavelis-style any-k frontier), and lazily
//! merges the per-plan streams into one globally ranked anytime stream
//! ([`AnyKMerge`]) that plans join speculatively and leave again when
//! retracted as unsound. Scores come from a pluggable [`TupleScorer`];
//! the default [`CatalogScorer`] derives per-source weights from the same
//! catalog statistics the plan orderers consume.
//!
//! The serving integration — `QuerySession::next_tuple`, the concurrent
//! executor hook, tuple-quality telemetry, and journal events — lives in
//! `qpo-exec` and `qpo-obs`; this crate is the dependency-light kernel
//! (datalog + catalog + the core comparison helper) those layers build
//! on. Everything here is deterministic by construction: all float
//! comparisons run through [`qpo_core::utility_cmp`] and all ties break
//! on encodings, never on attach order, wall-clock, or worker count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod enumerate;
mod merge;
mod scorer;

pub use enumerate::{LevelCache, RankedJoin};
pub use merge::{encode_tuple, AnyKMerge, RankedTuple, TupleStream, VecStream};
pub use scorer::{plan_bound, CatalogScorer, TupleScorer};
