//! Lazy cross-plan k-way merge: one globally ranked answer stream.
//!
//! [`AnyKMerge`] owns one ranked tuple stream per attached plan and a
//! binary heap keyed on each stream's current head score. Streams attach
//! as plans come live (speculatively, in the executor's emission order)
//! and detach by [`AnyKMerge::evict`] when a plan turns out unsound or
//! failed — eviction drops the stream's pending tuples and returns the
//! tuples it already contributed, so callers can journal the retraction.
//!
//! Emission is bound-gated: [`AnyKMerge::next_within`] delivers the best
//! live head only when its score strictly clears the caller's bound on
//! everything not yet attached (plans still queued or in flight). Because
//! each per-plan stream is non-increasing and bounds dominate the scores
//! of everything they stand for, the delivered sequence is globally
//! non-increasing — including across later attaches and the final drain.
//!
//! Determinism: heap ties break on the score under the normalized
//! [`qpo_core::utility_cmp`] total order, then the smaller plan encoding,
//! then the smaller tuple — never on attach order or wall-clock — so the
//! emitted sequence is bit-stable across worker counts.

use qpo_core::utility_cmp;
use qpo_datalog::{Constant, Tuple};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::fmt::Write as _;

use crate::RankedJoin;

/// A pull-based stream of `(score, tuple)` pairs in non-increasing score
/// order — the unit the cross-plan merge operates on.
pub trait TupleStream {
    /// The next best tuple of this stream, or `None` when exhausted.
    fn next(&mut self) -> Option<(f64, Tuple)>;
}

impl TupleStream for RankedJoin {
    fn next(&mut self) -> Option<(f64, Tuple)> {
        Iterator::next(self)
    }
}

/// An in-memory stream, ranked at construction. Mostly for tests and the
/// offline oracle; plan execution feeds [`RankedJoin`]s in directly.
#[derive(Debug, Clone, Default)]
pub struct VecStream {
    items: Vec<(f64, Tuple)>,
    pos: usize,
}

impl VecStream {
    /// Ranks `items` (score descending, tuple ascending on ties) and
    /// streams them.
    pub fn ranked(mut items: Vec<(f64, Tuple)>) -> Self {
        items.sort_by(|a, b| utility_cmp(b.0, a.0).then_with(|| a.1.cmp(&b.1)));
        VecStream { items, pos: 0 }
    }
}

impl TupleStream for VecStream {
    fn next(&mut self) -> Option<(f64, Tuple)> {
        let item = self.items.get(self.pos).cloned();
        self.pos += item.is_some() as usize;
        item
    }
}

/// One delivered answer of the globally ranked stream.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedTuple {
    /// The tuple's score under the session's [`TupleScorer`](crate::TupleScorer).
    pub score: f64,
    /// Emission sequence number of the plan that delivered it.
    pub plan_seq: u64,
    /// That plan, in bucket-index form.
    pub plan: Vec<usize>,
    /// The answer tuple itself.
    pub tuple: Tuple,
}

/// Deterministic string encoding of a ground tuple, used for journal
/// events and tie-breaking documentation: `(v1,v2,...)` with strings
/// quoted exactly as `Constant`'s `Display` renders them.
pub fn encode_tuple(tuple: &Tuple) -> String {
    let mut out = String::from("(");
    for (i, c) in tuple.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match c {
            Constant::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Constant::Str(s) => {
                let _ = write!(out, "{s:?}");
            }
        }
    }
    out.push(')');
    out
}

struct Slot {
    plan: Vec<usize>,
    stream: Box<dyn TupleStream>,
    /// Buffered head (the stream's next undelivered tuple).
    head: Option<(f64, Tuple)>,
    /// Tuples this stream delivered, in delivery order.
    contributed: Vec<RankedTuple>,
}

/// Heap key for one stream's current head. `Ord` is "greater = delivered
/// first": best score, then smaller plan, then smaller tuple.
struct HeadKey {
    score: f64,
    plan: Vec<usize>,
    tuple: Tuple,
    plan_seq: u64,
}

impl Ord for HeadKey {
    fn cmp(&self, other: &Self) -> Ordering {
        utility_cmp(self.score, other.score)
            .then_with(|| other.plan.cmp(&self.plan))
            .then_with(|| other.tuple.cmp(&self.tuple))
            .then_with(|| other.plan_seq.cmp(&self.plan_seq))
    }
}

impl PartialOrd for HeadKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for HeadKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for HeadKey {}

/// The k-way merge of per-plan ranked streams.
#[derive(Default)]
pub struct AnyKMerge {
    slots: BTreeMap<u64, Slot>,
    heap: BinaryHeap<HeadKey>,
    /// Global projection dedup: a tuple is delivered once, by the
    /// best-ranked stream that reaches it first. Kept across evictions —
    /// a retracted delivery does not re-open the slot (consumers
    /// reconcile through the eviction's contributed list instead).
    delivered: BTreeSet<Tuple>,
    delivered_count: u64,
}

impl AnyKMerge {
    /// An empty merge.
    pub fn new() -> Self {
        AnyKMerge::default()
    }

    /// Attaches a plan's ranked stream under `plan_seq` (which must be
    /// fresh). The stream is live immediately: its head competes in the
    /// heap from the next [`AnyKMerge::next_within`] call on.
    pub fn attach(&mut self, plan_seq: u64, plan: Vec<usize>, mut stream: Box<dyn TupleStream>) {
        debug_assert!(!self.slots.contains_key(&plan_seq), "plan_seq reused");
        let head = stream.next().map(|(s, t)| (s + 0.0, t));
        if let Some((score, tuple)) = &head {
            self.heap.push(HeadKey {
                score: *score,
                plan: plan.clone(),
                tuple: tuple.clone(),
                plan_seq,
            });
        }
        self.slots.insert(
            plan_seq,
            Slot {
                plan,
                stream,
                head,
                contributed: Vec::new(),
            },
        );
    }

    /// Evicts the stream attached under `plan_seq`: its pending tuples
    /// (head and everything still inside the stream) are dropped, and the
    /// tuples it already delivered are returned in delivery order so the
    /// caller can journal the retraction. No-op (empty vec) for unknown
    /// sequence numbers.
    pub fn evict(&mut self, plan_seq: u64) -> Vec<RankedTuple> {
        // Stale heap keys for the removed slot are skipped lazily on pop.
        self.slots
            .remove(&plan_seq)
            .map(|slot| slot.contributed)
            .unwrap_or_default()
    }

    /// Number of streams currently attached (delivering or pending).
    pub fn live_streams(&self) -> usize {
        self.slots.len()
    }

    /// Tuples delivered so far across all streams.
    pub fn delivered(&self) -> u64 {
        self.delivered_count
    }

    /// Score of the best live head, after discarding stale heap keys.
    pub fn peek_score(&mut self) -> Option<f64> {
        self.skim();
        self.heap.peek().map(|k| k.score)
    }

    /// Delivers the best live head if its score strictly clears `bound`
    /// (`None` = nothing outstanding, always deliver). Returns `None`
    /// when every attached stream is exhausted or the bound holds the
    /// stream back.
    pub fn next_within(&mut self, bound: Option<f64>) -> Option<RankedTuple> {
        loop {
            self.skim();
            let top = self.heap.peek()?;
            if let Some(b) = bound {
                if utility_cmp(top.score, b) != Ordering::Greater {
                    return None;
                }
            }
            let top = self.heap.pop().expect("peeked above");
            let slot = self.slots.get_mut(&top.plan_seq).expect("skimmed to live");
            // Advance the stream and re-key its new head.
            slot.head = slot.stream.next().map(|(s, t)| (s + 0.0, t));
            if let Some((score, tuple)) = &slot.head {
                debug_assert!(
                    utility_cmp(*score, top.score) != Ordering::Greater,
                    "per-plan stream must be non-increasing"
                );
                self.heap.push(HeadKey {
                    score: *score,
                    plan: slot.plan.clone(),
                    tuple: tuple.clone(),
                    plan_seq: top.plan_seq,
                });
            }
            if !self.delivered.insert(top.tuple.clone()) {
                continue; // another plan already delivered this answer
            }
            let ranked = RankedTuple {
                score: top.score,
                plan_seq: top.plan_seq,
                plan: slot.plan.clone(),
                tuple: top.tuple,
            };
            slot.contributed.push(ranked.clone());
            self.delivered_count += 1;
            return Some(ranked);
        }
    }

    /// Drops heap keys whose slot was evicted or whose head moved on.
    fn skim(&mut self) {
        while let Some(top) = self.heap.peek() {
            let live = self.slots.get(&top.plan_seq).is_some_and(|slot| {
                slot.head
                    .as_ref()
                    .is_some_and(|(s, t)| s.to_bits() == top.score.to_bits() && *t == top.tuple)
            });
            if live {
                return;
            }
            self.heap.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: i64) -> Tuple {
        vec![Constant::int(v)]
    }

    fn stream(items: &[(f64, i64)]) -> Box<dyn TupleStream> {
        Box::new(VecStream::ranked(
            items.iter().map(|&(s, v)| (s, t(v))).collect(),
        ))
    }

    #[test]
    fn merge_delivers_globally_best_first() {
        let mut m = AnyKMerge::new();
        m.attach(0, vec![0], stream(&[(5.0, 1), (1.0, 2)]));
        m.attach(1, vec![1], stream(&[(4.0, 3), (2.0, 4)]));
        let scores: Vec<f64> = std::iter::from_fn(|| m.next_within(None))
            .map(|r| r.score)
            .collect();
        assert_eq!(scores, vec![5.0, 4.0, 2.0, 1.0]);
    }

    #[test]
    fn bound_holds_the_stream_back_until_cleared() {
        let mut m = AnyKMerge::new();
        m.attach(0, vec![0], stream(&[(5.0, 1)]));
        assert!(m.next_within(Some(5.0)).is_none(), "5.0 does not clear 5.0");
        assert!(m.next_within(Some(6.0)).is_none());
        let r = m.next_within(Some(4.5)).unwrap();
        assert_eq!(r.score, 5.0);
    }

    #[test]
    fn ties_break_on_plan_then_tuple_not_attach_order() {
        let build = |order: &[usize]| {
            let mut m = AnyKMerge::new();
            for &i in order {
                match i {
                    0 => m.attach(0, vec![2, 0], stream(&[(3.0, 7)])),
                    _ => m.attach(1, vec![1, 9], stream(&[(3.0, 8)])),
                }
            }
            std::iter::from_fn(move || m.next_within(None))
                .map(|r| (r.score, r.plan, r.tuple))
                .collect::<Vec<_>>()
        };
        let a = build(&[0, 1]);
        let b = build(&[1, 0]);
        assert_eq!(a, b);
        assert_eq!(a[0].1, vec![1, 9], "smaller plan encoding wins the tie");
    }

    #[test]
    fn eviction_returns_contributions_and_drops_pending() {
        let mut m = AnyKMerge::new();
        m.attach(0, vec![0], stream(&[(5.0, 1), (3.0, 2), (1.0, 3)]));
        m.attach(1, vec![1], stream(&[(4.0, 4)]));
        let first = m.next_within(None).unwrap();
        assert_eq!((first.score, first.plan_seq), (5.0, 0));
        let contributed = m.evict(0);
        assert_eq!(contributed.len(), 1);
        assert_eq!(contributed[0].tuple, t(1));
        // Pending tuples (3.0, 1.0) of the evicted stream never surface.
        let rest: Vec<RankedTuple> = std::iter::from_fn(|| m.next_within(None)).collect();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].tuple, t(4));
        assert_eq!(m.live_streams(), 1);
        assert!(m.evict(42).is_empty(), "unknown seq is a no-op");
    }

    #[test]
    fn duplicate_answers_deliver_once_from_the_better_ranked_stream() {
        let mut m = AnyKMerge::new();
        m.attach(0, vec![0], stream(&[(5.0, 1)]));
        m.attach(1, vec![1], stream(&[(4.0, 1), (2.0, 9)]));
        let all: Vec<RankedTuple> = std::iter::from_fn(|| m.next_within(None)).collect();
        assert_eq!(all.len(), 2);
        assert_eq!((all[0].plan_seq, all[0].score), (0, 5.0));
        assert_eq!(all[1].tuple, t(9));
        assert_eq!(m.delivered(), 2);
    }

    #[test]
    fn encode_tuple_is_stable() {
        assert_eq!(
            encode_tuple(&vec![Constant::int(3), Constant::str("x")]),
            "(3,\"x\")"
        );
        assert_eq!(encode_tuple(&Vec::new()), "()");
    }
}
