//! Rank-aware intra-plan enumeration: a lazy, best-first join.
//!
//! [`RankedJoin`] evaluates one plan's conjunctive query and yields its
//! answer tuples in non-increasing score order **without materializing
//! the full join first** — the Tziavelis-style any-k frontier mapped onto
//! this repo's hash-join decomposition. Per body atom ("level") it builds
//! the same scored binding lists `Database::evaluate` would join, grouped
//! by the variables shared with the prefix and sorted best-first; a
//! priority queue then runs A\*/Lawler successor expansion over partial
//! joins. An entry's priority is its prefix score plus an admissible
//! bound on the best completion (the sum of the remaining levels' best
//! binding scores), so a full assignment pops only once nothing pending
//! can beat it — the first emission needs one root push and one
//! heap-descent per level, not the whole join.
//!
//! Determinism: binding lists sort by (score, binding) under the
//! normalized [`qpo_core::utility_cmp`] total order, and heap ties break
//! on the lexicographically smallest candidate-index path, so the
//! emission sequence is a pure function of the database, query, and
//! scorer — bit-stable across runs and worker counts.

use qpo_core::utility_cmp;
use qpo_datalog::{Atom, ConjunctiveQuery, Constant, Database, Term, Tuple};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::sync::{Arc, Mutex};

type Row = BTreeMap<Arc<str>, Constant>;

/// One scored candidate binding at a level.
#[derive(Debug)]
struct Cand {
    score: f64,
    binding: Row,
}

/// One body atom's scored, grouped, best-first-sorted binding lists.
#[derive(Debug)]
struct Level {
    /// Variables this atom shares with the atoms before it (the join key).
    shared: Vec<Arc<str>>,
    /// Candidate bindings per join-key value, each sorted best-first.
    groups: Vec<Vec<Cand>>,
    /// Join-key value → index into `groups`.
    index: BTreeMap<Vec<Constant>, usize>,
    /// Best candidate score across every group (admissible completion
    /// bound ingredient).
    max_score: f64,
}

impl Level {
    /// Approximate resident bytes (candidates dominate).
    fn approx_bytes(&self) -> usize {
        let cands: usize = self
            .groups
            .iter()
            .flatten()
            .map(|c| {
                std::mem::size_of::<Cand>()
                    + c.binding
                        .iter()
                        .map(|(k, v)| k.len() + std::mem::size_of_val(v) + 16)
                        .sum::<usize>()
            })
            .sum();
        cands + self.index.len() * 32 + std::mem::size_of::<Self>()
    }
}

/// Scans, scores, groups, and sorts one atom's binding lists — the
/// expensive part of [`RankedJoin`] construction, and a pure function of
/// `(database, atom, shared variables, that atom's scorer)`: exactly what
/// [`LevelCache`] shares across plans.
fn build_level(
    db: &Database,
    atom: &Atom,
    ai: usize,
    shared: &[Arc<str>],
    atom_score: &mut dyn FnMut(usize, &Tuple) -> f64,
) -> Level {
    let mut cands: Vec<Cand> = Vec::new();
    'tuples: for tuple in db.tuples(&atom.predicate) {
        if tuple.len() != atom.arity() {
            continue;
        }
        let mut binding = Row::new();
        for (term, value) in atom.terms.iter().zip(tuple) {
            match term {
                Term::Const(c) => {
                    if c != value {
                        continue 'tuples;
                    }
                }
                Term::Var(v) => match binding.get(v.as_ref()) {
                    Some(prev) if prev != value => continue 'tuples,
                    Some(_) => {}
                    None => {
                        binding.insert(v.clone(), value.clone());
                    }
                },
            }
        }
        let score = atom_score(ai, tuple) + 0.0;
        cands.push(Cand { score, binding });
    }
    let max_score = cands
        .iter()
        .map(|c| c.score)
        .fold(f64::NEG_INFINITY, |a, s| {
            if utility_cmp(s, a) == Ordering::Greater {
                s
            } else {
                a
            }
        });
    let mut index: BTreeMap<Vec<Constant>, usize> = BTreeMap::new();
    let mut groups: Vec<Vec<Cand>> = Vec::new();
    for cand in cands {
        let key: Vec<Constant> = shared
            .iter()
            .map(|v| cand.binding[v.as_ref()].clone())
            .collect();
        let next_id = groups.len();
        let gid = *index.entry(key).or_insert(next_id);
        if gid == groups.len() {
            groups.push(Vec::new());
        }
        groups[gid].push(cand);
    }
    for group in &mut groups {
        group.sort_by(|a, b| utility_cmp(b.score, a.score).then_with(|| a.binding.cmp(&b.binding)));
    }
    Level {
        shared: shared.to_vec(),
        groups,
        index,
        max_score,
    }
}

#[derive(Debug, Default)]
struct LevelCacheInner {
    levels: BTreeMap<String, Arc<Level>>,
    hits: u64,
    misses: u64,
}

/// Cross-plan cache of constructed [`RankedJoin`] levels, cheaply
/// cloneable (shared interior).
///
/// Overlapping plans of one reformulation repeat atoms (with the same
/// chosen source) at the same body positions; their scored, grouped,
/// sorted binding lists are identical, and building them is the dominant
/// cost of `RankedJoin::new`. The cache shares them as [`Arc`]s.
///
/// ## Key contract
///
/// The caller's per-level key must determine the atom *and* its scoring
/// function (for plan enumeration: the atom's rendered form plus the
/// chosen source); the cache appends the shared-variable join key itself.
/// One cache must only ever be used with a single `(database, scorer)`
/// pairing — scope it to a session, as `qpo-exec`'s execution memo does.
#[derive(Debug, Clone, Default)]
pub struct LevelCache {
    inner: Arc<Mutex<LevelCacheInner>>,
}

impl LevelCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        LevelCache::default()
    }

    /// Levels served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.lock().hits
    }

    /// Levels built fresh so far.
    pub fn misses(&self) -> u64 {
        self.lock().misses
    }

    /// Number of cached levels.
    pub fn len(&self) -> usize {
        self.lock().levels.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().levels.is_empty()
    }

    /// Approximate resident bytes of every cached level.
    pub fn approx_bytes(&self) -> usize {
        self.lock()
            .levels
            .iter()
            .map(|(k, l)| k.len() + l.approx_bytes())
            .sum()
    }

    fn get_or_build(&self, key: String, build: impl FnOnce() -> Level) -> Arc<Level> {
        if let Some(level) = {
            let mut inner = self.lock();
            let found = inner.levels.get(&key).cloned();
            if found.is_some() {
                inner.hits += 1;
            }
            found
        } {
            return level;
        }
        // Built outside the lock: construction scans the database.
        let level = Arc::new(build());
        let mut inner = self.lock();
        inner.misses += 1;
        inner
            .levels
            .entry(key)
            .or_insert_with(|| Arc::clone(&level));
        level
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LevelCacheInner> {
        self.inner
            .lock()
            .expect("level cache lock is never poisoned")
    }
}

/// A frontier entry: the choice of candidate `idx` (within `group`) at
/// `level`, extending the prefix `row` whose score is `prefix_score`.
struct Entry {
    /// `prefix_score + cand.score + rest_bound[level]` — an upper bound
    /// on the best full answer under this entry, exact at the last level.
    priority: f64,
    level: usize,
    group: usize,
    idx: usize,
    /// Prefix score *before* this entry's candidate.
    prefix_score: f64,
    /// Prefix bindings *before* this entry's candidate (shared with
    /// siblings).
    row: Arc<Row>,
    /// Candidate indices chosen at levels `0..=level` (this entry's `idx`
    /// last) — the deterministic tie-break.
    path: Vec<usize>,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        utility_cmp(self.priority, other.priority).then_with(|| other.path.cmp(&self.path))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Entry {}

/// Lazy best-first enumeration of one conjunctive query's answers.
///
/// Yields `(score, tuple)` pairs in non-increasing score order, each
/// distinct projected head tuple exactly once (at its maximum score).
pub struct RankedJoin {
    head: Vec<Term>,
    levels: Vec<Arc<Level>>,
    /// `rest_bound[i]` = sum of `levels[i+1..]` best scores.
    rest_bound: Vec<f64>,
    heap: BinaryHeap<Entry>,
    emitted: BTreeSet<Tuple>,
    /// Empty-body queries emit their (all-constant) head once.
    trivial: Option<Tuple>,
}

impl RankedJoin {
    /// Builds the enumerator for `query` over `db`, scoring each stored
    /// fact with `atom_score(atom_index, fact)`.
    ///
    /// # Panics
    /// Panics if the query is unsafe (same contract as
    /// [`Database::evaluate`]).
    pub fn new(
        db: &Database,
        query: &ConjunctiveQuery,
        mut atom_score: impl FnMut(usize, &Tuple) -> f64,
    ) -> Self {
        assert!(query.is_safe(), "cannot enumerate unsafe query {query}");
        let mut levels = Vec::with_capacity(query.body.len());
        let mut bound_vars: BTreeSet<Arc<str>> = BTreeSet::new();
        for (ai, atom) in query.body.iter().enumerate() {
            let shared: Vec<Arc<str>> = atom
                .variables()
                .into_iter()
                .filter(|v| bound_vars.contains(v))
                .collect();
            levels.push(Arc::new(build_level(
                db,
                atom,
                ai,
                &shared,
                &mut atom_score,
            )));
            bound_vars.extend(atom.variables());
        }
        Self::assemble(query, levels)
    }

    /// [`RankedJoin::new`] with level construction shared through a
    /// [`LevelCache`]: each level is fetched by `level_key(atom_index)`
    /// (see the cache's key contract) and built only on a miss. The
    /// emitted stream is bit-identical to the uncached constructor —
    /// levels are pure functions of their key.
    ///
    /// # Panics
    /// Panics if the query is unsafe.
    pub fn with_cache(
        db: &Database,
        query: &ConjunctiveQuery,
        mut atom_score: impl FnMut(usize, &Tuple) -> f64,
        cache: &LevelCache,
        mut level_key: impl FnMut(usize) -> String,
    ) -> Self {
        assert!(query.is_safe(), "cannot enumerate unsafe query {query}");
        let mut levels = Vec::with_capacity(query.body.len());
        let mut bound_vars: BTreeSet<Arc<str>> = BTreeSet::new();
        for (ai, atom) in query.body.iter().enumerate() {
            let shared: Vec<Arc<str>> = atom
                .variables()
                .into_iter()
                .filter(|v| bound_vars.contains(v))
                .collect();
            let mut key = level_key(ai);
            key.push('|');
            for v in &shared {
                key.push_str(v);
                key.push(',');
            }
            levels.push(
                cache.get_or_build(key, || build_level(db, atom, ai, &shared, &mut atom_score)),
            );
            bound_vars.extend(atom.variables());
        }
        Self::assemble(query, levels)
    }

    /// Shared tail of the constructors: completion bounds, the trivial
    /// empty-body answer, and the root frontier entry.
    fn assemble(query: &ConjunctiveQuery, levels: Vec<Arc<Level>>) -> Self {
        let mut rest_bound = vec![0.0; levels.len()];
        for i in (0..levels.len().saturating_sub(1)).rev() {
            rest_bound[i] = levels[i + 1].max_score + rest_bound[i + 1] + 0.0;
        }
        let trivial = query.body.is_empty().then(|| {
            query
                .head
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(c) => c.clone(),
                    Term::Var(v) => unreachable!("safe empty-body query binds {v}"),
                })
                .collect()
        });
        let mut join = RankedJoin {
            head: query.head.terms.clone(),
            levels,
            rest_bound,
            heap: BinaryHeap::new(),
            emitted: BTreeSet::new(),
            trivial,
        };
        join.seed();
        join
    }

    /// Pushes the root frontier entry (best candidate of level 0).
    fn seed(&mut self) {
        let Some(level0) = self.levels.first() else {
            return;
        };
        // Level 0 shares no variables with an (empty) prefix, so all its
        // candidates live in the single empty-key group.
        if let Some(&gid) = level0.index.get(&Vec::new()) {
            let priority = level0.groups[gid][0].score + self.rest_bound[0] + 0.0;
            self.heap.push(Entry {
                priority,
                level: 0,
                group: gid,
                idx: 0,
                prefix_score: 0.0,
                row: Arc::new(Row::new()),
                path: vec![0],
            });
        }
    }

    /// Drains the remaining stream into a vector (ranked order).
    pub fn drain(&mut self) -> Vec<(f64, Tuple)> {
        self.by_ref().collect()
    }
}

/// Emits each distinct answer tuple lazily, best score first.
impl Iterator for RankedJoin {
    type Item = (f64, Tuple);

    fn next(&mut self) -> Option<(f64, Tuple)> {
        if let Some(tuple) = self.trivial.take() {
            return Some((0.0, tuple));
        }
        while let Some(entry) = self.heap.pop() {
            let group = &self.levels[entry.level].groups[entry.group];
            let cand = &group[entry.idx];
            // Lawler successor: the same prefix with this level's next-best
            // candidate stays on the frontier.
            if entry.idx + 1 < group.len() {
                let sibling = &group[entry.idx + 1];
                let mut path = entry.path.clone();
                *path.last_mut().expect("path covers levels 0..=level") = entry.idx + 1;
                self.heap.push(Entry {
                    priority: entry.prefix_score
                        + sibling.score
                        + self.rest_bound[entry.level]
                        + 0.0,
                    level: entry.level,
                    group: entry.group,
                    idx: entry.idx + 1,
                    prefix_score: entry.prefix_score,
                    row: Arc::clone(&entry.row),
                    path,
                });
            }
            let score = entry.prefix_score + cand.score + 0.0;
            let mut row = (*entry.row).clone();
            for (k, v) in &cand.binding {
                row.insert(k.clone(), v.clone());
            }
            if entry.level + 1 == self.levels.len() {
                let tuple = project(&self.head, &row);
                if self.emitted.insert(tuple.clone()) {
                    return Some((score, tuple));
                }
                continue;
            }
            // Descend: best candidate of the next level's matching group.
            let next_level = &self.levels[entry.level + 1];
            let key: Vec<Constant> = next_level
                .shared
                .iter()
                .map(|v| row[v.as_ref()].clone())
                .collect();
            if let Some(&gid) = next_level.index.get(&key) {
                let child = &next_level.groups[gid][0];
                let mut path = entry.path.clone();
                path.push(0);
                self.heap.push(Entry {
                    priority: score + child.score + self.rest_bound[entry.level + 1] + 0.0,
                    level: entry.level + 1,
                    group: gid,
                    idx: 0,
                    prefix_score: score,
                    row: Arc::new(row),
                    path,
                });
            }
        }
        None
    }
}

fn project(head: &[Term], row: &Row) -> Tuple {
    head.iter()
        .map(|t| match t {
            Term::Const(c) => c.clone(),
            Term::Var(v) => row
                .get(v.as_ref())
                .cloned()
                .expect("safe query binds every head variable"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpo_datalog::parse_query;

    fn movie_db() -> Database {
        let mut db = Database::new();
        for (a, m) in [
            ("ford", "blade_runner"),
            ("ford", "witness"),
            ("hanks", "big"),
        ] {
            db.insert("play_in", vec![Constant::str(a), Constant::str(m)]);
        }
        for (r, m) in [("rev1", "blade_runner"), ("rev2", "big")] {
            db.insert("review_of", vec![Constant::str(r), Constant::str(m)]);
        }
        db
    }

    fn flat_score(_: usize, _: &Tuple) -> f64 {
        1.0
    }

    #[test]
    fn ranked_join_matches_evaluate() {
        let db = movie_db();
        for text in [
            "q(M) :- play_in(ford, M)",
            "q(M, R) :- play_in(ford, M), review_of(R, M)",
            "q(A, M, R) :- play_in(A, M), review_of(R, M)",
            "q(M) :- play_in(nobody, M)",
            "q(X, Y) :- play_in(X, Y), play_in(X, Y)",
        ] {
            let q = parse_query(text).unwrap();
            let mut join = RankedJoin::new(&db, &q, flat_score);
            let got: BTreeSet<Tuple> = join.drain().into_iter().map(|(_, t)| t).collect();
            assert_eq!(got, db.evaluate(&q), "{text}");
        }
    }

    #[test]
    fn emission_is_lazy_and_non_increasing() {
        let mut db = Database::new();
        for i in 0..20 {
            db.insert("a", vec![Constant::int(i)]);
            db.insert("b", vec![Constant::int(i)]);
        }
        let q = parse_query("q(X, Y) :- a(X), b(Y)").unwrap();
        // Score favours large ints; the top answer must arrive first
        // without draining the 400-tuple product.
        let mut join = RankedJoin::new(&db, &q, |_, t| match t[0] {
            Constant::Int(i) => i as f64,
            _ => 0.0,
        });
        let (score, tuple) = join.next().unwrap();
        assert_eq!(score, 38.0);
        assert_eq!(tuple, vec![Constant::int(19), Constant::int(19)]);
        assert!(
            join.heap.len() < 10,
            "frontier stays small after the first pop (got {})",
            join.heap.len()
        );
        let rest = join.drain();
        assert_eq!(rest.len() + 1, 400);
        let mut last = score;
        for (s, _) in rest {
            assert!(utility_cmp(last, s) != Ordering::Less, "{last} then {s}");
            last = s;
        }
    }

    #[test]
    fn join_key_respects_shared_variables() {
        let db = movie_db();
        let q = parse_query("q(M, R) :- play_in(ford, M), review_of(R, M)").unwrap();
        let mut join = RankedJoin::new(&db, &q, flat_score);
        let all = join.drain();
        assert_eq!(all.len(), 1);
        assert_eq!(
            all[0].1,
            vec![Constant::str("blade_runner"), Constant::str("rev1")]
        );
    }

    #[test]
    fn duplicate_projections_emit_once_at_max_score() {
        let mut db = Database::new();
        db.insert("r", vec![Constant::int(1), Constant::int(10)]);
        db.insert("r", vec![Constant::int(1), Constant::int(20)]);
        let q = parse_query("q(X) :- r(X, Y)").unwrap();
        let mut join = RankedJoin::new(&db, &q, |_, t| match t[1] {
            Constant::Int(i) => i as f64,
            _ => 0.0,
        });
        let all = join.drain();
        assert_eq!(all.len(), 1, "projection dedup");
        assert_eq!(all[0].0, 20.0, "kept at its best score");
    }

    #[test]
    fn cached_levels_reproduce_the_stream_bit_for_bit() {
        let db = movie_db();
        let cache = LevelCache::new();
        let score = |ai: usize, t: &Tuple| ai as f64 + t.len() as f64;
        for text in [
            "q(M, R) :- play_in(ford, M), review_of(R, M)",
            "q(A, M, R) :- play_in(A, M), review_of(R, M)",
        ] {
            let q = parse_query(text).unwrap();
            let reference = RankedJoin::new(&db, &q, score).drain();
            // Two cached constructions: the second hits every level.
            for _ in 0..2 {
                let cached =
                    RankedJoin::with_cache(&db, &q, score, &cache, |ai| format!("{text}#{ai}"))
                        .drain();
                assert_eq!(cached.len(), reference.len(), "{text}");
                for ((s1, t1), (s2, t2)) in cached.iter().zip(&reference) {
                    assert_eq!(s1.to_bits(), s2.to_bits(), "{text}");
                    assert_eq!(t1, t2, "{text}");
                }
            }
        }
        assert_eq!(cache.hits(), 4, "second runs hit every level");
        assert_eq!(cache.misses(), 4, "2 + 2 distinct levels built once");
        assert!(cache.approx_bytes() > 0);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn cache_keys_isolate_different_scorers() {
        // Same atoms, different per-position scoring: distinct keys must
        // keep the streams honest.
        let db = movie_db();
        let cache = LevelCache::new();
        let q = parse_query("q(M) :- play_in(ford, M)").unwrap();
        let low =
            RankedJoin::with_cache(&db, &q, |_, _| 1.0, &cache, |ai| format!("low#{ai}")).drain();
        let high =
            RankedJoin::with_cache(&db, &q, |_, _| 9.0, &cache, |ai| format!("high#{ai}")).drain();
        assert_eq!(low.len(), high.len());
        assert!(low.iter().all(|(s, _)| *s == 1.0));
        assert!(high.iter().all(|(s, _)| *s == 9.0));
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn empty_body_emits_the_constant_head_once() {
        let db = Database::new();
        let q = parse_query("q() :-").unwrap();
        let mut join = RankedJoin::new(&db, &q, flat_score);
        assert_eq!(join.next(), Some((0.0, Vec::new())));
        assert_eq!(join.next(), None);
    }
}
