//! Tuple scoring: the rank the any-k stream orders answers by.
//!
//! A [`TupleScorer`] assigns every source fact a score and the stream's
//! rank of an answer tuple is the **sum** of its per-subgoal fact scores.
//! Summing is what makes the enumerator's A\*-style bound admissible: the
//! best completion of a partial join is bounded by the sum of the
//! remaining subgoals' best fact scores, so tuples pop from the frontier
//! in exact non-increasing true-score order (see
//! [`RankedJoin`](crate::RankedJoin)).
//!
//! The default [`CatalogScorer`] derives per-source weights from the
//! catalog statistics the plan orderers already consume — coverage
//! fraction discounted by failure probability, minus the per-tuple fee —
//! so "good sources first" at the plan level and at the tuple level agree.
//! Because those weights are fact-independent, intra-plan ties fall to
//! the enumerator's deterministic tuple tie-break; tests and demos that
//! want fact-sensitive ranks enable [`CatalogScorer::with_jitter`], which
//! adds a deterministic content-hash fraction per fact.

use qpo_catalog::{ProblemInstance, SourceRef, SourceStats};
use qpo_datalog::{Constant, Tuple};

/// Scores the facts a source contributes to one subgoal (bucket).
///
/// Contract: for every fact `f` of a source,
/// `atom_score(bucket, stats, f) <= atom_bound(bucket, stats)` — the
/// enumerator and the cross-plan merge both lean on the bound to decide
/// when a head tuple is safe to emit.
pub trait TupleScorer {
    /// Score of one fact drawn from the source described by `stats` for
    /// subgoal `bucket`.
    fn atom_score(&self, bucket: usize, stats: &SourceStats, fact: &Tuple) -> f64;

    /// Upper bound on [`TupleScorer::atom_score`] over every fact the
    /// source can contribute for `bucket`.
    fn atom_bound(&self, bucket: usize, stats: &SourceStats) -> f64;
}

/// Upper bound on the score of any tuple `plan` can produce: the sum of
/// its sources' per-subgoal bounds (normalized so `-0.0` never leaks
/// into comparisons).
pub fn plan_bound(scorer: &dyn TupleScorer, inst: &ProblemInstance, plan: &[usize]) -> f64 {
    plan.iter()
        .enumerate()
        .map(|(b, &i)| scorer.atom_bound(b, inst.stat(SourceRef::new(b, i))))
        .sum::<f64>()
        + 0.0
}

/// The default scorer: catalog-statistics-derived per-source weights.
///
/// A fact from a source with extent `e`, failure probability `p`, and
/// per-tuple fee `fee` scores
/// `(1 - p) · |e| / universe - fee  (+ jitter · hash(fact))`.
#[derive(Debug, Clone, Copy)]
pub struct CatalogScorer {
    universe: f64,
    jitter: f64,
}

impl CatalogScorer {
    /// A scorer for sources over a universe of `universe` items.
    pub fn new(universe: u64) -> Self {
        CatalogScorer {
            universe: (universe.max(1)) as f64,
            jitter: 0.0,
        }
    }

    /// Adds `amplitude · h(fact)` to every fact score, where
    /// `h(fact) ∈ [0, 1)` is a deterministic content hash. Makes ranks
    /// fact-sensitive (distinct facts from one source score differently)
    /// while staying reproducible across runs and worker counts.
    pub fn with_jitter(mut self, amplitude: f64) -> Self {
        self.jitter = amplitude.max(0.0);
        self
    }

    fn weight(&self, stats: &SourceStats) -> f64 {
        (1.0 - stats.failure_prob) * (stats.extent.len as f64 / self.universe) - stats.fee_per_tuple
    }
}

impl TupleScorer for CatalogScorer {
    fn atom_score(&self, _bucket: usize, stats: &SourceStats, fact: &Tuple) -> f64 {
        let mut s = self.weight(stats);
        if self.jitter > 0.0 {
            s += self.jitter * hash_frac(fact);
        }
        s + 0.0
    }

    fn atom_bound(&self, _bucket: usize, stats: &SourceStats) -> f64 {
        self.weight(stats) + self.jitter + 0.0
    }
}

/// Deterministic content hash of a ground tuple, folded to `[0, 1)`.
/// SplitMix64-style mixing over the constants' bytes — stable across
/// platforms, worker counts, and re-runs.
fn hash_frac(fact: &Tuple) -> f64 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut feed = |word: u64| {
        h ^= word;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
    };
    for c in fact {
        match c {
            Constant::Int(i) => feed(*i as u64),
            Constant::Str(s) => {
                for b in s.bytes() {
                    feed(u64::from(b) | 0x100);
                }
            }
        }
    }
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpo_catalog::Extent;

    fn stats(len: u64, fee: f64, p: f64) -> SourceStats {
        SourceStats::new()
            .with_extent(Extent::new(0, len))
            .with_fee(fee)
            .with_failure_prob(p)
    }

    #[test]
    fn weight_combines_coverage_failure_and_fee() {
        let sc = CatalogScorer::new(100);
        let s = stats(50, 0.1, 0.2);
        let w = sc.atom_score(0, &s, &vec![Constant::int(1)]);
        assert!((w - (0.8 * 0.5 - 0.1)).abs() < 1e-12);
        assert_eq!(w.to_bits(), sc.atom_bound(0, &s).to_bits());
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let sc = CatalogScorer::new(100).with_jitter(0.5);
        let s = stats(50, 0.0, 0.0);
        let f1 = vec![Constant::int(1)];
        let f2 = vec![Constant::int(2)];
        let a = sc.atom_score(0, &s, &f1);
        let b = sc.atom_score(0, &s, &f2);
        assert_eq!(a.to_bits(), sc.atom_score(0, &s, &f1).to_bits());
        assert_ne!(a.to_bits(), b.to_bits(), "distinct facts, distinct ranks");
        let bound = sc.atom_bound(0, &s);
        assert!(a <= bound && b <= bound);
    }

    #[test]
    fn hash_frac_stays_in_unit_interval() {
        for i in 0..100 {
            let f = hash_frac(&vec![Constant::int(i), Constant::str("x")]);
            assert!((0.0..1.0).contains(&f));
        }
    }
}
