//! Property tests for the cross-plan any-k merge: global order, attach
//! permutation invariance, and eviction surgical precision under
//! arbitrary per-stream score sequences.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use qpo_anyk::{AnyKMerge, RankedTuple, TupleStream, VecStream};
use qpo_core::utility_cmp;
use qpo_datalog::{Constant, Tuple};
use std::cmp::Ordering;

/// Builds one plan's stream from raw scores; the tuple payload encodes
/// (plan id, item index) so every stream contributes distinct answers.
fn stream(plan_id: usize, scores: &[f64]) -> Box<dyn TupleStream> {
    let items: Vec<(f64, Tuple)> = scores
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            (
                s,
                vec![Constant::int(plan_id as i64), Constant::int(i as i64)],
            )
        })
        .collect();
    Box::new(VecStream::ranked(items))
}

/// Attaches `streams[i]` under plan_seq `i` / plan `[i]` in the order
/// `order` prescribes, then drains without a bound.
fn drain_in_order(streams: &[Vec<f64>], order: &[usize]) -> Vec<RankedTuple> {
    let mut merge = AnyKMerge::new();
    for &i in order {
        merge.attach(i as u64, vec![i], stream(i, &streams[i]));
    }
    std::iter::from_fn(|| merge.next_within(None)).collect()
}

fn scores() -> impl Strategy<Value = Vec<f64>> {
    pvec(-100.0f64..100.0, 0..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The merged output is globally non-increasing for arbitrary
    /// per-stream score multisets.
    #[test]
    fn merge_output_is_non_increasing(streams in pvec(scores(), 1..5)) {
        let order: Vec<usize> = (0..streams.len()).collect();
        let out = drain_in_order(&streams, &order);
        let total: usize = streams.iter().map(Vec::len).sum();
        prop_assert_eq!(out.len(), total, "distinct payloads all surface");
        for w in out.windows(2) {
            prop_assert_ne!(
                utility_cmp(w[1].score, w[0].score),
                Ordering::Greater,
                "scores must not increase: {} then {}", w[0].score, w[1].score
            );
        }
    }

    /// Permuting attach order never changes the emitted sequence — ties
    /// break on encodings, not on arrival.
    #[test]
    fn attach_order_never_changes_the_stream(
        streams in pvec(scores(), 2..5),
        seed in 0u64..1000,
    ) {
        let n = streams.len();
        let forward: Vec<usize> = (0..n).collect();
        // A deterministic permutation derived from the seed.
        let mut permuted = forward.clone();
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        for i in (1..n).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            permuted.swap(i, (state as usize) % (i + 1));
        }
        let a = drain_in_order(&streams, &forward);
        let b = drain_in_order(&streams, &permuted);
        prop_assert_eq!(a, b);
    }

    /// Evicting one stream removes exactly its pending tuples: the other
    /// streams' deliveries are untouched and the eviction returns exactly
    /// what the victim had already contributed.
    #[test]
    fn eviction_removes_exactly_the_victims_pending(
        streams in pvec(scores(), 2..5),
        victim_pick in 0usize..64,
        pulls in 0usize..12,
    ) {
        let victim = victim_pick % streams.len();
        let mut merge = AnyKMerge::new();
        for (i, s) in streams.iter().enumerate() {
            merge.attach(i as u64, vec![i], stream(i, s));
        }
        let mut before: Vec<RankedTuple> = Vec::new();
        for _ in 0..pulls {
            match merge.next_within(None) {
                Some(rt) => before.push(rt),
                None => break,
            }
        }
        let contributed = merge.evict(victim as u64);
        // The eviction reports exactly the victim's deliveries so far.
        let victims_delivered: Vec<RankedTuple> = before
            .iter()
            .filter(|rt| rt.plan_seq == victim as u64)
            .cloned()
            .collect();
        prop_assert_eq!(contributed, victims_delivered);
        // The rest of the stream carries no victim tuples and matches the
        // victim-free run's tail exactly.
        let after: Vec<RankedTuple> = std::iter::from_fn(|| merge.next_within(None)).collect();
        prop_assert!(after.iter().all(|rt| rt.plan_seq != victim as u64));
        let mut reference = AnyKMerge::new();
        for (i, s) in streams.iter().enumerate() {
            if i != victim {
                reference.attach(i as u64, vec![i], stream(i, s));
            }
        }
        let reference_all: Vec<RankedTuple> =
            std::iter::from_fn(|| reference.next_within(None)).collect();
        let expected_tail: Vec<RankedTuple> = reference_all
            .into_iter()
            .filter(|rt| !before.contains(rt))
            .collect();
        prop_assert_eq!(after, expected_tail);
    }
}
