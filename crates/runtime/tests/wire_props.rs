//! Property tests for the source-server wire protocol: arbitrary
//! requests/responses round-trip bit-exactly, and arbitrary byte soup
//! never panics a decoder — it errors.

use proptest::prelude::*;
use qpo_datalog::{Constant, Tuple};
use qpo_runtime::wire::{
    decode_relation, decode_request, decode_request_ext, decode_response, decode_response_ext,
    encode_relation, encode_request, encode_request_with, encode_response, encode_response_with,
    read_frame, write_frame, Request, Response, ServerSpan, TraceContext,
};

/// An ASCII identifier-ish string (the shim has no regex strategies).
fn arb_name(max_len: usize) -> impl Strategy<Value = String> {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_- ";
    proptest::collection::vec(0usize..ALPHABET.len(), 0..max_len)
        .prop_map(|ix| ix.into_iter().map(|i| ALPHABET[i] as char).collect())
}

fn arb_constant() -> impl Strategy<Value = Constant> {
    prop_oneof![
        any::<i64>().prop_map(Constant::Int).boxed(),
        arb_name(12).prop_map(|s| Constant::Str(s.into())).boxed(),
    ]
}

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    proptest::collection::vec(arb_constant(), 0..5)
}

fn arb_request() -> impl Strategy<Value = Request> {
    (arb_name(16), arb_name(8)).prop_map(|(source, pattern)| Request { source, pattern })
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        proptest::collection::vec(arb_tuple(), 0..8)
            .prop_map(Response::Rows)
            .boxed(),
        arb_name(20).prop_map(Response::UnknownSource).boxed(),
        arb_name(20).prop_map(Response::Error).boxed(),
    ]
}

fn arb_trace_context() -> impl Strategy<Value = TraceContext> {
    (any::<u64>(), any::<u64>(), arb_name(16), any::<u32>()).prop_map(
        |(run, plan_seq, source, attempt)| TraceContext {
            run,
            plan_seq,
            source,
            attempt,
        },
    )
}

/// Finite non-negative phase times, the only values servers measure.
fn arb_phase() -> impl Strategy<Value = f64> {
    (0u32..1_000_000).prop_map(|micros| f64::from(micros) * 1e-6)
}

fn arb_server_span() -> impl Strategy<Value = ServerSpan> {
    (
        arb_phase(),
        arb_phase(),
        arb_phase(),
        arb_phase(),
        any::<u64>(),
    )
        .prop_map(
            |(recv_parse, lookup, encode, slack, request_seq)| ServerSpan {
                recv_parse,
                lookup,
                encode,
                total: recv_parse + lookup + encode + slack,
                request_seq,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn requests_round_trip(req in arb_request()) {
        let bytes = encode_request(&req).expect("encodes");
        prop_assert_eq!(decode_request(&bytes).expect("decodes"), req);
    }

    #[test]
    fn responses_round_trip(resp in arb_response(), epoch in any::<u64>()) {
        let bytes = encode_response(&resp, epoch).expect("encodes");
        prop_assert_eq!(decode_response(&bytes).expect("decodes"), (resp, epoch));
    }

    #[test]
    fn relation_records_round_trip(
        name in arb_name(16),
        rows in proptest::collection::vec(arb_tuple(), 0..8),
    ) {
        let bytes = encode_relation(&name, &rows).expect("encodes");
        let (n, r) = decode_relation(&bytes).expect("decodes");
        prop_assert_eq!(n, name);
        prop_assert_eq!(r, rows);
    }

    #[test]
    fn framed_messages_survive_the_byte_stream(resp in arb_response(), epoch in any::<u64>()) {
        let payload = encode_response(&resp, epoch).expect("encodes");
        let mut stream = Vec::new();
        write_frame(&mut stream, &payload).expect("frames");
        write_frame(&mut stream, &payload).expect("frames again");
        let mut reader = stream.as_slice();
        for _ in 0..2 {
            let got = read_frame(&mut reader).expect("unframes");
            prop_assert_eq!(decode_response(&got).expect("decodes"), (resp.clone(), epoch));
        }
    }

    #[test]
    fn garbage_never_panics_the_decoders(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Errors are fine; panics are not. A decode that happens to
        // succeed must re-encode to the same bytes (the format is
        // canonical: no padding, no alternative encodings).
        if let Ok(req) = decode_request(&bytes) {
            prop_assert_eq!(encode_request(&req).expect("re-encodes"), bytes.clone());
        }
        if let Ok((resp, epoch)) = decode_response(&bytes) {
            prop_assert_eq!(encode_response(&resp, epoch).expect("re-encodes"), bytes.clone());
        }
        let _ = decode_relation(&bytes);
    }

    #[test]
    fn truncations_error_cleanly(resp in arb_response(), epoch in any::<u64>(), cut in 0usize..64) {
        let bytes = encode_response(&resp, epoch).expect("encodes");
        if cut < bytes.len() {
            prop_assert!(decode_response(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn traced_requests_round_trip_and_strict_decoders_reject_them(
        req in arb_request(),
        ctx in arb_trace_context(),
    ) {
        let bytes = encode_request_with(&req, Some(&ctx)).expect("encodes");
        let (got, got_ctx) = decode_request_ext(&bytes).expect("decodes");
        prop_assert_eq!(got, req.clone());
        prop_assert_eq!(got_ctx, Some(ctx));
        // A legacy (strict) server sees the context as trailing bytes —
        // the downgrade signal the client latches on.
        prop_assert!(decode_request(&bytes).is_err());
        // And a plain request decodes through the ext path with no
        // context, so tracing servers accept legacy clients unchanged.
        let plain = encode_request(&req).expect("encodes");
        prop_assert_eq!(decode_request_ext(&plain).expect("decodes"), (req, None));
    }

    #[test]
    fn span_block_responses_round_trip_bit_exactly(
        resp in arb_response(),
        epoch in any::<u64>(),
        span in arb_server_span(),
    ) {
        let bytes = encode_response_with(&resp, epoch, Some(&span)).expect("encodes");
        let (got, got_epoch, got_span) = decode_response_ext(&bytes).expect("decodes");
        prop_assert_eq!(got, resp.clone());
        prop_assert_eq!(got_epoch, epoch);
        let got_span = got_span.expect("span rides along");
        // f64 phases travel as to_bits, so equality is exact.
        prop_assert_eq!(got_span.recv_parse.to_bits(), span.recv_parse.to_bits());
        prop_assert_eq!(got_span.lookup.to_bits(), span.lookup.to_bits());
        prop_assert_eq!(got_span.encode.to_bits(), span.encode.to_bits());
        prop_assert_eq!(got_span.total.to_bits(), span.total.to_bits());
        prop_assert_eq!(got_span.request_seq, span.request_seq);
        // The strict decoder rejects the extended payload rather than
        // misreading it.
        prop_assert!(decode_response(&bytes).is_err());
    }

    #[test]
    fn legacy_responses_decode_through_the_ext_path(
        resp in arb_response(),
        epoch in any::<u64>(),
    ) {
        // A legacy server's plain response must decode on a tracing
        // client with no span — the graceful-degradation contract.
        let bytes = encode_response(&resp, epoch).expect("encodes");
        let (got, got_epoch, span) = decode_response_ext(&bytes).expect("decodes");
        prop_assert_eq!((got, got_epoch), (resp, epoch));
        prop_assert!(span.is_none());
    }
}
