//! Concurrent, failure-aware source-access runtime.
//!
//! The paper's setting is a mediator querying *remote, autonomous, flaky*
//! web sources (§1) — yet its experiments, and this repo's serial
//! [`Mediator`](../qpo_exec/mediator/index.html), execute plans against
//! perfectly reliable in-memory extensions. This crate supplies the
//! missing runtime layer:
//!
//! - [`source`] — every catalog source wrapped as a [`SourceService`] with
//!   a deterministic, seed-driven behavior model (latency distribution,
//!   transient/permanent failure injection, per-access fees) derived from
//!   the same statistics that parameterize the utility measures;
//! - [`policy`] — bounded parallelism, speculation depth, capped
//!   exponential backoff retries, per-access timeouts, fault injection;
//! - [`executor`] — a speculative bounded-parallel executor over any
//!   [`PlanOrderer`](qpo_core::PlanOrderer): pops stay serial (utilities
//!   are conditioned on emission order), execution fans out to worker
//!   threads, completions merge back in emission order, and failures
//!   degrade the run gracefully instead of aborting it;
//! - [`feedback`] — observed tuples and failures flow back into the
//!   orderer's utility context ([`PlanOrderer::observe`]
//!   (qpo_core::PlanOrderer::observe)), so subsequent emissions are
//!   conditioned on what actually executed, not on what was assumed;
//! - [`backend`] — the [`SourceBackend`] trait the executor dispatches
//!   every access through: the deterministic simulator ([`SimBackend`],
//!   the default), a persistent indexed store ([`store::StoreBackend`]),
//!   and an out-of-process TCP source ([`net::TcpBackend`] speaking the
//!   [`wire`] protocol against a [`net::SourceServer`]).
//!
//! Under the default [`SimBackend`] everything is deterministic: a run is
//! a pure function of its inputs and the fault seed, bit-for-bit
//! reproducible under any worker count. With faults disabled the executor
//! is *equivalent* to the serial mediator — same plan emission order,
//! same answer set — which is the property the integration tests in
//! `qpo-exec` pin down. Real backends keep the same trace structure but
//! report measured wall latency mapped onto the virtual-time axis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod executor;
pub mod feedback;
pub mod memo;
pub mod net;
pub mod policy;
pub mod source;
pub mod store;
pub mod wire;

pub use backend::{
    AccessContext, AccessReply, BackendError, BackendErrorClass, RemoteSpan, SimBackend,
    SourceBackend,
};
pub use executor::{
    Executor, FailureReason, PlanEvaluator, PlanExecution, PlanStatus, RunBudget, RunStats,
    RuntimeRun, SourceAccess, WaveObserver,
};
pub use feedback::{declare_sources, observe_divergence, outcome_of, SourceHealth, SourceRecord};
pub use memo::{MemoHit, MemoOutcome, SourceMemo, SCAN_PATTERN};
pub use net::{
    fetch_server_trace, MemProvider, RelationProvider, ServerJournal, ServerSpanEntry,
    SourceServer, TcpBackend,
};
pub use policy::{FaultConfig, RetryPolicy, RuntimePolicy};
pub use source::{Access, AccessOutcome, SourceGrid, SourceService};
pub use store::StoreBackend;
