//! Feedback: folding observed execution outcomes back into ordering and
//! monitoring state.
//!
//! The executor already reports each plan's outcome to the orderer (see
//! [`crate::executor`]); this module adds the pieces *around* that wire:
//! converting run records into [`PlanOutcome`]s for replay, and a
//! [`SourceHealth`] monitor that aggregates per-source observations —
//! the empirical counterpart of the catalog's failure probabilities, and
//! the place where cataloged statistics can be confronted with reality.

use crate::executor::{PlanExecution, PlanStatus};
use crate::source::SourceGrid;
use qpo_core::PlanOutcome;
use qpo_obs::{AccessObservation, DivergenceMonitor, SourceExpectation};
use std::collections::BTreeMap;

/// The [`PlanOutcome`] a run record corresponds to, or `None` for unsound
/// plans (they were never executed, and the serial mediator likewise skips
/// them without feedback).
pub fn outcome_of(report: &PlanExecution) -> Option<PlanOutcome> {
    match &report.status {
        PlanStatus::Executed { tuples, .. } => {
            Some(PlanOutcome::succeeded(&report.ordered.plan, *tuples))
        }
        PlanStatus::Failed(_) => Some(PlanOutcome::failed(&report.ordered.plan)),
        PlanStatus::Unsound => None,
    }
}

/// Declares every grid source's catalog expectations to the drift
/// monitor — the same f64s the executor journals as `source_declared`
/// events, so the live monitor and a trace replay measure against
/// bit-identical baselines.
pub fn declare_sources(monitor: &mut DivergenceMonitor, grid: &SourceGrid) {
    for svc in grid.iter() {
        monitor.declare(
            &svc.name,
            SourceExpectation {
                latency: svc.behavior.expected_latency(),
                transient_rate: svc.behavior.transient_failure_rate,
                tuples: svc.behavior.expected_tuples,
            },
        );
    }
}

/// Feeds one plan's fresh access chains into the drift monitor, in
/// record order. Memo replays (`attempts == 0`) are skipped: a replayed
/// access observes the memo, not the source — and, symmetrically, it
/// journals no `source_attempt` events, so the offline recomputation
/// never sees it either.
pub fn observe_divergence(monitor: &mut DivergenceMonitor, report: &PlanExecution) {
    let tuples = match &report.status {
        PlanStatus::Executed { tuples, .. } => Some(*tuples as f64),
        _ => None,
    };
    for a in &report.accesses {
        if a.attempts == 0 {
            continue;
        }
        monitor.observe(
            &a.name,
            AccessObservation {
                attempts: u64::from(a.attempts),
                transient_failures: u64::from(a.transient_failures),
                ok: a.ok,
                permanently_down: a.permanently_down,
                latency: a.latency,
                tuples,
                network: a.remote_network,
                server: a.remote_server,
            },
        );
    }
}

/// Observed reliability of one source.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceRecord {
    /// Access attempts observed.
    pub attempts: u64,
    /// Attempts that failed transiently.
    pub transient_failures: u64,
    /// Accesses that ultimately succeeded.
    pub successes: u64,
    /// Whether the source was ever seen permanently down.
    pub seen_permanently_down: bool,
}

impl SourceRecord {
    /// Observed per-attempt transient failure rate, or `None` before any
    /// attempt has been seen.
    pub fn observed_transient_rate(&self) -> Option<f64> {
        (self.attempts > 0).then(|| self.transient_failures as f64 / self.attempts as f64)
    }
}

/// Aggregates per-source observations across a run — keyed by `(bucket,
/// index)`, the coordinates plans are written in.
#[derive(Debug, Clone, Default)]
pub struct SourceHealth {
    records: BTreeMap<(usize, usize), SourceRecord>,
}

impl SourceHealth {
    /// An empty monitor.
    pub fn new() -> Self {
        SourceHealth::default()
    }

    /// Folds one plan's access records in.
    pub fn record(&mut self, report: &PlanExecution) {
        for a in &report.accesses {
            let rec = self.records.entry((a.bucket, a.index)).or_default();
            rec.attempts += u64::from(a.attempts);
            rec.transient_failures += u64::from(a.transient_failures);
            rec.successes += u64::from(a.ok);
            rec.seen_permanently_down |= a.permanently_down;
        }
    }

    /// Folds a whole run in.
    pub fn record_run<'a>(&mut self, reports: impl IntoIterator<Item = &'a PlanExecution>) {
        for r in reports {
            self.record(r);
        }
    }

    /// The record of one source, if it was ever accessed.
    pub fn source(&self, bucket: usize, index: usize) -> Option<&SourceRecord> {
        self.records.get(&(bucket, index))
    }

    /// Iterates `((bucket, index), record)` in coordinate order.
    pub fn iter(&self) -> impl Iterator<Item = (&(usize, usize), &SourceRecord)> {
        self.records.iter()
    }

    /// Sources observed failing more often than `threshold` per attempt,
    /// plus every source seen permanently down.
    pub fn suspects(&self, threshold: f64) -> Vec<(usize, usize)> {
        self.records
            .iter()
            .filter(|(_, r)| {
                r.seen_permanently_down
                    || r.observed_transient_rate().is_some_and(|f| f > threshold)
            })
            .map(|(&k, _)| k)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{FailureReason, SourceAccess};
    use qpo_core::{OrderedPlan, OutcomeStatus};

    fn access(bucket: usize, index: usize, attempts: u32, fails: u32, ok: bool) -> SourceAccess {
        SourceAccess {
            bucket,
            index,
            name: format!("b{bucket}s{index}"),
            attempts,
            transient_failures: fails,
            latency: 1.0,
            fee: 0.0,
            ok,
            permanently_down: false,
            remote_server: None,
            remote_network: None,
        }
    }

    fn report(plan: &[usize], status: PlanStatus, accesses: Vec<SourceAccess>) -> PlanExecution {
        PlanExecution {
            seq: 0,
            ordered: OrderedPlan {
                plan: plan.to_vec(),
                utility: -1.0,
            },
            status,
            accesses,
            latency: 1.0,
            fees: 0.0,
        }
    }

    #[test]
    fn outcome_conversion_covers_every_status() {
        let ex = report(
            &[0, 1],
            PlanStatus::Executed {
                tuples: 7,
                new_tuples: 3,
                cumulative: 10,
            },
            vec![],
        );
        let o = outcome_of(&ex).unwrap();
        assert_eq!(o.plan, vec![0, 1]);
        assert_eq!(o.status, OutcomeStatus::Succeeded { tuples: 7 });

        let failed = report(
            &[2, 0],
            PlanStatus::Failed(FailureReason::RetriesExhausted {
                source: "v1".into(),
            }),
            vec![],
        );
        assert!(outcome_of(&failed).unwrap().is_failure());
        assert!(outcome_of(&report(&[1, 1], PlanStatus::Unsound, vec![])).is_none());
    }

    #[test]
    fn health_aggregates_across_plans() {
        let mut health = SourceHealth::new();
        health.record_run(&[
            report(
                &[0, 0],
                PlanStatus::Unsound,
                vec![access(0, 0, 3, 2, true), access(1, 0, 1, 0, true)],
            ),
            report(
                &[0, 1],
                PlanStatus::Unsound,
                vec![access(0, 0, 1, 0, true), access(1, 1, 4, 4, false)],
            ),
        ]);
        let v = health.source(0, 0).unwrap();
        assert_eq!((v.attempts, v.transient_failures, v.successes), (4, 2, 2));
        assert_eq!(v.observed_transient_rate(), Some(0.5));
        assert!(health.source(9, 9).is_none());
        assert_eq!(health.iter().count(), 3);
        // Only the source failing every attempt is suspect at 0.6.
        assert_eq!(health.suspects(0.6), vec![(1, 1)]);
        assert_eq!(health.suspects(0.4), vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn permanent_downs_are_always_suspect() {
        let mut health = SourceHealth::new();
        let mut a = access(0, 2, 1, 0, false);
        a.permanently_down = true;
        health.record(&report(&[2, 0], PlanStatus::Unsound, vec![a]));
        assert_eq!(health.suspects(1.0), vec![(0, 2)]);
        assert!(health.source(0, 2).unwrap().seen_permanently_down);
    }

    #[test]
    fn rate_is_none_before_observations() {
        assert_eq!(SourceRecord::default().observed_transient_rate(), None);
    }
}
