//! The bounded-parallelism plan executor.
//!
//! ## Execution model
//!
//! A coordinator pops plans from the [`PlanOrderer`] *serially* — utilities
//! are conditioned on emission order, so pops cannot be parallelized — but
//! **speculatively**: up to `lookahead` plans are in flight before any
//! outcome is known. Each pop optimistically assumes its predecessors
//! execute (the same assumption the serial mediator makes), which is why,
//! with faults disabled, any lookahead reproduces the serial ordering
//! exactly. Worker threads simulate the source accesses (retries, backoff,
//! timeouts) and evaluate the plan; the coordinator merges completions in
//! emission order, so answers and per-plan novelty counts are
//! deterministic. When a plan fails, the coordinator reports it back via
//! [`PlanOrderer::observe`] so later pops are conditioned on what actually
//! ran.
//!
//! ## Determinism
//!
//! Faults and latencies are pure functions of `(seed, source, plan
//! sequence, attempt)` ([`crate::source`]), pops happen at fixed points
//! (wave boundaries), and merging is by sequence number — so a run is a
//! deterministic function of its inputs, independent of worker count and
//! thread scheduling. Worker count changes wall time, nothing else.
//!
//! ## Budget caveat under speculation
//!
//! `max_plans` and `max_cost` are known at pop time and honored exactly.
//! `enough_answers` is only re-checked at wave boundaries (answers of
//! in-flight plans are unknown), so a speculative run may execute up to
//! `lookahead − 1` plans past the serial stopping point — the usual price
//! of speculation. Use `lookahead = 1` for exact answer-budget parity.

use crate::backend::{AccessContext, BackendErrorClass, RemoteSpan, SimBackend, SourceBackend};
use crate::memo::{MemoHit, MemoOutcome, SourceMemo, SCAN_PATTERN};
use crate::policy::{RetryPolicy, RuntimePolicy};
use crate::source::{AccessOutcome, SourceGrid, SourceService};
use crossbeam::channel;
use qpo_core::{OrderedPlan, PlanOrderer, PlanOutcome};
use qpo_datalog::Tuple;
use qpo_obs::{Counter, Gauge, Histogram, Obs, Value};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Process-wide run-id source for trace-context propagation: each
/// [`Executor::run_observed`] call takes the next value, so backend
/// requests from distinct runs (or distinct executors) carry distinct
/// trace run ids over the wire. The id is propagation metadata only — it
/// is never journalled, so traces stay a pure function of
/// `(seed, sources, plan order)`.
static RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Evaluates concrete plans against the integration system's data; the
/// runtime is generic over this so it does not depend on any particular
/// mediator. Implementations must be cheap to call from worker threads.
pub trait PlanEvaluator: Sync {
    /// Whether the plan passes the soundness test (unsound plans are
    /// reported but never executed, mirroring the serial mediator).
    fn is_sound(&self, plan: &[usize]) -> bool;

    /// Evaluates the plan's conjunctive query, returning its answers.
    fn evaluate(&self, plan: &[usize]) -> Vec<Tuple>;

    /// Evaluates the plan given the tuples the backend returned for each
    /// bucket (`None` for buckets the backend holds no data for — the
    /// simulator, and memo-resolved slots). The default ignores the
    /// fetched data and evaluates against the implementation's own
    /// database, which is exactly the simulated world's contract;
    /// data-serving backends are handled by evaluators that override
    /// this (qpo-exec's backend evaluator).
    fn evaluate_fetched(&self, plan: &[usize], fetched: &[Option<Arc<Vec<Tuple>>>]) -> Vec<Tuple> {
        let _ = fetched;
        self.evaluate(plan)
    }
}

/// A hook into the coordinator's deterministic wave loop, called only
/// from the coordinator thread (never from workers): once when a plan is
/// popped and scheduled (speculatively — no outcome known yet) and once
/// when its completion merges (outcome and answers final). Both calls
/// carry the serial virtual clock, so anything the observer derives —
/// attached tuple streams, journal events, progress gauges — stays a
/// pure function of `(seed, sources, plan order)` and is byte-identical
/// across worker counts. `qpo-exec`'s any-k streaming attaches per-plan
/// ranked tuple streams here.
pub trait WaveObserver {
    /// A plan was popped from the orderer and handed to the workers.
    /// `vclock` is the serial virtual time of its `plan_scheduled` event.
    fn plan_scheduled(&mut self, _seq: u64, _ordered: &OrderedPlan, _vclock: f64) {}

    /// A plan's completion merged into the run. `vclock` is the serial
    /// virtual time *after* the plan's latency (its terminal event's
    /// timestamp).
    fn plan_merged(&mut self, _report: &PlanExecution, _vclock: f64) {}
}

/// The do-nothing observer [`Executor::run`] uses.
struct NoopObserver;

impl WaveObserver for NoopObserver {}

/// When the executor stops popping further plans. Mirrors the serial
/// mediator's stop condition; see the module docs for speculation caveats.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunBudget {
    /// Stop once at least this many distinct answers have been merged.
    pub enough_answers: Option<usize>,
    /// Stop after popping this many plans (sound or not).
    pub max_plans: Option<usize>,
    /// Stop once cumulative negated utility of popped plans exceeds this.
    pub max_cost: Option<f64>,
}

impl RunBudget {
    /// Never stops early.
    pub fn unbounded() -> Self {
        RunBudget::default()
    }

    /// Stop after popping `n` plans.
    pub fn plans(n: usize) -> Self {
        RunBudget {
            max_plans: Some(n),
            ..RunBudget::default()
        }
    }

    /// Stop after `n` distinct answers.
    pub fn answers(n: usize) -> Self {
        RunBudget {
            enough_answers: Some(n),
            ..RunBudget::default()
        }
    }

    fn satisfied(&self, answers: usize, plans: usize, spent: f64) -> bool {
        self.enough_answers.is_some_and(|n| answers >= n)
            || self.max_plans.is_some_and(|n| plans >= n)
            || self.max_cost.is_some_and(|c| spent > c)
    }
}

/// One source access within a plan execution: total attempts, charged
/// virtual latency (backoffs included), fee, and whether it succeeded.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceAccess {
    /// Bucket of the accessed source.
    pub bucket: usize,
    /// Index within the bucket.
    pub index: usize,
    /// Source name.
    pub name: String,
    /// Attempts made (1 = first try succeeded).
    pub attempts: u32,
    /// Attempts that failed transiently (timeouts included).
    pub transient_failures: u32,
    /// Virtual time spent on this source: attempt latencies plus backoffs.
    pub latency: f64,
    /// Fee charged (0 unless the access succeeded).
    pub fee: f64,
    /// Whether the access ultimately succeeded.
    pub ok: bool,
    /// Whether the source was permanently down.
    pub permanently_down: bool,
    /// Server-side total of the successful attempt in virtual units, when
    /// the backend returned a remote span (traced TCP server). `None` for
    /// simulated, untraced, legacy-server, and failed accesses.
    pub remote_server: Option<f64>,
    /// Network residual of the successful attempt: client-observed attempt
    /// latency minus the server-reported total. Present iff
    /// `remote_server` is, and never negative.
    pub remote_network: Option<f64>,
}

/// Why a plan failed to execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureReason {
    /// A source was permanently down.
    PermanentlyDown {
        /// The offending source.
        source: String,
    },
    /// A source kept failing transiently until the retry budget ran out.
    RetriesExhausted {
        /// The offending source.
        source: String,
    },
}

/// What happened to one popped plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanStatus {
    /// Executed successfully.
    Executed {
        /// Answers this plan returned (new or not).
        tuples: usize,
        /// Answers no earlier (by emission order) plan had produced.
        new_tuples: usize,
        /// Distinct answers after merging this plan.
        cumulative: usize,
    },
    /// Discarded by the soundness test; never executed.
    Unsound,
    /// Marked failed after retries/permanent failure; never produced
    /// answers. The run continues — this is the graceful-degradation path.
    Failed(FailureReason),
}

/// Full record of one popped plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanExecution {
    /// Emission sequence number (0-based pop order).
    pub seq: u64,
    /// The plan as emitted, with its utility at emission time.
    pub ordered: OrderedPlan,
    /// Outcome.
    pub status: PlanStatus,
    /// Per-source access records (empty for unsound plans).
    pub accesses: Vec<SourceAccess>,
    /// Virtual latency of the plan: max over its sources (accessed in
    /// parallel).
    pub latency: f64,
    /// Total fees charged for the plan's successful accesses.
    pub fees: f64,
}

impl PlanExecution {
    /// True iff the plan executed and returned answers.
    pub fn executed(&self) -> bool {
        matches!(self.status, PlanStatus::Executed { .. })
    }

    /// True iff the plan was marked failed.
    pub fn failed(&self) -> bool {
        matches!(self.status, PlanStatus::Failed(_))
    }
}

/// Aggregate counters over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunStats {
    /// Source access attempts across all plans.
    pub attempts: u64,
    /// Attempts that failed transiently.
    pub transient_failures: u64,
    /// Plans marked failed.
    pub failed_plans: usize,
    /// Simulated makespan: per wave, the plans' latencies scheduled onto
    /// `workers` lanes, summed over waves.
    pub virtual_time: f64,
    /// Total fees charged.
    pub fees: f64,
    /// Source accesses served from the memo instead of live (0 unless a
    /// [`SourceMemo`] is attached).
    pub memo_hits: u64,
}

/// The result of a concurrent run.
#[derive(Debug, Clone)]
pub struct RuntimeRun {
    /// Per-plan records, in emission order.
    pub reports: Vec<PlanExecution>,
    /// Union of all executed plans' answers.
    pub answers: BTreeSet<Tuple>,
    /// Aggregate counters.
    pub stats: RunStats,
}

impl RuntimeRun {
    /// Plans that executed successfully.
    pub fn executed(&self) -> usize {
        self.reports.iter().filter(|r| r.executed()).count()
    }

    /// Plans marked failed.
    pub fn failed(&self) -> usize {
        self.reports.iter().filter(|r| r.failed()).count()
    }
}

struct Job {
    seq: u64,
    /// Trace run id propagated to the backend on every access.
    run: u64,
    ordered: OrderedPlan,
    /// Per-bucket accesses already resolved by the coordinator's memo
    /// lookup (aligned with the plan; empty when no memo is attached).
    /// Workers only perform the live accesses for the `None` slots.
    resolved: Vec<Option<SourceAccess>>,
}

/// One resolved source-access attempt, captured on the worker for the
/// trace journal. `offset` is virtual time *relative to the plan's start*
/// (each source is accessed in parallel, so offsets restart per source);
/// the coordinator anchors it to the journal's serial clock at merge.
/// `backoff` and `latency` are the attempt's two charges (wait before,
/// access time after) — journalled explicitly so profile reconstruction
/// can rebuild the per-source chain bit-exactly instead of differencing
/// floating-point offsets.
struct AttemptEvent {
    source: String,
    attempt: u32,
    offset: f64,
    backoff: f64,
    latency: f64,
    outcome: &'static str,
    /// Backend infrastructure failure behind this attempt, when there was
    /// one: `(class label, message)`. Journalled as `error_class`/`error`
    /// so the typed classification survives into the trace.
    error: Option<(&'static str, String)>,
    /// Server-side span the reply carried, when the backend returned one
    /// (only ever on `ok` attempts). Journalled as typed `remote_*`
    /// fields, in virtual units.
    remote: Option<RemoteSpan>,
}

struct Completion {
    seq: u64,
    ordered: OrderedPlan,
    sound: bool,
    tuples: Vec<Tuple>,
    accesses: Vec<SourceAccess>,
    failure: Option<FailureReason>,
    /// Per-attempt records, populated only when the journal is enabled.
    trace: Vec<AttemptEvent>,
    /// Backend infrastructure errors across all attempts, by class —
    /// counted here so the metric lands on the coordinator like every
    /// other run metric.
    backend_errors: [u64; 2],
}

/// Registry handles the executor updates as it merges completions. The
/// counters accumulate across runs sharing one registry; the gauges
/// reflect the most recent run.
struct RunMetrics {
    attempts: Counter,
    transient_failures: Counter,
    plans_executed: Counter,
    plans_failed: Counter,
    plans_unsound: Counter,
    retries_per_access: Histogram,
    emission_delay: Histogram,
    virtual_time: Gauge,
    fees: Gauge,
    memo_hits: Counter,
    memo_misses: Counter,
    memo_bytes: Gauge,
    /// Backend infrastructure errors by class, labeled with the backend
    /// kind: `[transient, permanent]`.
    backend_errors: [Counter; 2],
}

impl RunMetrics {
    fn registered(obs: &Obs, backend: &'static str) -> Self {
        let c = |name| obs.registry.counter(name, &[]);
        let status = |s| {
            obs.registry
                .counter("qpo_runtime_plans_total", &[("status", s)])
        };
        let memo = |name| obs.registry.counter(name, &[("layer", "source")]);
        let backend_error = |class| {
            obs.registry.counter(
                "qpo_backend_errors_total",
                &[("backend", backend), ("class", class)],
            )
        };
        RunMetrics {
            attempts: c("qpo_runtime_attempts_total"),
            transient_failures: c("qpo_runtime_transient_failures_total"),
            plans_executed: status("executed"),
            plans_failed: status("failed"),
            plans_unsound: status("unsound"),
            retries_per_access: obs
                .registry
                .histogram("qpo_runtime_retries_per_access", &[]),
            emission_delay: obs.registry.histogram("qpo_runtime_emission_delay", &[]),
            virtual_time: obs.registry.gauge("qpo_runtime_virtual_time", &[]),
            fees: obs.registry.gauge("qpo_runtime_fees", &[]),
            memo_hits: memo("qpo_memo_hits_total"),
            memo_misses: memo("qpo_memo_misses_total"),
            memo_bytes: obs.registry.gauge("qpo_memo_bytes", &[("layer", "source")]),
            backend_errors: [
                backend_error(BackendErrorClass::Transient.label()),
                backend_error(BackendErrorClass::Permanent.label()),
            ],
        }
    }
}

/// The bounded-parallelism speculative executor. Borrows the source grid
/// and evaluator; one executor can run many orderers.
pub struct Executor<'a, E: PlanEvaluator> {
    grid: &'a SourceGrid,
    eval: &'a E,
    policy: RuntimePolicy,
    obs: Obs,
    memo: Option<SourceMemo>,
    backend: Arc<dyn SourceBackend>,
}

impl<'a, E: PlanEvaluator> Executor<'a, E> {
    /// Creates an executor with a private observability bundle (metrics
    /// still accumulate and can be read back via [`Executor::obs`]).
    /// Accesses run against [`SimBackend`] unless
    /// [`Executor::with_backend`] swaps in another world.
    pub fn new(grid: &'a SourceGrid, eval: &'a E, policy: RuntimePolicy) -> Self {
        Executor {
            grid,
            eval,
            policy,
            obs: Obs::new(),
            memo: None,
            backend: Arc::new(SimBackend),
        }
    }

    /// Routes every source access through `backend` instead of the
    /// default deterministic simulator. Real backends report measured
    /// wall latency mapped onto the virtual-time axis, so traces keep
    /// their structure but stop being replayable bit-for-bit.
    pub fn with_backend(mut self, backend: Arc<dyn SourceBackend>) -> Self {
        self.backend = backend;
        self
    }

    /// The backend accesses run against.
    pub fn backend(&self) -> &Arc<dyn SourceBackend> {
        &self.backend
    }

    /// Shares an observability bundle: run metrics land on its registry
    /// and, when its journal is enabled, every run appends plan-lifecycle
    /// events timestamped by the serial virtual clock.
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.obs = obs.clone();
        self
    }

    /// Attaches a session-scoped [`SourceMemo`]: repeated source accesses
    /// are served from the memo (see the module docs of [`crate::memo`])
    /// instead of re-paying latency, retries, and fees. All memo traffic
    /// stays on the coordinator thread, so runs remain bit-identical
    /// across worker counts.
    pub fn with_source_memo(mut self, memo: &SourceMemo) -> Self {
        self.memo = Some(memo.clone());
        self
    }

    /// The executor's observability bundle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The policy in effect.
    pub fn policy(&self) -> &RuntimePolicy {
        &self.policy
    }

    /// Runs the orderer to completion of `budget` (or plan-space
    /// exhaustion), executing plans on `policy.workers` threads.
    ///
    /// ## The two clocks
    ///
    /// `stats.virtual_time` models the *makespan* with this worker count
    /// and legitimately changes with it. The trace journal instead runs on
    /// a **serial virtual clock** — plan latencies summed in emission
    /// order — which is a pure function of `(seed, sources, plan order)`:
    /// that is what makes the JSONL trace byte-identical across worker
    /// counts (with the lookahead held fixed; lookahead changes *which*
    /// plans are emitted, which is run semantics, not scheduling).
    pub fn run(&self, orderer: &mut dyn PlanOrderer, budget: RunBudget) -> RuntimeRun {
        self.run_observed(orderer, budget, &mut NoopObserver)
    }

    /// [`Executor::run`] with a [`WaveObserver`] hooked into the
    /// coordinator loop (see the trait docs for the callback contract).
    pub fn run_observed(
        &self,
        orderer: &mut dyn PlanOrderer,
        budget: RunBudget,
        observer: &mut dyn WaveObserver,
    ) -> RuntimeRun {
        let workers = self.policy.workers.max(1);
        let lookahead = self.policy.lookahead.max(1);
        let metrics = RunMetrics::registered(&self.obs, self.backend.kind());
        let journal = &self.obs.journal;
        // Fresh trace run id for context propagation; see `RUN_COUNTER`.
        let run = RUN_COUNTER.fetch_add(1, Ordering::Relaxed);
        if let Some(memo) = &self.memo {
            // Outcomes memoized under an older backend data version are
            // stale before the run even starts.
            memo.sync_backend_epoch(self.backend.epoch());
            memo.begin_run();
        }
        if journal.is_enabled() {
            // Scope marker: `plan_seq` restarts per run, so the validator
            // keys spans by (runs seen, plan_seq). Workers stay out of the
            // fields — they must not change the trace bytes.
            journal.set_clock(0.0);
            journal.record(
                "run_started",
                vec![
                    ("lookahead", Value::U64(lookahead as u64)),
                    ("backend", Value::Str(self.backend.kind().into())),
                ],
            );
            // Catalog-declared expectations for every source the run can
            // touch, so drift detection can be recomputed from the trace
            // alone (qpo-obs::divergence): no catalog needed offline, and
            // the declared values are the same f64s the live monitor sees.
            for svc in self.grid.iter() {
                journal.record(
                    "source_declared",
                    vec![
                        ("source", Value::Str(svc.name.to_string().into())),
                        ("latency", Value::F64(svc.behavior.expected_latency())),
                        (
                            "transient_rate",
                            Value::F64(svc.behavior.transient_failure_rate),
                        ),
                        ("tuples", Value::F64(svc.behavior.expected_tuples)),
                    ],
                );
            }
        }
        crossbeam::thread::scope(|s| {
            let (job_tx, job_rx) = channel::unbounded::<Job>();
            let (done_tx, done_rx) = channel::unbounded::<Completion>();
            for _ in 0..workers {
                let rx = job_rx.clone();
                let tx = done_tx.clone();
                s.spawn(move |_| {
                    while let Ok(job) = rx.recv() {
                        if tx.send(self.execute_job(job)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(job_rx);
            drop(done_tx);

            let mut answers: BTreeSet<Tuple> = BTreeSet::new();
            let mut reports: Vec<PlanExecution> = Vec::new();
            let mut stats = RunStats::default();
            let mut spent = 0.0;
            let mut seq: u64 = 0;
            // The serial virtual clock the journal (and the emission-delay
            // histogram) runs on; see the method docs.
            let mut vclock = 0.0f64;
            loop {
                // Pop the next speculation window. `spent` and the pop
                // count are exact here; `answers` lags by the in-flight
                // window (see module docs).
                let mut window: Vec<OrderedPlan> = Vec::new();
                while window.len() < lookahead
                    && !budget.satisfied(answers.len(), reports.len() + window.len(), spent)
                {
                    let Some(ordered) = orderer.next_plan() else {
                        break;
                    };
                    spent += -ordered.utility;
                    window.push(ordered);
                }
                if window.is_empty() {
                    break;
                }
                // Reuse-aware scheduling: within ε-tie groups of the
                // window, favor plans overlapping the memo. Opt-in, and
                // never across a strict dominance (gap > ε).
                if let (Some(memo), Some(eps)) = (&self.memo, self.policy.reuse_epsilon) {
                    reorder_for_reuse(&mut window, memo, eps);
                }
                let in_flight = window.len();
                for ordered in window {
                    if journal.is_enabled() {
                        journal.record_at(
                            vclock,
                            "plan_emitted",
                            vec![
                                ("plan_seq", Value::U64(seq)),
                                (
                                    "plan",
                                    Value::Str(qpo_obs::encode_plan(&ordered.plan).into()),
                                ),
                                ("utility", Value::F64(ordered.utility)),
                            ],
                        );
                        journal.record_at(
                            vclock,
                            "plan_scheduled",
                            vec![("plan_seq", Value::U64(seq))],
                        );
                    }
                    let resolved =
                        self.resolve_from_memo(seq, &ordered, vclock, &mut stats, &metrics);
                    observer.plan_scheduled(seq, &ordered, vclock);
                    assert!(
                        job_tx
                            .send(Job {
                                seq,
                                run,
                                ordered,
                                resolved,
                            })
                            .is_ok(),
                        "workers outlive the coordinator loop"
                    );
                    seq += 1;
                }
                let mut wave: Vec<Completion> = (0..in_flight)
                    .map(|_| done_rx.recv().expect("workers send one completion per job"))
                    .collect();
                wave.sort_by_key(|c| c.seq);
                stats.virtual_time +=
                    makespan(wave.iter().map(|c| plan_latency(&c.accesses)), workers);
                for completion in wave {
                    let report = self.merge(
                        completion,
                        orderer,
                        &mut answers,
                        &mut stats,
                        &metrics,
                        &mut vclock,
                    );
                    observer.plan_merged(&report, vclock);
                    reports.push(report);
                }
            }
            drop(job_tx);
            metrics.virtual_time.set(stats.virtual_time);
            metrics.fees.set(stats.fees);
            if journal.is_enabled() {
                // End-of-run marker carrying the *serial-clock* makespan
                // (plan latencies summed in emission order) — the quantity
                // profile reconstruction's critical path must bit-equal.
                // `stats.virtual_time` is the lane-scheduled makespan and
                // legitimately varies with the worker count; `vclock` does
                // not. With one worker the two coincide.
                journal.record_at(
                    vclock,
                    "run_finished",
                    vec![
                        ("plans", Value::U64(reports.len() as u64)),
                        ("answers", Value::U64(answers.len() as u64)),
                        ("makespan", Value::F64(vclock)),
                    ],
                );
            }
            RuntimeRun {
                reports,
                answers,
                stats,
            }
        })
        .expect("executor threads do not panic")
    }

    /// Coordinator-side memo consult at dispatch time: resolves each of
    /// the plan's source accesses from the memo where possible, counting
    /// hits/misses and journalling `memo_hit` events on the serial clock.
    /// Deterministic: runs in emission order, and only outcomes merged in
    /// previous waves (or previous runs, for a warm memo) are visible.
    fn resolve_from_memo(
        &self,
        seq: u64,
        ordered: &OrderedPlan,
        vclock: f64,
        stats: &mut RunStats,
        metrics: &RunMetrics,
    ) -> Vec<Option<SourceAccess>> {
        let Some(memo) = &self.memo else {
            return Vec::new();
        };
        let journal = &self.obs.journal;
        ordered
            .plan
            .iter()
            .enumerate()
            .map(|(bucket, &index)| {
                let Some(hit) = memo.lookup(bucket, index, SCAN_PATTERN) else {
                    metrics.memo_misses.inc();
                    return None;
                };
                stats.memo_hits += 1;
                metrics.memo_hits.inc();
                let svc = self.grid.service(bucket, index);
                if journal.is_enabled() {
                    journal.record_at(
                        vclock,
                        "memo_hit",
                        vec![
                            ("plan_seq", Value::U64(seq)),
                            ("source", Value::Str(svc.name.to_string().into())),
                            (
                                "outcome",
                                Value::Str(memo_outcome_label(hit.outcome).into()),
                            ),
                            ("warm", Value::Bool(hit.warm)),
                        ],
                    );
                }
                Some(replay_access(svc, hit))
            })
            .collect()
    }

    /// Folds one completion into the run, reporting the outcome back to
    /// the orderer, mirroring counters onto the registry, journalling the
    /// plan's lifecycle, and advancing the serial virtual clock.
    fn merge(
        &self,
        completion: Completion,
        orderer: &mut dyn PlanOrderer,
        answers: &mut BTreeSet<Tuple>,
        stats: &mut RunStats,
        metrics: &RunMetrics,
        vclock: &mut f64,
    ) -> PlanExecution {
        let Completion {
            seq,
            ordered,
            sound,
            tuples,
            accesses,
            failure,
            trace,
            backend_errors,
        } = completion;
        let journal = &self.obs.journal;
        let latency = plan_latency(&accesses);
        let fees: f64 = accesses.iter().map(|a| a.fee).sum();
        let backend_kind = self.backend.kind();
        for a in &accesses {
            stats.attempts += u64::from(a.attempts);
            stats.transient_failures += u64::from(a.transient_failures);
            metrics.attempts.add(u64::from(a.attempts));
            metrics
                .transient_failures
                .add(u64::from(a.transient_failures));
            metrics
                .retries_per_access
                .record(f64::from(a.attempts) - 1.0);
            self.obs
                .registry
                .histogram(
                    "qpo_runtime_access_latency",
                    &[("source", &a.name), ("backend", backend_kind)],
                )
                .record(a.latency);
        }
        for (class, &count) in metrics.backend_errors.iter().zip(&backend_errors) {
            if count > 0 {
                class.add(count);
            }
        }
        stats.fees += fees;
        // A plan's source accesses run concurrently, so the per-source
        // attempt chains interleave in time; journal them in virtual-time
        // order (stable, so equal-offset events keep their per-source
        // order) to keep the trace clock monotone in seq order — the
        // invariant `validate_trace` enforces per run.
        let mut trace = trace;
        trace.sort_by(|a, b| a.offset.total_cmp(&b.offset));
        for ev in trace {
            let mut fields = vec![
                ("plan_seq", Value::U64(seq)),
                ("source", Value::Str(ev.source.into())),
                ("attempt", Value::U64(u64::from(ev.attempt))),
                ("backoff", Value::F64(ev.backoff)),
                ("latency", Value::F64(ev.latency)),
                ("outcome", Value::Str(ev.outcome.into())),
            ];
            // The server-side span, when the reply carried one: typed
            // fields in virtual units, so profile stitching and the
            // divergence replay recompute `network = latency −
            // remote_total` bit-for-bit from the trace alone.
            if let Some(r) = ev.remote {
                fields.push(("remote_total", Value::F64(r.total)));
                fields.push(("remote_recv", Value::F64(r.recv_parse)));
                fields.push(("remote_lookup", Value::F64(r.lookup)));
                fields.push(("remote_encode", Value::F64(r.encode)));
                fields.push(("remote_seq", Value::U64(r.server_seq)));
            }
            // Journal the backend-error classification (typed, end to
            // end): attempts behind an infrastructure failure carry the
            // class and message alongside the retry-loop outcome.
            if let Some((class, message)) = ev.error {
                fields.push(("error_class", Value::Str(class.into())));
                fields.push(("error", Value::Str(message.into())));
            }
            journal.record_at(*vclock + ev.offset, "source_attempt", fields);
        }
        let done = *vclock + latency;
        // Memo maintenance, in emission order on the coordinator thread. A
        // plan failing from a *live* access invalidates the memo first
        // (mirroring the ExecutionContext retract feedback), then this
        // plan's own terminal outcomes are stored into the fresh epoch —
        // so a permanently-down source costs exactly one real access.
        // Retries-exhausted transient failures are never stored: the
        // catalog says those sources should be retried by later plans.
        if let Some(memo) = &self.memo {
            if accesses.iter().any(|a| a.attempts > 0 && !a.ok) {
                memo.invalidate();
            }
            for a in accesses.iter().filter(|a| a.attempts > 0) {
                let outcome = if a.ok {
                    MemoOutcome::Success
                } else if a.permanently_down {
                    MemoOutcome::PermanentFailure
                } else {
                    continue;
                };
                memo.store(a.bucket, a.index, SCAN_PATTERN, outcome);
                if journal.is_enabled() {
                    journal.record_at(
                        done,
                        "memo_store",
                        vec![
                            ("plan_seq", Value::U64(seq)),
                            ("source", Value::Str(a.name.clone().into())),
                            ("outcome", Value::Str(memo_outcome_label(outcome).into())),
                        ],
                    );
                }
            }
            metrics.memo_bytes.set(memo.approx_bytes() as f64);
        }
        let status = if !sound {
            metrics.plans_unsound.inc();
            if journal.is_enabled() {
                journal.record_at(
                    done,
                    "plan_unsound",
                    vec![
                        ("plan_seq", Value::U64(seq)),
                        ("latency", Value::F64(latency)),
                    ],
                );
            }
            PlanStatus::Unsound
        } else if let Some(reason) = failure {
            stats.failed_plans += 1;
            metrics.plans_failed.inc();
            if journal.is_enabled() {
                let (kind, source) = match &reason {
                    FailureReason::PermanentlyDown { source } => ("permanently_down", source),
                    FailureReason::RetriesExhausted { source } => ("retries_exhausted", source),
                };
                journal.record_at(
                    done,
                    "plan_failed",
                    vec![
                        ("plan_seq", Value::U64(seq)),
                        ("reason", Value::Str(kind.into())),
                        ("source", Value::Str(source.clone().into())),
                        ("latency", Value::F64(latency)),
                    ],
                );
            }
            orderer.observe(&PlanOutcome::failed(&ordered.plan));
            if journal.is_enabled() {
                journal.record_at(done, "plan_retracted", vec![("plan_seq", Value::U64(seq))]);
            }
            PlanStatus::Failed(reason)
        } else {
            let total = tuples.len();
            let mut new_tuples = 0;
            for t in tuples {
                if answers.insert(t) {
                    new_tuples += 1;
                }
            }
            metrics.plans_executed.inc();
            metrics.emission_delay.record(done);
            if journal.is_enabled() {
                journal.record_at(
                    done,
                    "plan_completed",
                    vec![
                        ("plan_seq", Value::U64(seq)),
                        ("tuples", Value::U64(total as u64)),
                        ("new_tuples", Value::U64(new_tuples as u64)),
                        ("cumulative", Value::U64(answers.len() as u64)),
                        ("latency", Value::F64(latency)),
                    ],
                );
            }
            orderer.observe(&PlanOutcome::succeeded(&ordered.plan, total));
            PlanStatus::Executed {
                tuples: total,
                new_tuples,
                cumulative: answers.len(),
            }
        };
        *vclock += latency;
        journal.set_clock(*vclock);
        PlanExecution {
            seq,
            ordered,
            status,
            accesses,
            latency,
            fees,
        }
    }

    /// Runs on a worker thread: perform the plan's source accesses
    /// through the backend, then evaluate it if everything succeeded.
    /// Attempt-level trace events are collected here (relative to the
    /// plan's start) and carried back to the coordinator, which is the
    /// only thread that writes the journal.
    fn execute_job(&self, job: Job) -> Completion {
        let Job {
            seq,
            run,
            ordered,
            resolved,
        } = job;
        let tracing = self.obs.journal.is_enabled();
        let mut trace: Vec<AttemptEvent> = Vec::new();
        let sound = self.eval.is_sound(&ordered.plan);
        if !sound {
            return Completion {
                seq,
                ordered,
                sound,
                tuples: Vec::new(),
                accesses: Vec::new(),
                failure: None,
                trace,
                backend_errors: [0, 0],
            };
        }
        let services = self.grid.plan_services(&ordered.plan);
        let mut accesses: Vec<SourceAccess> = Vec::with_capacity(services.len());
        let mut fetched: Vec<Option<Arc<Vec<Tuple>>>> = Vec::with_capacity(accesses.capacity());
        let mut backend_errors = [0u64; 2];
        for (bucket, svc) in services.enumerate() {
            // Slots the coordinator resolved from the memo are replayed
            // as-is: zero attempts, zero latency, zero fee. The memo only
            // vouches for the *outcome*; backend data for the bucket is
            // re-fetched by the evaluator's own cache if it needs rows.
            if let Some(Some(access)) = resolved.get(bucket) {
                accesses.push(access.clone());
                fetched.push(None);
                continue;
            }
            let events = tracing.then_some(&mut trace);
            let outcome =
                access_with_retries(self.backend.as_ref(), svc, &self.policy, run, seq, events);
            accesses.push(outcome.access);
            fetched.push(outcome.tuples);
            backend_errors[0] += outcome.backend_errors[0];
            backend_errors[1] += outcome.backend_errors[1];
        }
        if self.policy.latency_scale > 0.0 {
            let secs = plan_latency(&accesses) * self.policy.latency_scale;
            std::thread::sleep(Duration::from_secs_f64(secs));
        }
        let failure = accesses.iter().find(|a| !a.ok).map(|a| {
            if a.permanently_down {
                FailureReason::PermanentlyDown {
                    source: a.name.clone(),
                }
            } else {
                FailureReason::RetriesExhausted {
                    source: a.name.clone(),
                }
            }
        });
        let tuples = if failure.is_none() {
            self.eval.evaluate_fetched(&ordered.plan, &fetched)
        } else {
            Vec::new()
        };
        Completion {
            seq,
            ordered,
            sound,
            tuples,
            accesses,
            failure,
            trace,
            backend_errors,
        }
    }
}

/// Journal label for a memoized outcome.
fn memo_outcome_label(outcome: MemoOutcome) -> &'static str {
    match outcome {
        MemoOutcome::Success => "success",
        MemoOutcome::PermanentFailure => "permanent_failure",
    }
}

/// The access record a memo hit replays: the terminal outcome with zero
/// attempts, zero latency, and zero fee — the whole point of the memo.
fn replay_access(svc: &SourceService, hit: MemoHit) -> SourceAccess {
    SourceAccess {
        bucket: svc.bucket,
        index: svc.index,
        name: svc.name.to_string(),
        attempts: 0,
        transient_failures: 0,
        latency: 0.0,
        fee: 0.0,
        ok: hit.outcome == MemoOutcome::Success,
        permanently_down: hit.outcome == MemoOutcome::PermanentFailure,
        remote_server: None,
        remote_network: None,
    }
}

/// Reorders one speculation window for memo overlap. Groups are maximal
/// descending-utility prefixes whose members lie within `eps` of the
/// group's best utility; inside a group, plans touching more memoized
/// sources come first (stable, so exact ties keep the orderer's
/// emission order). Group boundaries — strict dominances — are never
/// crossed.
fn reorder_for_reuse(window: &mut [OrderedPlan], memo: &SourceMemo, eps: f64) {
    let overlap = |plan: &[usize]| {
        plan.iter()
            .enumerate()
            .filter(|&(b, &i)| memo.contains(b, i, SCAN_PATTERN))
            .count()
    };
    let mut start = 0;
    while start < window.len() {
        let best = window[start].utility;
        let mut end = start + 1;
        while end < window.len() && (best - window[end].utility).abs() <= eps {
            end += 1;
        }
        if end - start > 1 {
            window[start..end].sort_by_key(|p| std::cmp::Reverse(overlap(&p.plan)));
        }
        start = end;
    }
}

/// Plan latency: its sources are accessed in parallel, so the slowest one
/// bounds the plan.
fn plan_latency(accesses: &[SourceAccess]) -> f64 {
    accesses.iter().map(|a| a.latency).fold(0.0, f64::max)
}

/// Simulated makespan of `latencies` greedily list-scheduled (in emission
/// order) onto `workers` lanes.
fn makespan(latencies: impl Iterator<Item = f64>, workers: usize) -> f64 {
    let mut lanes = vec![0.0f64; workers.max(1)];
    for lat in latencies {
        let lane = lanes
            .iter_mut()
            .min_by(|a, b| a.total_cmp(b))
            .expect("at least one lane");
        *lane += lat;
    }
    lanes.into_iter().fold(0.0, f64::max)
}

/// What one retried source access resolved to: the access record, the
/// tuples the backend served (if it serves data), and the count of
/// backend infrastructure errors absorbed, by class
/// (`[transient, permanent]`).
struct ResolvedAccess {
    access: SourceAccess,
    tuples: Option<Arc<Vec<Tuple>>>,
    backend_errors: [u64; 2],
}

/// Accesses one source through `backend` with the policy's retry
/// discipline, accumulating backoffs and attempt latencies into one
/// virtual-time charge. When `events` is given, every resolved attempt is
/// appended with its plan-relative virtual-time offset and outcome
/// (`ok`/`timeout`/`transient`/`permanent`); attempts behind a typed
/// [`crate::backend::BackendError`] additionally carry its class and
/// message. Backend errors never panic the retry loop: transient ones
/// consume an attempt and back off like simulated transient faults,
/// permanent ones fail the access like a permanently-down source.
fn access_with_retries(
    backend: &dyn SourceBackend,
    svc: &SourceService,
    policy: &RuntimePolicy,
    run: u64,
    seq: u64,
    mut events: Option<&mut Vec<AttemptEvent>>,
) -> ResolvedAccess {
    let retry: &RetryPolicy = &policy.retry;
    let mut latency = 0.0;
    let mut transient_failures = 0u32;
    let mut backend_errors = [0u64; 2];
    let report = |attempts,
                  ok,
                  permanently_down,
                  latency,
                  transient_failures,
                  remote: Option<(f64, f64)>| SourceAccess {
        bucket: svc.bucket,
        index: svc.index,
        name: svc.name.to_string(),
        attempts,
        transient_failures,
        latency,
        fee: if ok { svc.behavior.fee_per_access } else { 0.0 },
        ok,
        permanently_down,
        remote_server: remote.map(|(server, _)| server),
        remote_network: remote.map(|(_, network)| network),
    };
    let mut record = |attempt: u32,
                      offset: f64,
                      backoff: f64,
                      charge: f64,
                      outcome: &'static str,
                      error: Option<(&'static str, String)>,
                      remote: Option<RemoteSpan>| {
        if let Some(events) = events.as_deref_mut() {
            events.push(AttemptEvent {
                source: svc.name.to_string(),
                attempt,
                offset,
                backoff,
                latency: charge,
                outcome,
                error,
                remote,
            });
        }
    };
    for attempt in 0..retry.max_attempts.max(1) {
        let backoff = retry.backoff_before(attempt);
        latency += backoff;
        let ctx = AccessContext {
            pattern: SCAN_PATTERN,
            run,
            plan_seq: seq,
            attempt,
            faults: &policy.faults,
        };
        let access = match backend.access(svc, &ctx) {
            Ok(reply) => {
                if reply.access.outcome == AccessOutcome::Success
                    && reply.access.latency <= retry.access_timeout
                {
                    let charge = reply.access.latency;
                    latency += charge;
                    record(
                        attempt + 1,
                        latency,
                        backoff,
                        charge,
                        "ok",
                        None,
                        reply.remote,
                    );
                    return ResolvedAccess {
                        access: report(
                            attempt + 1,
                            true,
                            false,
                            latency,
                            transient_failures,
                            reply.remote.map(|r| (r.total, charge - r.total)),
                        ),
                        tuples: reply.tuples,
                        backend_errors,
                    };
                }
                reply.access
            }
            Err(err) => {
                // An infrastructure failure maps onto the simulator's
                // outcome vocabulary — transient consumes an attempt and
                // retries, permanent fails the access — with the typed
                // classification preserved on the attempt event.
                let class = err.class;
                backend_errors[match class {
                    BackendErrorClass::Transient => 0,
                    BackendErrorClass::Permanent => 1,
                }] += 1;
                let charge = err.latency.min(retry.access_timeout);
                let detail = Some((class.label(), err.message));
                match class {
                    BackendErrorClass::Permanent => {
                        latency += charge;
                        record(
                            attempt + 1,
                            latency,
                            backoff,
                            charge,
                            "permanent",
                            detail,
                            None,
                        );
                        return ResolvedAccess {
                            access: report(
                                attempt + 1,
                                false,
                                true,
                                latency,
                                transient_failures,
                                None,
                            ),
                            tuples: None,
                            backend_errors,
                        };
                    }
                    BackendErrorClass::Transient => {
                        latency += charge;
                        record(
                            attempt + 1,
                            latency,
                            backoff,
                            charge,
                            "transient",
                            detail,
                            None,
                        );
                        transient_failures += 1;
                        continue;
                    }
                }
            }
        };
        match access.outcome {
            AccessOutcome::PermanentFailure => {
                record(attempt + 1, latency, backoff, 0.0, "permanent", None, None);
                return ResolvedAccess {
                    access: report(attempt + 1, false, true, latency, transient_failures, None),
                    tuples: None,
                    backend_errors,
                };
            }
            // A success slower than the timeout is indistinguishable from
            // a transient failure to the caller: charge the timeout, retry.
            AccessOutcome::Success | AccessOutcome::TransientFailure => {
                let timed_out = matches!(access.outcome, AccessOutcome::Success);
                let charge = access.latency.min(retry.access_timeout);
                latency += charge;
                record(
                    attempt + 1,
                    latency,
                    backoff,
                    charge,
                    if timed_out { "timeout" } else { "transient" },
                    None,
                    None,
                );
                transient_failures += 1;
            }
        }
    }
    ResolvedAccess {
        access: report(
            retry.max_attempts.max(1),
            false,
            false,
            latency,
            transient_failures,
            None,
        ),
        tuples: None,
        backend_errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FaultConfig;
    use qpo_catalog::{Extent, ProblemInstance, SourceStats};
    use qpo_core::Pi;
    use qpo_datalog::Constant;
    use qpo_utility::Coverage;

    /// A toy integration system: a plan's answers are the items in the
    /// intersection of its sources' extents (the join of the coverage
    /// model), one tuple per item.
    struct ToyEval {
        inst: ProblemInstance,
    }

    impl PlanEvaluator for ToyEval {
        fn is_sound(&self, _plan: &[usize]) -> bool {
            true
        }

        fn evaluate(&self, plan: &[usize]) -> Vec<Tuple> {
            let stats = self.inst.plan_stats(plan);
            let start = stats.iter().map(|s| s.extent.start).max().unwrap_or(0);
            let end = stats.iter().map(|s| s.extent.end()).min().unwrap_or(0);
            (start..end)
                .map(|x| vec![Constant::Int(x as i64)])
                .collect()
        }
    }

    fn inst() -> ProblemInstance {
        let src = |name: &str, s, l, f| {
            SourceStats::new()
                .with_name(name)
                .with_extent(Extent::new(s, l))
                .with_access_cost(3.0)
                .with_transmission_cost(0.05)
                .with_failure_prob(f)
                .with_fee(0.01)
        };
        ProblemInstance::new(
            1.0,
            vec![30, 30],
            vec![
                vec![
                    src("v1", 0, 20, 0.1),
                    src("v2", 5, 20, 0.3),
                    src("v3", 15, 10, 0.0),
                ],
                vec![src("w1", 0, 25, 0.2), src("w2", 10, 15, 0.4)],
            ],
        )
        .unwrap()
    }

    fn run_with(policy: RuntimePolicy, budget: RunBudget) -> RuntimeRun {
        let inst = inst();
        let grid = SourceGrid::from_instance(&inst);
        let eval = ToyEval { inst: inst.clone() };
        let mut orderer = Pi::new(&inst, &Coverage);
        Executor::new(&grid, &eval, policy).run(&mut orderer, budget)
    }

    fn plan_sequence(run: &RuntimeRun) -> Vec<Vec<usize>> {
        run.reports.iter().map(|r| r.ordered.plan.clone()).collect()
    }

    #[test]
    fn no_faults_matches_across_workers_and_lookahead() {
        let baseline = run_with(RuntimePolicy::serial(), RunBudget::unbounded());
        assert_eq!(baseline.reports.len(), 6);
        assert_eq!(baseline.failed(), 0);
        for (workers, lookahead) in [(2, 2), (4, 4), (3, 6), (8, 1)] {
            let policy = RuntimePolicy::parallel(workers).with_lookahead(lookahead);
            let run = run_with(policy, RunBudget::unbounded());
            assert_eq!(plan_sequence(&run), plan_sequence(&baseline));
            assert_eq!(run.answers, baseline.answers);
            // Per-plan records are bit-identical too (latency draws are
            // deterministic and independent of scheduling).
            assert_eq!(run.reports, baseline.reports);
        }
    }

    #[test]
    fn fixed_seed_reproduces_failures_bit_for_bit() {
        let faults = FaultConfig::with_seed(99).with_extra_transient_rate(0.3);
        // Lookahead is held fixed: it changes *when* outcomes feed back
        // into the orderer, which is part of the run's semantics. Worker
        // count is the thing that must not matter.
        let policy = |w: usize| {
            RuntimePolicy::parallel(w)
                .with_lookahead(2)
                .with_faults(faults.clone())
                .with_retry(RetryPolicy {
                    max_attempts: 2,
                    ..RetryPolicy::standard()
                })
        };
        let a = run_with(policy(1), RunBudget::unbounded());
        let b = run_with(policy(4), RunBudget::unbounded());
        assert!(a.stats.transient_failures > 0, "faults actually fired");
        assert_eq!(a.reports, b.reports, "independent of worker count");
        assert_eq!(a.answers, b.answers);
        // virtual_time models the makespan *with that worker count*, so it
        // is the one statistic that legitimately differs between a and b.
        assert_eq!(a.stats.attempts, b.stats.attempts);
        assert_eq!(a.stats.transient_failures, b.stats.transient_failures);
        assert_eq!(a.stats.failed_plans, b.stats.failed_plans);
        assert_eq!(a.stats.fees, b.stats.fees);
        assert!(
            a.stats.virtual_time >= b.stats.virtual_time,
            "fewer lanes, longer makespan"
        );
        let c = run_with(policy(4), RunBudget::unbounded());
        assert_eq!(b.reports, c.reports, "reruns replay exactly");
        assert_eq!(b.stats, c.stats);
    }

    #[test]
    fn permanently_down_source_degrades_gracefully() {
        let faults = FaultConfig::with_seed(1).with_source_down("v2");
        let run = run_with(
            RuntimePolicy::parallel(3).with_faults(faults),
            RunBudget::unbounded(),
        );
        assert_eq!(run.reports.len(), 6, "the run still covers the plan space");
        let failed: Vec<_> = run.reports.iter().filter(|r| r.failed()).collect();
        assert_eq!(failed.len(), 2, "both plans through v2 fail");
        for r in &failed {
            assert_eq!(r.ordered.plan[0], 1, "v2 is bucket 0 index 1");
            assert!(matches!(
                r.status,
                PlanStatus::Failed(FailureReason::PermanentlyDown { ref source }) if source == "v2"
            ));
        }
        assert_eq!(run.executed(), 4);
        assert!(!run.answers.is_empty());
        assert_eq!(run.stats.failed_plans, 2);
    }

    #[test]
    fn retries_recover_transient_failures() {
        let faults = FaultConfig::with_seed(5).with_extra_transient_rate(0.2);
        let run = run_with(
            RuntimePolicy::parallel(2)
                .with_faults(faults.clone())
                .with_retry(RetryPolicy {
                    max_attempts: 8,
                    ..RetryPolicy::standard()
                }),
            RunBudget::unbounded(),
        );
        assert!(run.stats.transient_failures > 0);
        assert!(
            run.stats.attempts > run.reports.len() as u64,
            "some accesses retried"
        );
        // With 4 attempts at ~35–40% failure, every plan should make it.
        assert_eq!(run.failed(), 0, "retries absorb transient faults");
        let baseline = run_with(RuntimePolicy::serial(), RunBudget::unbounded());
        assert_eq!(
            run.answers, baseline.answers,
            "full answer set despite faults"
        );
    }

    #[test]
    fn max_plans_budget_is_exact_under_speculation() {
        for lookahead in [1, 2, 5] {
            let run = run_with(
                RuntimePolicy::parallel(4).with_lookahead(lookahead),
                RunBudget::plans(3),
            );
            assert_eq!(run.reports.len(), 3, "lookahead {lookahead}");
        }
    }

    #[test]
    fn answers_budget_is_exact_without_speculation() {
        let run = run_with(RuntimePolicy::serial(), RunBudget::answers(1));
        assert_eq!(run.reports.len(), 1, "first plan already yields answers");
        assert!(!run.answers.is_empty());
    }

    #[test]
    fn failed_plans_are_reported_back_to_the_orderer() {
        use std::cell::Cell;

        /// Scripted orderer that counts failure observations.
        struct Probe {
            plans: Vec<Vec<usize>>,
            failures_seen: Cell<usize>,
        }
        impl PlanOrderer for Probe {
            fn algorithm_name(&self) -> &'static str {
                "probe"
            }
            fn next_plan(&mut self) -> Option<OrderedPlan> {
                self.plans.pop().map(|plan| OrderedPlan {
                    plan,
                    utility: -1.0,
                })
            }
            fn observe(&mut self, outcome: &PlanOutcome) {
                if outcome.is_failure() {
                    self.failures_seen.set(self.failures_seen.get() + 1);
                }
            }
        }

        let inst = inst();
        let grid = SourceGrid::from_instance(&inst);
        let eval = ToyEval { inst: inst.clone() };
        let policy = RuntimePolicy::parallel(2)
            .with_faults(FaultConfig::with_seed(2).with_source_down("w1"));
        let mut probe = Probe {
            plans: vec![vec![0, 0], vec![1, 1], vec![2, 0]],
            failures_seen: Cell::new(0),
        };
        let run = Executor::new(&grid, &eval, policy).run(&mut probe, RunBudget::unbounded());
        assert_eq!(run.failed(), 2, "plans through w1 fail");
        assert_eq!(probe.failures_seen.get(), 2, "each failure observed once");
    }

    fn run_memoized(policy: RuntimePolicy, budget: RunBudget, memo: &SourceMemo) -> RuntimeRun {
        let inst = inst();
        let grid = SourceGrid::from_instance(&inst);
        let eval = ToyEval { inst: inst.clone() };
        let mut orderer = Pi::new(&inst, &Coverage);
        Executor::new(&grid, &eval, policy)
            .with_source_memo(memo)
            .run(&mut orderer, budget)
    }

    #[test]
    fn memo_serves_repeated_accesses_without_attempts() {
        let baseline = run_with(RuntimePolicy::serial(), RunBudget::unbounded());
        let memo = SourceMemo::new();
        let run = run_memoized(RuntimePolicy::serial(), RunBudget::unbounded(), &memo);
        assert_eq!(plan_sequence(&run), plan_sequence(&baseline));
        assert_eq!(run.answers, baseline.answers, "answers are untouched");
        // 6 plans over a 3×2 grid touch 12 source slots but only 5 distinct
        // sources: everything after the first access of each is a hit.
        assert_eq!(run.stats.memo_hits, 12 - 5);
        assert_eq!(run.stats.attempts, 5, "one live attempt per source");
        assert!(run.stats.attempts < baseline.stats.attempts);
        assert!(run.stats.fees < baseline.stats.fees, "hits charge no fee");
        assert_eq!(memo.hits(), 7);
        assert_eq!(memo.len(), 5);
    }

    #[test]
    fn memoized_runs_match_across_worker_counts() {
        for workers in [1, 4, 8] {
            let memo = SourceMemo::new();
            let policy = RuntimePolicy::parallel(workers).with_lookahead(2);
            let run = run_memoized(policy, RunBudget::unbounded(), &memo);
            let reference = {
                let memo = SourceMemo::new();
                run_memoized(
                    RuntimePolicy::serial().with_lookahead(2),
                    RunBudget::unbounded(),
                    &memo,
                )
            };
            assert_eq!(run.reports, reference.reports, "workers = {workers}");
            assert_eq!(run.answers, reference.answers);
            assert_eq!(run.stats.memo_hits, reference.stats.memo_hits);
        }
    }

    #[test]
    fn warm_memo_serves_a_second_run_entirely_from_cache() {
        let memo = SourceMemo::new();
        let cold = run_memoized(RuntimePolicy::serial(), RunBudget::unbounded(), &memo);
        let warm = run_memoized(RuntimePolicy::serial(), RunBudget::unbounded(), &memo);
        assert_eq!(plan_sequence(&warm), plan_sequence(&cold));
        assert_eq!(warm.answers, cold.answers);
        assert_eq!(warm.stats.attempts, 0, "every access memoized");
        assert_eq!(warm.stats.memo_hits, 12);
    }

    #[test]
    fn permanently_down_source_costs_one_live_access() {
        let faults = FaultConfig::with_seed(1).with_source_down("v2");
        let memo = SourceMemo::new();
        let run = run_memoized(
            RuntimePolicy::serial().with_faults(faults.clone()),
            RunBudget::unbounded(),
            &memo,
        );
        let baseline = run_with(
            RuntimePolicy::serial().with_faults(faults),
            RunBudget::unbounded(),
        );
        // Identical semantics: same plans, same failures, same answers.
        assert_eq!(plan_sequence(&run), plan_sequence(&baseline));
        assert_eq!(run.failed(), baseline.failed());
        assert_eq!(run.answers, baseline.answers);
        // But only the first plan through v2 pays the real access.
        let v2_attempts: u32 = run
            .reports
            .iter()
            .flat_map(|r| &r.accesses)
            .filter(|a| a.name == "v2")
            .map(|a| a.attempts)
            .sum();
        assert_eq!(v2_attempts, 1);
        // The live failure bumped the epoch, so earlier successes were
        // re-verified at least once afterwards.
        assert!(memo.epoch() >= 1);
    }

    #[test]
    fn exhausted_retries_are_not_memoized() {
        // A transient retries-exhausted failure must not be served from
        // the memo: later plans through the same source retry fresh.
        let faults = FaultConfig::with_seed(99).with_extra_transient_rate(0.3);
        let policy = RuntimePolicy::serial()
            .with_faults(faults)
            .with_retry(RetryPolicy::none());
        let baseline = run_with(policy.clone(), RunBudget::unbounded());
        let exhausted: Vec<&PlanExecution> = baseline
            .reports
            .iter()
            .filter(|r| {
                matches!(
                    r.status,
                    PlanStatus::Failed(FailureReason::RetriesExhausted { .. })
                )
            })
            .collect();
        assert!(
            !exhausted.is_empty(),
            "seed must produce an exhausted-retries failure"
        );
        let memo = SourceMemo::new();
        let run = run_memoized(policy, RunBudget::unbounded(), &memo);
        // Every plan the baseline executed also executes under the memo:
        // the memo can only save work, never mask a retryable source.
        for (m, b) in run.reports.iter().zip(&baseline.reports) {
            assert_eq!(m.ordered.plan, b.ordered.plan);
            if b.executed() {
                assert!(
                    m.executed(),
                    "memo masked plan {:?} that the baseline executed",
                    b.ordered.plan
                );
            }
        }
    }

    #[test]
    fn reuse_reordering_stays_within_epsilon_groups() {
        let mk = |plan: Vec<usize>, utility: f64| OrderedPlan { plan, utility };
        let memo = SourceMemo::new();
        memo.store(0, 2, SCAN_PATTERN, MemoOutcome::Success);
        memo.store(1, 1, SCAN_PATTERN, MemoOutcome::Success);
        let mut window = vec![
            mk(vec![0, 0], -1.0),
            mk(vec![2, 1], -1.05), // full overlap, near-tied with the head
            mk(vec![2, 0], -1.08), // half overlap, near-tied with the head
            mk(vec![1, 1], -5.0),  // strictly dominated: must stay last
        ];
        reorder_for_reuse(&mut window, &memo, 0.1);
        let plans: Vec<_> = window.iter().map(|p| p.plan.clone()).collect();
        assert_eq!(
            plans,
            vec![vec![2, 1], vec![2, 0], vec![0, 0], vec![1, 1]],
            "overlap decides within the ε group; dominance is never crossed"
        );
        // Without a tie, order is untouched.
        let mut window = vec![mk(vec![0, 0], -1.0), mk(vec![2, 1], -2.0)];
        reorder_for_reuse(&mut window, &memo, 0.1);
        assert_eq!(window[0].plan, vec![0, 0]);
    }

    #[test]
    fn makespan_schedules_onto_lanes() {
        assert_eq!(makespan([4.0, 3.0, 2.0, 1.0].into_iter(), 1), 10.0);
        assert_eq!(makespan([4.0, 3.0, 2.0, 1.0].into_iter(), 2), 5.0);
        assert_eq!(makespan([4.0, 3.0, 2.0, 1.0].into_iter(), 4), 4.0);
        assert_eq!(makespan(std::iter::empty(), 3), 0.0);
    }

    #[test]
    fn timeout_turns_slow_successes_into_retries() {
        let inst = inst();
        let grid = SourceGrid::from_instance(&inst);
        let svc = grid.service(0, 0);
        let policy = RuntimePolicy::serial()
            .with_faults(FaultConfig::with_seed(4))
            .with_retry(RetryPolicy {
                access_timeout: svc.behavior.expected_latency() * 0.9,
                ..RetryPolicy::standard()
            });
        // With the timeout below the expected latency, roughly half of the
        // jittered draws exceed it; over many sequences some access must
        // record a timeout-induced retry.
        let timed_out = (0..50).any(|seq| {
            let a = access_with_retries(&SimBackend, svc, &policy, 0, seq, None);
            a.access.transient_failures > 0
        });
        assert!(timed_out);
        // And an infinite timeout on a reliable source never retries.
        let policy = RuntimePolicy::serial().with_faults(FaultConfig::with_seed(4));
        let a = access_with_retries(&SimBackend, grid.service(0, 2), &policy, 0, 0, None);
        assert_eq!((a.access.attempts, a.access.ok), (1, true));
        assert!(a.tuples.is_none(), "the simulator serves no data");
        assert_eq!(a.backend_errors, [0, 0]);
    }

    /// A backend that fails transiently for the first `flaky_attempts`
    /// attempts of every access, then serves data — exercising the
    /// typed-error retry path end to end.
    struct FlakyBackend {
        flaky_attempts: u32,
        down: Option<&'static str>,
    }

    impl crate::backend::SourceBackend for FlakyBackend {
        fn kind(&self) -> &'static str {
            "flaky-test"
        }

        fn access(
            &self,
            svc: &SourceService,
            ctx: &AccessContext<'_>,
        ) -> Result<crate::backend::AccessReply, crate::backend::BackendError> {
            if self.down == Some(svc.name.as_ref()) {
                return Err(crate::backend::BackendError::permanent(
                    "host decommissioned",
                ));
            }
            if ctx.attempt < self.flaky_attempts {
                return Err(
                    crate::backend::BackendError::transient("connection reset").with_latency(0.5)
                );
            }
            Ok(crate::backend::AccessReply {
                access: crate::source::Access {
                    outcome: AccessOutcome::Success,
                    latency: 1.0,
                },
                tuples: Some(Arc::new(vec![vec![Constant::Int(1)]])),
                remote: None,
            })
        }
    }

    #[test]
    fn transient_backend_errors_are_retried_with_backoff() {
        let inst = inst();
        let grid = SourceGrid::from_instance(&inst);
        let svc = grid.service(0, 0);
        let policy = RuntimePolicy::serial(); // 4 attempts, exp. backoff
        let backend = FlakyBackend {
            flaky_attempts: 2,
            down: None,
        };
        let mut events = Vec::new();
        let a = access_with_retries(&backend, svc, &policy, 0, 0, Some(&mut events));
        assert!(a.access.ok, "third attempt succeeds");
        assert_eq!(a.access.attempts, 3);
        assert_eq!(a.access.transient_failures, 2);
        assert_eq!(a.backend_errors, [2, 0]);
        assert!(a.tuples.is_some(), "data arrives with the success");
        // Backoffs accrued: attempt 1 free, attempts 2 and 3 back off,
        // plus two 0.5 error charges and the final 1.0 access.
        let expected = policy.retry.backoff_before(1) + policy.retry.backoff_before(2) + 2.0;
        assert!((a.access.latency - expected).abs() < 1e-9);
        // The typed classification rides on the attempt events.
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].outcome, "transient");
        assert_eq!(events[0].error.as_ref().unwrap().0, "transient");
        assert!(events[1].error.as_ref().unwrap().1.contains("reset"));
        assert!(events[2].error.is_none());
    }

    #[test]
    fn permanent_backend_errors_fail_plans_gracefully() {
        let inst = inst();
        let grid = SourceGrid::from_instance(&inst);
        let eval = ToyEval { inst: inst.clone() };
        let backend = FlakyBackend {
            flaky_attempts: 0,
            down: Some("w1"),
        };
        let mut orderer = Pi::new(&inst, &Coverage);
        let run = Executor::new(&grid, &eval, RuntimePolicy::parallel(2))
            .with_backend(Arc::new(backend))
            .run(&mut orderer, RunBudget::unbounded());
        assert_eq!(run.reports.len(), 6, "the run still covers the plan space");
        let failed: Vec<_> = run.reports.iter().filter(|r| r.failed()).collect();
        assert_eq!(failed.len(), 3, "every plan through w1 fails");
        for r in &failed {
            assert!(matches!(
                r.status,
                PlanStatus::Failed(FailureReason::PermanentlyDown { ref source })
                    if source == "w1"
            ));
        }
        assert!(run.executed() > 0, "plans avoiding w1 still answer");
    }
}
