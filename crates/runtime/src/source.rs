//! Simulated remote sources: each catalog source wrapped as a service with
//! deterministic, seed-driven latency and failure behavior.
//!
//! Determinism is the load-bearing property. An access outcome is a pure
//! function of `(fault seed, source identity, plan sequence number,
//! attempt)` — never of wall time, thread identity, or interleaving — so a
//! concurrent run replays bit-for-bit under any worker count, and tests
//! can assert on exact failure traces.

use crate::policy::FaultConfig;
use qpo_catalog::{ProblemInstance, SourceBehavior};
use std::sync::Arc;

/// What one simulated access attempt did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The attempt succeeded.
    Success,
    /// The attempt failed transiently; retrying may succeed.
    TransientFailure,
    /// The source is permanently down; retrying is pointless.
    PermanentFailure,
}

/// One simulated access attempt: outcome plus charged virtual latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Access {
    /// What happened.
    pub outcome: AccessOutcome,
    /// Virtual time the attempt took.
    pub latency: f64,
}

/// A catalog source wrapped as a runtime service.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceService {
    /// Bucket (subgoal) the service answers.
    pub bucket: usize,
    /// Index within the bucket.
    pub index: usize,
    /// Source name (from the catalog, or `b<bucket>s<index>` if unnamed).
    pub name: Arc<str>,
    /// The derived behavior model.
    pub behavior: SourceBehavior,
}

/// SplitMix64: the standard 64-bit finalizer; full-period, well mixed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over a byte string, for hashing source names into the roll.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Maps a hash to a uniform draw in `[0, 1)` using the top 53 bits.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl SourceService {
    /// Wraps one source of a problem instance.
    pub fn from_instance(inst: &ProblemInstance, bucket: usize, index: usize) -> Self {
        let stats = &inst.buckets[bucket][index];
        let name = match &stats.name {
            Some(n) => n.clone(),
            None => Arc::from(format!("b{bucket}s{index}").as_str()),
        };
        SourceService {
            bucket,
            index,
            name,
            behavior: SourceBehavior::from_stats(stats),
        }
    }

    /// The per-attempt roll: a distinct, deterministic stream per
    /// `(seed, source, plan sequence, attempt, stream)` tuple.
    fn roll(&self, faults: &FaultConfig, plan_seq: u64, attempt: u32, stream: u64) -> u64 {
        let mut h = faults.seed ^ fnv1a(self.name.as_bytes());
        h = splitmix64(h ^ (self.bucket as u64).rotate_left(17));
        h = splitmix64(h ^ (self.index as u64).rotate_left(34));
        h = splitmix64(h ^ plan_seq);
        h = splitmix64(h ^ (u64::from(attempt) << 8) ^ stream);
        splitmix64(h)
    }

    /// The transient failure probability in effect under `faults`.
    pub fn effective_transient_rate(&self, faults: &FaultConfig) -> f64 {
        if !faults.enabled {
            return 0.0;
        }
        (self.behavior.transient_failure_rate + faults.extra_transient_rate()).min(0.999)
    }

    /// Simulates one access attempt. Pure: equal arguments give equal
    /// results, on any thread, in any order.
    pub fn simulate_access(&self, faults: &FaultConfig, plan_seq: u64, attempt: u32) -> Access {
        if faults.enabled && faults.permanently_down.contains(self.name.as_ref()) {
            return Access {
                outcome: AccessOutcome::PermanentFailure,
                latency: 0.0,
            };
        }
        let jitter = self.behavior.latency_jitter;
        let u_latency = unit(self.roll(faults, plan_seq, attempt, 1));
        let latency = self.behavior.expected_latency() * (1.0 - jitter + 2.0 * jitter * u_latency);
        let rate = self.effective_transient_rate(faults);
        let failed = rate > 0.0 && unit(self.roll(faults, plan_seq, attempt, 2)) < rate;
        Access {
            outcome: if failed {
                AccessOutcome::TransientFailure
            } else {
                AccessOutcome::Success
            },
            latency,
        }
    }
}

/// All services of an instance, addressable by `(bucket, index)` — the
/// coordinates concrete plans are written in.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceGrid {
    buckets: Vec<Vec<SourceService>>,
}

impl SourceGrid {
    /// Wraps every source of the instance.
    pub fn from_instance(inst: &ProblemInstance) -> Self {
        SourceGrid {
            buckets: (0..inst.buckets.len())
                .map(|b| {
                    (0..inst.buckets[b].len())
                        .map(|i| SourceService::from_instance(inst, b, i))
                        .collect()
                })
                .collect(),
        }
    }

    /// The service at plan coordinates `(bucket, index)`.
    ///
    /// # Panics
    /// Panics if the coordinates are out of range.
    pub fn service(&self, bucket: usize, index: usize) -> &SourceService {
        &self.buckets[bucket][index]
    }

    /// Services of one concrete plan, bucket by bucket. Lazy: no per-plan
    /// allocation — the executor walks this once per plan on the hot path.
    pub fn plan_services<'a>(
        &'a self,
        plan: &'a [usize],
    ) -> impl ExactSizeIterator<Item = &'a SourceService> + 'a {
        plan.iter().enumerate().map(|(b, &i)| self.service(b, i))
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// All services, flattened.
    pub fn iter(&self) -> impl Iterator<Item = &SourceService> {
        self.buckets.iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpo_catalog::{Extent, SourceStats};

    fn inst() -> ProblemInstance {
        let src = |name: &str, f: f64| {
            SourceStats::new()
                .with_name(name)
                .with_extent(Extent::new(0, 10))
                .with_access_cost(2.0)
                .with_transmission_cost(0.1)
                .with_failure_prob(f)
        };
        ProblemInstance::new(
            0.0,
            vec![100, 100],
            vec![
                vec![src("v1", 0.0), src("v2", 0.5)],
                vec![
                    src("v3", 0.2),
                    SourceStats::new().with_extent(Extent::new(0, 5)),
                ],
            ],
        )
        .unwrap()
    }

    #[test]
    fn grid_wraps_every_source_with_names() {
        let grid = SourceGrid::from_instance(&inst());
        assert_eq!(grid.bucket_count(), 2);
        assert_eq!(grid.iter().count(), 4);
        assert_eq!(grid.service(0, 1).name.as_ref(), "v2");
        assert_eq!(grid.service(1, 1).name.as_ref(), "b1s1", "unnamed fallback");
        let choice = [1, 0];
        let mut services = grid.plan_services(&choice);
        assert_eq!(services.len(), 2, "lazy but exact-size");
        assert_eq!(services.next().unwrap().name.as_ref(), "v2");
        assert_eq!(services.next().unwrap().name.as_ref(), "v3");
        assert!(services.next().is_none());
    }

    #[test]
    fn accesses_are_deterministic() {
        let grid = SourceGrid::from_instance(&inst());
        let faults = FaultConfig::with_seed(7);
        let svc = grid.service(0, 1);
        for seq in 0..20 {
            for attempt in 0..4 {
                let a = svc.simulate_access(&faults, seq, attempt);
                let b = svc.simulate_access(&faults, seq, attempt);
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn disabled_faults_always_succeed() {
        let grid = SourceGrid::from_instance(&inst());
        let faults = FaultConfig::disabled();
        for svc in grid.iter() {
            for seq in 0..50 {
                let a = svc.simulate_access(&faults, seq, 0);
                assert_eq!(a.outcome, AccessOutcome::Success);
                assert!(a.latency >= 0.0);
            }
        }
    }

    #[test]
    fn transient_rate_tracks_the_behavior_model() {
        let grid = SourceGrid::from_instance(&inst());
        let faults = FaultConfig::with_seed(3);
        let svc = grid.service(0, 1); // failure_prob 0.5
        let n = 2000;
        let failures = (0..n)
            .filter(|&seq| {
                svc.simulate_access(&faults, seq, 0).outcome == AccessOutcome::TransientFailure
            })
            .count();
        let rate = failures as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.05, "observed {rate}");
        // And the reliable source never fails.
        let svc = grid.service(0, 0);
        assert!((0..200)
            .all(|seq| { svc.simulate_access(&faults, seq, 0).outcome == AccessOutcome::Success }));
    }

    #[test]
    fn attempts_are_independent_rolls() {
        let grid = SourceGrid::from_instance(&inst());
        let faults = FaultConfig::with_seed(3);
        let svc = grid.service(0, 1);
        // Some sequence must fail on attempt 0 yet succeed on a retry.
        let recovered = (0..100).any(|seq| {
            svc.simulate_access(&faults, seq, 0).outcome == AccessOutcome::TransientFailure
                && (1..4).any(|attempt| {
                    svc.simulate_access(&faults, seq, attempt).outcome == AccessOutcome::Success
                })
        });
        assert!(recovered);
    }

    #[test]
    fn permanent_failure_short_circuits() {
        let grid = SourceGrid::from_instance(&inst());
        let faults = FaultConfig::with_seed(1).with_source_down("v1");
        let a = grid.service(0, 0).simulate_access(&faults, 0, 0);
        assert_eq!(a.outcome, AccessOutcome::PermanentFailure);
        // The same source under disabled faults is fine.
        let a = grid
            .service(0, 0)
            .simulate_access(&FaultConfig::disabled(), 0, 0);
        assert_eq!(a.outcome, AccessOutcome::Success);
    }

    #[test]
    fn latency_is_jittered_around_the_expectation() {
        let grid = SourceGrid::from_instance(&inst());
        let svc = grid.service(0, 0);
        let expected = svc.behavior.expected_latency();
        let j = svc.behavior.latency_jitter;
        let faults = FaultConfig::with_seed(9);
        let mut distinct = std::collections::BTreeSet::new();
        for seq in 0..50 {
            let lat = svc.simulate_access(&faults, seq, 0).latency;
            assert!(lat >= expected * (1.0 - j) - 1e-12);
            assert!(lat <= expected * (1.0 + j) + 1e-12);
            distinct.insert((lat * 1e9) as i64);
        }
        assert!(distinct.len() > 10, "latency actually varies");
    }
}
