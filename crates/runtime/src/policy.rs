//! Execution policies: parallelism, retries with capped exponential
//! backoff, per-access timeouts, and fault injection.

use std::collections::BTreeSet;

/// Fault injection applied on top of each source's behavior model.
///
/// All injected faults are *deterministic*: whether attempt `a` of plan
/// `s`'s access to a source fails is a pure function of `(seed, source,
/// plan sequence number, attempt)`, so a run is bit-for-bit reproducible
/// regardless of worker count or thread interleaving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultConfig {
    /// Master switch. When `false`, every access succeeds on the first
    /// attempt (latency is still drawn, deterministically).
    pub enabled: bool,
    /// Seed for the deterministic failure/latency rolls.
    pub seed: u64,
    /// Added to each source's cataloged transient failure rate
    /// (milli-probability: 200 ⇒ +0.2), for stress experiments.
    pub extra_transient_millis: u32,
    /// Sources (by name) that are permanently down: every access fails
    /// immediately and unretryably.
    pub permanently_down: BTreeSet<String>,
}

impl FaultConfig {
    /// No faults at all: the configuration under which the concurrent
    /// executor is equivalent to the serial mediator.
    pub fn disabled() -> Self {
        FaultConfig {
            enabled: false,
            seed: 0,
            extra_transient_millis: 0,
            permanently_down: BTreeSet::new(),
        }
    }

    /// Faults on, driven by `seed`, with each source's cataloged transient
    /// failure rate.
    pub fn with_seed(seed: u64) -> Self {
        FaultConfig {
            enabled: true,
            ..FaultConfig::disabled()
        }
        .seeded(seed)
    }

    fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds `rate` (a probability, clamped to `[0, 0.999]`) to every
    /// source's transient failure rate.
    pub fn with_extra_transient_rate(mut self, rate: f64) -> Self {
        self.extra_transient_millis = (rate.clamp(0.0, 0.999) * 1000.0).round() as u32;
        self
    }

    /// The extra transient failure rate as a probability.
    pub fn extra_transient_rate(&self) -> f64 {
        f64::from(self.extra_transient_millis) / 1000.0
    }

    /// Marks a source as permanently down.
    pub fn with_source_down(mut self, name: impl Into<String>) -> Self {
        self.permanently_down.insert(name.into());
        self
    }
}

/// Retry discipline for one source access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Attempts per access before the plan is marked failed (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt, in virtual time units.
    pub base_backoff: f64,
    /// Multiplier applied per further attempt.
    pub backoff_factor: f64,
    /// Ceiling on a single backoff.
    pub max_backoff: f64,
    /// Per-attempt latency budget: an attempt whose drawn latency exceeds
    /// this counts as a transient failure charged at the timeout.
    pub access_timeout: f64,
}

impl RetryPolicy {
    /// Four attempts, backoff 1·2^k capped at 8, no timeout.
    pub fn standard() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: 1.0,
            backoff_factor: 2.0,
            max_backoff: 8.0,
            access_timeout: f64::INFINITY,
        }
    }

    /// One attempt, no backoff — fail fast.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::standard()
        }
    }

    /// Virtual time waited before `attempt` (0-based): nothing before the
    /// first, then `base · factor^(attempt−1)` capped at `max_backoff`.
    pub fn backoff_before(&self, attempt: u32) -> f64 {
        if attempt == 0 {
            return 0.0;
        }
        let raw = self.base_backoff * self.backoff_factor.powi(attempt as i32 - 1);
        raw.min(self.max_backoff)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::standard()
    }
}

/// Everything the executor needs to know about *how* to run.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimePolicy {
    /// Worker threads executing plans (≥ 1). Affects wall time only, never
    /// results.
    pub workers: usize,
    /// Speculation depth: how many plans are popped from the orderer and
    /// put in flight before their outcomes are known (≥ 1). Pops within a
    /// window are optimistic — exactly the assumption the serial mediator
    /// makes — so with faults disabled any depth gives the serial ordering.
    pub lookahead: usize,
    /// Retry discipline per source access.
    pub retry: RetryPolicy,
    /// Fault injection.
    pub faults: FaultConfig,
    /// Wall seconds per virtual time unit that workers actually sleep
    /// (0.0 = pure simulation; benches use a small positive scale to make
    /// parallel speedup observable).
    pub latency_scale: f64,
    /// Reuse-aware scheduling tolerance. When set (and a source memo is
    /// attached), plans inside one speculation window whose utilities lie
    /// within `ε` of the window group's best are re-sequenced to maximize
    /// memo overlap with already-executed plans. `None` (the default)
    /// disables reordering entirely, preserving the orderer's emission
    /// order bit-for-bit. Reordering never crosses a strict utility
    /// dominance (a gap larger than `ε`), so the paper's ordering
    /// guarantees are untouched.
    pub reuse_epsilon: Option<f64>,
}

impl RuntimePolicy {
    /// Serial-equivalent defaults: one worker, no speculation, standard
    /// retries, faults off, no real sleeping.
    pub fn serial() -> Self {
        RuntimePolicy {
            workers: 1,
            lookahead: 1,
            retry: RetryPolicy::standard(),
            faults: FaultConfig::disabled(),
            latency_scale: 0.0,
            reuse_epsilon: None,
        }
    }

    /// `workers` workers speculating `workers` plans ahead.
    pub fn parallel(workers: usize) -> Self {
        let workers = workers.max(1);
        RuntimePolicy {
            workers,
            lookahead: workers,
            ..RuntimePolicy::serial()
        }
    }

    /// Replaces the fault configuration.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Replaces the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Replaces the speculation depth (≥ 1 enforced).
    pub fn with_lookahead(mut self, lookahead: usize) -> Self {
        self.lookahead = lookahead.max(1);
        self
    }

    /// Replaces the wall-seconds-per-virtual-unit scale (negative values
    /// are treated as 0, i.e. pure simulation).
    pub fn with_latency_scale(mut self, scale: f64) -> Self {
        self.latency_scale = scale.max(0.0);
        self
    }

    /// Enables reuse-aware scheduling with tolerance `ε` (negative values
    /// are treated as 0, i.e. exact ties only).
    pub fn with_reuse_epsilon(mut self, epsilon: f64) -> Self {
        self.reuse_epsilon = Some(epsilon.max(0.0));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_then_caps() {
        let r = RetryPolicy::standard();
        assert_eq!(r.backoff_before(0), 0.0);
        assert_eq!(r.backoff_before(1), 1.0);
        assert_eq!(r.backoff_before(2), 2.0);
        assert_eq!(r.backoff_before(3), 4.0);
        assert_eq!(r.backoff_before(4), 8.0);
        assert_eq!(r.backoff_before(9), 8.0, "capped");
    }

    #[test]
    fn fault_config_builders() {
        let f = FaultConfig::with_seed(42)
            .with_extra_transient_rate(0.25)
            .with_source_down("v3");
        assert!(f.enabled);
        assert_eq!(f.seed, 42);
        assert!((f.extra_transient_rate() - 0.25).abs() < 1e-9);
        assert!(f.permanently_down.contains("v3"));
        assert!(!FaultConfig::disabled().enabled);
    }

    #[test]
    fn extra_rate_clamps() {
        let f = FaultConfig::with_seed(0).with_extra_transient_rate(5.0);
        assert!(f.extra_transient_rate() <= 0.999);
        let f = FaultConfig::with_seed(0).with_extra_transient_rate(-1.0);
        assert_eq!(f.extra_transient_rate(), 0.0);
    }

    #[test]
    fn policy_builders_enforce_minima() {
        assert_eq!(RuntimePolicy::parallel(0).workers, 1);
        assert_eq!(RuntimePolicy::serial().with_lookahead(0).lookahead, 1);
        let p = RuntimePolicy::parallel(4);
        assert_eq!((p.workers, p.lookahead), (4, 4));
    }
}
