//! Out-of-process sources over TCP: [`TcpBackend`] (the client the
//! executor dispatches through) and [`SourceServer`] (the loopback server
//! the `qpo-source-server` binary and the tests run).
//!
//! Both ends speak the length-prefixed wire protocol of [`crate::wire`].
//! The client measures real wall time per access and maps it onto the
//! virtual-time axis via `latency_unit`; connection failures, timeouts,
//! resets, and malformed responses surface as typed
//! [`BackendError`]s — transient, so the executor's retry/backoff
//! machinery handles a flapping server with the same discipline it
//! applies to simulated transient faults. Only an explicit
//! `UNKNOWN_SOURCE` response is permanent: the server is healthy and
//! simply does not host the relation.
//!
//! The server is deliberately minimal — serial accept loop, bounded
//! frame reads, one thread — mirroring the `qpo-obs` introspection
//! server's shutdown idiom (an atomic flag plus a throwaway wake-up
//! connection, so `stop()` never blocks on `accept`).

use crate::backend::{AccessContext, AccessReply, BackendError, SourceBackend};
use crate::source::{Access, AccessOutcome, SourceService};
use crate::store::StoreBackend;
use crate::wire::{self, Request, Response};
use qpo_datalog::Tuple;
use std::collections::BTreeMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Something that can answer "the current tuples of relation `name`" —
/// the server side's storage abstraction. [`StoreBackend`] implements it
/// (persistent server), as does [`MemProvider`] (fixture server).
pub trait RelationProvider: Send + Sync {
    /// The relation's tuples, or `None` if not hosted.
    fn relation(&self, name: &str) -> Option<Arc<Vec<Tuple>>>;

    /// Monotone data-version counter, stamped on every wire response so
    /// clients can invalidate memoized outcomes when the served data
    /// changes. Providers whose data never changes may keep the default.
    fn epoch(&self) -> u64 {
        0
    }
}

impl RelationProvider for StoreBackend {
    fn relation(&self, name: &str) -> Option<Arc<Vec<Tuple>>> {
        StoreBackend::relation(self, name)
    }

    fn epoch(&self) -> u64 {
        self.records()
    }
}

/// An in-memory relation provider for fixtures and tests.
#[derive(Debug, Default)]
pub struct MemProvider {
    relations: Mutex<BTreeMap<String, Arc<Vec<Tuple>>>>,
    version: AtomicU64,
}

impl MemProvider {
    /// An empty provider.
    pub fn new() -> Self {
        MemProvider::default()
    }

    /// Inserts (or replaces) a relation, bumping the data version.
    pub fn insert(&self, name: impl Into<String>, rows: Vec<Tuple>) {
        self.relations
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.into(), Arc::new(rows));
        self.version.fetch_add(1, Ordering::SeqCst);
    }
}

impl RelationProvider for MemProvider {
    fn relation(&self, name: &str) -> Option<Arc<Vec<Tuple>>> {
        self.relations
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    fn epoch(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }
}

/// Per-connection I/O timeout on the server side.
const SERVER_IO_TIMEOUT: Duration = Duration::from_secs(2);

/// A running loopback source server. Dropping it stops the accept loop.
pub struct SourceServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    requests: Arc<AtomicU64>,
}

impl SourceServer {
    /// Binds `127.0.0.1:port` (`port` 0 picks a free one) and serves
    /// `provider` on a background thread.
    pub fn serve(provider: Arc<dyn RelationProvider>, port: u16) -> std::io::Result<SourceServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let requests = Arc::new(AtomicU64::new(0));
        let flag = Arc::clone(&shutdown);
        let served = Arc::clone(&requests);
        let handle = std::thread::Builder::new()
            .name("qpo-source-server".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if flag.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // Serial service keeps the server trivially
                        // correct; the executor's parallelism comes from
                        // its own worker lanes, not the source.
                        let _ = handle_connection(stream, provider.as_ref(), &served);
                    }
                }
            })?;
        Ok(SourceServer {
            addr,
            shutdown,
            handle: Some(handle),
            requests,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests answered so far.
    pub fn requests_served(&self) -> u64 {
        self.requests.load(Ordering::SeqCst)
    }

    /// Stops the accept loop and joins the server thread. Idempotent.
    pub fn stop(&mut self) {
        if self.handle.is_none() {
            return;
        }
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock `accept` with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for SourceServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Serves one connection: any number of request frames until the peer
/// closes, a frame is malformed, or a timeout fires. A malformed frame
/// gets a transient-error response (best effort) and the connection is
/// dropped — after garbage, frame alignment cannot be trusted.
fn handle_connection(
    mut stream: TcpStream,
    provider: &dyn RelationProvider,
    served: &AtomicU64,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(SERVER_IO_TIMEOUT))?;
    stream.set_write_timeout(Some(SERVER_IO_TIMEOUT))?;
    loop {
        let payload = match wire::read_frame(&mut stream) {
            Ok(p) => p,
            Err(_) => return Ok(()), // peer closed, timed out, or hostile length
        };
        let response = match wire::decode_request(&payload) {
            Ok(req) => respond(&req, provider),
            Err(e) => {
                let resp = Response::Error(format!("malformed request: {e}"));
                if let Ok(bytes) = wire::encode_response(&resp, provider.epoch()) {
                    let _ = wire::write_frame(&mut stream, &bytes);
                }
                return Ok(());
            }
        };
        served.fetch_add(1, Ordering::SeqCst);
        let bytes = wire::encode_response(&response, provider.epoch())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        wire::write_frame(&mut stream, &bytes)?;
        stream.flush()?;
    }
}

/// Pure request → response mapping, split out so protocol tests can run
/// without sockets (the `qpo-obs::serve` pattern).
pub fn respond(req: &Request, provider: &dyn RelationProvider) -> Response {
    match provider.relation(&req.source) {
        Some(rows) => Response::Rows(rows.as_ref().clone()),
        None => Response::UnknownSource(format!("source `{}` not hosted here", req.source)),
    }
}

/// A remote source reached over TCP; see the module docs.
///
/// Every server response carries the provider's data epoch in its
/// header; the backend tracks the highest epoch observed (shared across
/// clones) and reports it through [`SourceBackend::epoch`], so the
/// source memo invalidates automatically when the remote data changes.
#[derive(Debug, Clone)]
pub struct TcpBackend {
    addr: String,
    io_timeout: Duration,
    latency_unit: f64,
    seen_epoch: Arc<AtomicU64>,
}

impl TcpBackend {
    /// A backend dialing `addr` (e.g. `"127.0.0.1:7171"`) with a 2 s I/O
    /// timeout and one virtual unit per millisecond.
    pub fn new(addr: impl Into<String>) -> Self {
        TcpBackend {
            addr: addr.into(),
            io_timeout: Duration::from_secs(2),
            latency_unit: 1000.0,
            seen_epoch: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Sets the connect/read/write timeout.
    pub fn with_io_timeout(mut self, timeout: Duration) -> Self {
        self.io_timeout = timeout;
        self
    }

    /// Sets the virtual-time units charged per wall second (default
    /// `1000.0`).
    pub fn with_latency_unit(mut self, units_per_second: f64) -> Self {
        self.latency_unit = units_per_second.max(0.0);
        self
    }

    /// The server address this backend dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// One full request/response exchange on a fresh connection. Folds
    /// the response header's epoch into the high-water mark before
    /// returning, so even error responses advance the observed version.
    fn exchange(&self, source: &str, pattern: &str) -> Result<Response, BackendError> {
        let addr = self
            .addr
            .to_socket_addrs()
            .map_err(|e| BackendError::from_io(&e, "resolve"))?
            .next()
            .ok_or_else(|| {
                BackendError::permanent(format!("`{}` resolves to nothing", self.addr))
            })?;
        let mut stream = TcpStream::connect_timeout(&addr, self.io_timeout)
            .map_err(|e| BackendError::from_io(&e, "connect"))?;
        stream
            .set_read_timeout(Some(self.io_timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.io_timeout)))
            .map_err(|e| BackendError::from_io(&e, "configure socket"))?;
        let request = wire::encode_request(&Request {
            source: source.to_string(),
            pattern: pattern.to_string(),
        })
        .map_err(|e| BackendError::permanent(format!("encode request: {e}")))?;
        wire::write_frame(&mut stream, &request)
            .map_err(|e| BackendError::from_io(&e, "send request"))?;
        let payload = wire::read_frame(&mut stream)
            .map_err(|e| BackendError::from_io(&e, "read response"))?;
        let (resp, epoch) = wire::decode_response(&payload)
            .map_err(|e| BackendError::transient(format!("malformed response: {e}")))?;
        self.seen_epoch.fetch_max(epoch, Ordering::SeqCst);
        Ok(resp)
    }
}

impl SourceBackend for TcpBackend {
    fn kind(&self) -> &'static str {
        "tcp"
    }

    fn epoch(&self) -> u64 {
        self.seen_epoch.load(Ordering::SeqCst)
    }

    fn access(
        &self,
        svc: &SourceService,
        ctx: &AccessContext<'_>,
    ) -> Result<AccessReply, BackendError> {
        let start = Instant::now();
        let result = self.exchange(svc.name.as_ref(), ctx.pattern);
        let latency = start.elapsed().as_secs_f64() * self.latency_unit;
        match result {
            Ok(Response::Rows(rows)) => Ok(AccessReply {
                access: Access {
                    outcome: AccessOutcome::Success,
                    latency,
                },
                tuples: Some(Arc::new(rows)),
            }),
            Ok(Response::UnknownSource(msg)) => {
                Err(BackendError::permanent(msg).with_latency(latency))
            }
            Ok(Response::Error(msg)) => Err(BackendError::transient(msg).with_latency(latency)),
            Err(e) => {
                let latency = latency.max(e.latency);
                Err(e.with_latency(latency))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendErrorClass;
    use crate::memo::SCAN_PATTERN;
    use crate::policy::FaultConfig;
    use crate::source::SourceGrid;
    use qpo_catalog::{Extent, ProblemInstance, SourceStats};
    use qpo_datalog::Constant;

    fn rows(items: &[i64]) -> Vec<Tuple> {
        items.iter().map(|&i| vec![Constant::Int(i)]).collect()
    }

    fn provider() -> Arc<MemProvider> {
        let p = MemProvider::new();
        p.insert("v1", rows(&[1, 2, 3]));
        p.insert(
            "w1",
            vec![vec![Constant::Str("ford".into()), Constant::Int(7)]],
        );
        Arc::new(p)
    }

    fn grid() -> SourceGrid {
        let src = |name: &str| {
            SourceStats::new()
                .with_name(name)
                .with_extent(Extent::new(0, 3))
        };
        let inst = ProblemInstance::new(
            0.0,
            vec![10],
            vec![vec![src("v1"), src("w1"), src("missing")]],
        )
        .unwrap();
        SourceGrid::from_instance(&inst)
    }

    fn ctx(faults: &FaultConfig) -> AccessContext<'_> {
        AccessContext {
            pattern: SCAN_PATTERN,
            plan_seq: 0,
            attempt: 0,
            faults,
        }
    }

    #[test]
    fn respond_maps_hosted_and_unknown_sources() {
        let p = provider();
        let req = |source: &str| Request {
            source: source.into(),
            pattern: "scan".into(),
        };
        assert_eq!(
            respond(&req("v1"), p.as_ref()),
            Response::Rows(rows(&[1, 2, 3]))
        );
        assert!(matches!(
            respond(&req("nope"), p.as_ref()),
            Response::UnknownSource(_)
        ));
    }

    #[test]
    fn tcp_backend_round_trips_through_a_live_server() {
        let mut server = SourceServer::serve(provider(), 0).unwrap();
        let backend = TcpBackend::new(server.addr().to_string());
        let grid = grid();
        let faults = FaultConfig::disabled();
        let reply = backend.access(grid.service(0, 0), &ctx(&faults)).unwrap();
        assert_eq!(reply.access.outcome, AccessOutcome::Success);
        assert!(reply.access.latency >= 0.0);
        assert_eq!(reply.tuples.unwrap().as_ref(), &rows(&[1, 2, 3]));
        // Unknown source → permanent, with the server's message.
        let err = backend
            .access(grid.service(0, 2), &ctx(&faults))
            .unwrap_err();
        assert_eq!(err.class, BackendErrorClass::Permanent);
        assert!(err.message.contains("missing"));
        assert!(server.requests_served() >= 2);
        server.stop();
    }

    #[test]
    fn dead_server_is_a_transient_failure() {
        // Bind-then-drop guarantees a port nobody is listening on.
        let port = {
            let l = TcpListener::bind(("127.0.0.1", 0)).unwrap();
            l.local_addr().unwrap().port()
        };
        let backend = TcpBackend::new(format!("127.0.0.1:{port}"))
            .with_io_timeout(Duration::from_millis(200));
        let grid = grid();
        let faults = FaultConfig::disabled();
        let err = backend
            .access(grid.service(0, 0), &ctx(&faults))
            .unwrap_err();
        assert_eq!(err.class, BackendErrorClass::Transient, "{}", err.message);
        assert!(err.latency >= 0.0);
    }

    #[test]
    fn garbage_and_truncated_frames_do_not_kill_the_server() {
        let mut server = SourceServer::serve(provider(), 0).unwrap();
        let addr = server.addr();
        // Raw garbage: a framed payload that is not a valid request.
        {
            let mut s = TcpStream::connect(addr).unwrap();
            wire::write_frame(&mut s, &[0xde, 0xad, 0xbe, 0xef]).unwrap();
            let reply = wire::read_frame(&mut s).unwrap();
            match wire::decode_response(&reply).unwrap().0 {
                Response::Error(msg) => assert!(msg.contains("malformed")),
                other => panic!("expected transient error, got {other:?}"),
            }
        }
        // A truncated frame (length prefix, missing payload) then hangup.
        {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&100u32.to_be_bytes()).unwrap();
            s.write_all(&[1, 2, 3]).unwrap();
        }
        // A hostile length prefix.
        {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&u32::MAX.to_be_bytes()).unwrap();
        }
        // The server is still alive and serving correct requests.
        let backend = TcpBackend::new(addr.to_string());
        let grid = grid();
        let faults = FaultConfig::disabled();
        let reply = backend.access(grid.service(0, 1), &ctx(&faults)).unwrap();
        assert_eq!(reply.tuples.unwrap().len(), 1);
        server.stop();
    }

    #[test]
    fn multiple_requests_reuse_one_connection() {
        let mut server = SourceServer::serve(provider(), 0).unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        for _ in 0..3 {
            let req = wire::encode_request(&Request {
                source: "v1".into(),
                pattern: "scan".into(),
            })
            .unwrap();
            wire::write_frame(&mut s, &req).unwrap();
            let reply = wire::read_frame(&mut s).unwrap();
            let (resp, epoch) = wire::decode_response(&reply).unwrap();
            assert_eq!(resp, Response::Rows(rows(&[1, 2, 3])));
            assert_eq!(epoch, 2, "two fixture inserts");
        }
        drop(s);
        server.stop();
        assert_eq!(server.requests_served(), 3);
    }

    #[test]
    fn epoch_rides_the_wire_and_advances_the_backend() {
        let p = provider(); // two fixture inserts → server epoch 2
        let mut server = SourceServer::serve(p.clone(), 0).unwrap();
        let backend = TcpBackend::new(server.addr().to_string());
        let grid = grid();
        let faults = FaultConfig::disabled();
        assert_eq!(backend.epoch(), 0, "no response observed yet");
        backend.access(grid.service(0, 0), &ctx(&faults)).unwrap();
        assert_eq!(backend.epoch(), 2);
        // A remote data change is visible after the next exchange — even
        // through a clone (the high-water mark is shared) and even when
        // the exchange itself fails (UNKNOWN_SOURCE carries the epoch).
        p.insert("v1", rows(&[9]));
        let clone = backend.clone();
        let _ = clone.access(grid.service(0, 2), &ctx(&faults));
        assert_eq!(backend.epoch(), 3);
        server.stop();
    }

    #[test]
    fn stop_is_idempotent_and_drop_safe() {
        let mut server = SourceServer::serve(provider(), 0).unwrap();
        server.stop();
        server.stop();
        drop(server); // Drop after stop must not hang.
    }
}
