//! Out-of-process sources over TCP: [`TcpBackend`] (the client the
//! executor dispatches through) and [`SourceServer`] (the loopback server
//! the `qpo-source-server` binary and the tests run).
//!
//! Both ends speak the length-prefixed wire protocol of [`crate::wire`].
//! The client measures real wall time per access and maps it onto the
//! virtual-time axis via `latency_unit`; connection failures, timeouts,
//! resets, and malformed responses surface as typed
//! [`BackendError`]s — transient, so the executor's retry/backoff
//! machinery handles a flapping server with the same discipline it
//! applies to simulated transient faults. Only an explicit
//! `UNKNOWN_SOURCE` response is permanent: the server is healthy and
//! simply does not host the relation.
//!
//! The server is deliberately minimal — serial accept loop, bounded
//! frame reads, one thread — mirroring the `qpo-obs` introspection
//! server's shutdown idiom (an atomic flag plus a throwaway wake-up
//! connection, so `stop()` never blocks on `accept`).
//!
//! ## Distributed tracing
//!
//! Requests from a tracing client carry a [`wire::TraceContext`]
//! extension block (run / plan / source / attempt); the server times each
//! request's receive→parse, provider lookup, and row-encode phases,
//! journals them in a bounded in-process [`ServerJournal`] (dumped over
//! the wire by [`wire::OP_TRACE`] or `qpo-source-server --metrics`), and
//! — only when the request carried a context — appends a
//! [`wire::ServerSpan`] extension to the response. [`TcpBackend`] decodes
//! that block into a virtual-unit [`RemoteSpan`] on the [`AccessReply`],
//! clamped so `phase sum ≤ total ≤ client latency` holds bit-exactly.
//! Interop is two-sided: a legacy client's requests get byte-identical
//! legacy responses, and a legacy (strict) server's "trailing bytes"
//! rejection makes the client latch into legacy mode and resend the
//! attempt plain — degrading to single-span client-side attribution.

use crate::backend::{AccessContext, AccessReply, BackendError, RemoteSpan, SourceBackend};
use crate::source::{Access, AccessOutcome, SourceService};
use crate::store::StoreBackend;
use crate::wire::{self, Request, Response};
use qpo_datalog::Tuple;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Something that can answer "the current tuples of relation `name`" —
/// the server side's storage abstraction. [`StoreBackend`] implements it
/// (persistent server), as does [`MemProvider`] (fixture server).
pub trait RelationProvider: Send + Sync {
    /// The relation's tuples, or `None` if not hosted.
    fn relation(&self, name: &str) -> Option<Arc<Vec<Tuple>>>;

    /// Monotone data-version counter, stamped on every wire response so
    /// clients can invalidate memoized outcomes when the served data
    /// changes. Providers whose data never changes may keep the default.
    fn epoch(&self) -> u64 {
        0
    }
}

impl RelationProvider for StoreBackend {
    fn relation(&self, name: &str) -> Option<Arc<Vec<Tuple>>> {
        StoreBackend::relation(self, name)
    }

    fn epoch(&self) -> u64 {
        self.records()
    }
}

/// An in-memory relation provider for fixtures and tests.
#[derive(Debug, Default)]
pub struct MemProvider {
    relations: Mutex<BTreeMap<String, Arc<Vec<Tuple>>>>,
    version: AtomicU64,
}

impl MemProvider {
    /// An empty provider.
    pub fn new() -> Self {
        MemProvider::default()
    }

    /// Inserts (or replaces) a relation, bumping the data version.
    pub fn insert(&self, name: impl Into<String>, rows: Vec<Tuple>) {
        self.relations
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.into(), Arc::new(rows));
        self.version.fetch_add(1, Ordering::SeqCst);
    }
}

impl RelationProvider for MemProvider {
    fn relation(&self, name: &str) -> Option<Arc<Vec<Tuple>>> {
        self.relations
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    fn epoch(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }
}

/// Per-connection I/O timeout on the server side.
const SERVER_IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Bound on the server's in-process span journal (drop-oldest ring).
pub const SERVER_JOURNAL_CAP: usize = 512;

/// One served scan request in the server's span journal: its phase
/// timings (wall seconds) and, when the client propagated one, its trace
/// context.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerSpanEntry {
    /// The server's monotone request counter at this request.
    pub request_seq: u64,
    /// Requested source relation.
    pub source: String,
    /// Requested binding pattern.
    pub pattern: String,
    /// The client's trace context, when the request carried one.
    pub ctx: Option<wire::TraceContext>,
    /// Frame receive + request parse time (seconds).
    pub recv_parse: f64,
    /// Provider lookup time (seconds).
    pub lookup: f64,
    /// Row encode time (seconds).
    pub encode: f64,
    /// Total request residence time, `≥` the phase sum (seconds).
    pub total: f64,
}

/// The server's bounded in-process span journal: the last
/// [`SERVER_JOURNAL_CAP`] served scans, drop-oldest. Dumped as text over
/// the wire by [`wire::OP_TRACE`] and by `qpo-source-server --metrics`.
#[derive(Debug, Default)]
pub struct ServerJournal {
    entries: Mutex<VecDeque<ServerSpanEntry>>,
    total: AtomicU64,
}

impl ServerJournal {
    fn push(&self, entry: ServerSpanEntry) {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if entries.len() == SERVER_JOURNAL_CAP {
            entries.pop_front();
        }
        entries.push_back(entry);
        self.total.fetch_add(1, Ordering::SeqCst);
    }

    /// Spans journalled over the server's lifetime (retained or dropped).
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::SeqCst)
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> Vec<ServerSpanEntry> {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Text dump: one header line, then one line per retained span.
    pub fn render_text(&self) -> String {
        let entries = self.entries();
        let mut out = format!(
            "source-server spans: total {}, retained {} (cap {SERVER_JOURNAL_CAP})\n",
            self.total(),
            entries.len()
        );
        for e in &entries {
            let _ = write!(
                out,
                "seq={} source={} pattern={} recv={:.9} lookup={:.9} encode={:.9} total={:.9}",
                e.request_seq, e.source, e.pattern, e.recv_parse, e.lookup, e.encode, e.total
            );
            match &e.ctx {
                Some(c) => {
                    let _ = writeln!(
                        out,
                        " run={} plan={} attempt={}",
                        c.run, c.plan_seq, c.attempt
                    );
                }
                None => out.push('\n'),
            }
        }
        out
    }
}

/// A running loopback source server. Dropping it stops the accept loop.
pub struct SourceServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    requests: Arc<AtomicU64>,
    journal: Arc<ServerJournal>,
}

impl SourceServer {
    /// Binds `127.0.0.1:port` (`port` 0 picks a free one) and serves
    /// `provider` on a background thread.
    pub fn serve(provider: Arc<dyn RelationProvider>, port: u16) -> std::io::Result<SourceServer> {
        SourceServer::serve_mode(provider, port, false)
    }

    /// [`SourceServer::serve`] in *legacy* mode: requests are decoded
    /// with the strict pre-extension decoder (so trace contexts are
    /// rejected as trailing bytes, exactly like a server predating the
    /// span extension) and responses never carry span blocks. Exists for
    /// the interop differential suites.
    pub fn serve_legacy(
        provider: Arc<dyn RelationProvider>,
        port: u16,
    ) -> std::io::Result<SourceServer> {
        SourceServer::serve_mode(provider, port, true)
    }

    fn serve_mode(
        provider: Arc<dyn RelationProvider>,
        port: u16,
        legacy: bool,
    ) -> std::io::Result<SourceServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let requests = Arc::new(AtomicU64::new(0));
        let journal = Arc::new(ServerJournal::default());
        let flag = Arc::clone(&shutdown);
        let served = Arc::clone(&requests);
        let spans = Arc::clone(&journal);
        let handle = std::thread::Builder::new()
            .name("qpo-source-server".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if flag.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // Serial service keeps the server trivially
                        // correct; the executor's parallelism comes from
                        // its own worker lanes, not the source.
                        let _ =
                            handle_connection(stream, provider.as_ref(), &served, &spans, legacy);
                    }
                }
            })?;
        Ok(SourceServer {
            addr,
            shutdown,
            handle: Some(handle),
            requests,
            journal,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests answered so far.
    pub fn requests_served(&self) -> u64 {
        self.requests.load(Ordering::SeqCst)
    }

    /// The server's bounded span journal.
    pub fn journal(&self) -> &ServerJournal {
        &self.journal
    }

    /// Stops the accept loop and joins the server thread. Idempotent.
    pub fn stop(&mut self) {
        if self.handle.is_none() {
            return;
        }
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock `accept` with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for SourceServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Serves one connection: any number of request frames until the peer
/// closes, a frame is malformed, or a timeout fires. A malformed frame
/// gets a transient-error response (best effort) and the connection is
/// dropped — after garbage, frame alignment cannot be trusted.
///
/// Each scan is phase-timed — receive→parse, provider lookup, row
/// encode — and journalled; a request that carried a trace context gets
/// the span appended to its response (never in `legacy` mode, which
/// also decodes strictly, rejecting extended requests as trailing
/// bytes). A one-byte [`wire::OP_TRACE`] payload dumps the journal as a
/// raw text frame.
fn handle_connection(
    mut stream: TcpStream,
    provider: &dyn RelationProvider,
    served: &AtomicU64,
    journal: &ServerJournal,
    legacy: bool,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(SERVER_IO_TIMEOUT))?;
    stream.set_write_timeout(Some(SERVER_IO_TIMEOUT))?;
    loop {
        // The receive phase starts when the server is ready for the next
        // frame: on a fresh connection (the tracing client's shape) this
        // is transit + read + parse of the request.
        let start = Instant::now();
        let payload = match wire::read_frame(&mut stream) {
            Ok(p) => p,
            Err(_) => return Ok(()), // peer closed, timed out, or hostile length
        };
        if !legacy && payload == [wire::OP_TRACE] {
            // Journal dump: one raw UTF-8 text frame, not a Response.
            // Not counted as a served scan and not journalled itself.
            wire::write_frame(&mut stream, journal.render_text().as_bytes())?;
            stream.flush()?;
            continue;
        }
        let decoded = if legacy {
            wire::decode_request(&payload).map(|req| (req, None))
        } else {
            wire::decode_request_ext(&payload)
        };
        let (req, ctx) = match decoded {
            Ok(d) => d,
            Err(e) => {
                let resp = Response::Error(format!("malformed request: {e}"));
                if let Ok(bytes) = wire::encode_response(&resp, provider.epoch()) {
                    let _ = wire::write_frame(&mut stream, &bytes);
                }
                return Ok(());
            }
        };
        let recv_parse = start.elapsed().as_secs_f64();
        let response = respond(&req, provider);
        let lookup = start.elapsed().as_secs_f64() - recv_parse;
        served.fetch_add(1, Ordering::SeqCst);
        let request_seq = served.load(Ordering::SeqCst);
        let mut bytes = wire::encode_response(&response, provider.epoch())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let encode = start.elapsed().as_secs_f64() - recv_parse - lookup;
        // Clamp by construction: measured total can never undercut the
        // phase sum, so decoded spans always attribute soundly.
        let total = start
            .elapsed()
            .as_secs_f64()
            .max(recv_parse + lookup + encode);
        if !legacy {
            if ctx.is_some() {
                let span = wire::ServerSpan {
                    recv_parse,
                    lookup,
                    encode,
                    total,
                    request_seq,
                };
                wire::append_server_span(&mut bytes, &span).map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                })?;
            }
            journal.push(ServerSpanEntry {
                request_seq,
                source: req.source,
                pattern: req.pattern,
                ctx,
                recv_parse,
                lookup,
                encode,
                total,
            });
        }
        wire::write_frame(&mut stream, &bytes)?;
        stream.flush()?;
    }
}

/// Dials `addr` and requests the server's span journal with a one-byte
/// [`wire::OP_TRACE`] frame, returning the text dump — the client side
/// of `qpo-source-server --metrics`. Legacy servers treat the probe as a
/// malformed request, so this errors rather than hanging.
pub fn fetch_server_trace(addr: &str, timeout: Duration) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    wire::write_frame(&mut stream, &[wire::OP_TRACE])?;
    stream.flush()?;
    let payload = wire::read_frame(&mut stream)?;
    String::from_utf8(payload).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "trace dump is not UTF-8")
    })
}

/// Pure request → response mapping, split out so protocol tests can run
/// without sockets (the `qpo-obs::serve` pattern).
pub fn respond(req: &Request, provider: &dyn RelationProvider) -> Response {
    match provider.relation(&req.source) {
        Some(rows) => Response::Rows(rows.as_ref().clone()),
        None => Response::UnknownSource(format!("source `{}` not hosted here", req.source)),
    }
}

/// A remote source reached over TCP; see the module docs.
///
/// Every server response carries the provider's data epoch in its
/// header; the backend tracks the highest epoch observed (shared across
/// clones) and reports it through [`SourceBackend::epoch`], so the
/// source memo invalidates automatically when the remote data changes.
#[derive(Debug, Clone)]
pub struct TcpBackend {
    addr: String,
    io_timeout: Duration,
    latency_unit: f64,
    seen_epoch: Arc<AtomicU64>,
    trace: bool,
    /// Latched (shared across clones) when the server rejects a
    /// trace-context extension as trailing bytes — a strict legacy
    /// server. Subsequent requests go out plain.
    server_is_legacy: Arc<AtomicBool>,
}

impl TcpBackend {
    /// A backend dialing `addr` (e.g. `"127.0.0.1:7171"`) with a 2 s I/O
    /// timeout, one virtual unit per millisecond, and tracing on.
    pub fn new(addr: impl Into<String>) -> Self {
        TcpBackend {
            addr: addr.into(),
            io_timeout: Duration::from_secs(2),
            latency_unit: 1000.0,
            seen_epoch: Arc::new(AtomicU64::new(0)),
            trace: true,
            server_is_legacy: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Sets the connect/read/write timeout.
    pub fn with_io_timeout(mut self, timeout: Duration) -> Self {
        self.io_timeout = timeout;
        self
    }

    /// Sets the virtual-time units charged per wall second (default
    /// `1000.0`).
    pub fn with_latency_unit(mut self, units_per_second: f64) -> Self {
        self.latency_unit = units_per_second.max(0.0);
        self
    }

    /// Enables or disables trace-context propagation (default on).
    /// Disabled, the backend sends byte-identical legacy requests and
    /// never reports remote spans — the untraced baseline the overhead
    /// gate compares against.
    pub fn with_tracing(mut self, enabled: bool) -> Self {
        self.trace = enabled;
        self
    }

    /// The server address this backend dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether the backend has latched into legacy mode after a strict
    /// server rejected a trace context.
    pub fn server_is_legacy(&self) -> bool {
        self.server_is_legacy.load(Ordering::SeqCst)
    }

    /// One full request/response exchange on a fresh connection. Folds
    /// the response header's epoch into the high-water mark before
    /// returning, so even error responses advance the observed version.
    /// A strict legacy server rejecting `ctx` as trailing bytes latches
    /// the legacy flag and resends the request plain within the same
    /// attempt (the extra round-trip is charged to it).
    fn exchange(
        &self,
        source: &str,
        pattern: &str,
        ctx: Option<&wire::TraceContext>,
    ) -> Result<(Response, Option<wire::ServerSpan>), BackendError> {
        let addr = self
            .addr
            .to_socket_addrs()
            .map_err(|e| BackendError::from_io(&e, "resolve"))?
            .next()
            .ok_or_else(|| {
                BackendError::permanent(format!("`{}` resolves to nothing", self.addr))
            })?;
        let mut stream = TcpStream::connect_timeout(&addr, self.io_timeout)
            .map_err(|e| BackendError::from_io(&e, "connect"))?;
        stream
            .set_read_timeout(Some(self.io_timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.io_timeout)))
            .map_err(|e| BackendError::from_io(&e, "configure socket"))?;
        let request = wire::encode_request_with(
            &Request {
                source: source.to_string(),
                pattern: pattern.to_string(),
            },
            ctx,
        )
        .map_err(|e| BackendError::permanent(format!("encode request: {e}")))?;
        wire::write_frame(&mut stream, &request)
            .map_err(|e| BackendError::from_io(&e, "send request"))?;
        let payload = wire::read_frame(&mut stream)
            .map_err(|e| BackendError::from_io(&e, "read response"))?;
        let (resp, epoch, span) = wire::decode_response_ext(&payload)
            .map_err(|e| BackendError::transient(format!("malformed response: {e}")))?;
        self.seen_epoch.fetch_max(epoch, Ordering::SeqCst);
        if ctx.is_some() {
            if let Response::Error(msg) = &resp {
                if msg.contains("trailing bytes") {
                    // A strict pre-extension server: downgrade for good
                    // and redo this attempt without the context.
                    self.server_is_legacy.store(true, Ordering::SeqCst);
                    return self.exchange(source, pattern, None);
                }
            }
        }
        Ok((resp, span))
    }

    /// Maps a wire span (wall seconds) onto the virtual-time axis,
    /// re-clamping after scaling so `phase sum ≤ total` survives f64
    /// rounding, and hostile values (negatives, NaN) degrade to zeros.
    fn remote_from_wire(&self, span: &wire::ServerSpan) -> RemoteSpan {
        let unit = self.latency_unit;
        let recv_parse = (span.recv_parse * unit).max(0.0);
        let lookup = (span.lookup * unit).max(0.0);
        let encode = (span.encode * unit).max(0.0);
        let total = (span.total * unit).max(recv_parse + lookup + encode);
        RemoteSpan {
            recv_parse,
            lookup,
            encode,
            total,
            server_seq: span.request_seq,
        }
    }
}

impl SourceBackend for TcpBackend {
    fn kind(&self) -> &'static str {
        "tcp"
    }

    fn epoch(&self) -> u64 {
        self.seen_epoch.load(Ordering::SeqCst)
    }

    fn access(
        &self,
        svc: &SourceService,
        ctx: &AccessContext<'_>,
    ) -> Result<AccessReply, BackendError> {
        let trace_ctx = (self.trace && !self.server_is_legacy()).then(|| wire::TraceContext {
            run: ctx.run,
            plan_seq: ctx.plan_seq,
            source: svc.name.to_string(),
            attempt: ctx.attempt,
        });
        let start = Instant::now();
        let result = self.exchange(svc.name.as_ref(), ctx.pattern, trace_ctx.as_ref());
        let latency = start.elapsed().as_secs_f64() * self.latency_unit;
        match result {
            Ok((Response::Rows(rows), span)) => {
                let remote = span.map(|s| self.remote_from_wire(&s));
                // Final clamp of the chain `phase sum ≤ server total ≤
                // client latency`: the attempt's network residual
                // (`latency − total`) is non-negative by construction.
                let latency = match &remote {
                    Some(r) => latency.max(r.total),
                    None => latency,
                };
                Ok(AccessReply {
                    access: Access {
                        outcome: AccessOutcome::Success,
                        latency,
                    },
                    tuples: Some(Arc::new(rows)),
                    remote,
                })
            }
            Ok((Response::UnknownSource(msg), _)) => {
                Err(BackendError::permanent(msg).with_latency(latency))
            }
            Ok((Response::Error(msg), _)) => {
                Err(BackendError::transient(msg).with_latency(latency))
            }
            Err(e) => {
                let latency = latency.max(e.latency);
                Err(e.with_latency(latency))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendErrorClass;
    use crate::memo::SCAN_PATTERN;
    use crate::policy::FaultConfig;
    use crate::source::SourceGrid;
    use qpo_catalog::{Extent, ProblemInstance, SourceStats};
    use qpo_datalog::Constant;

    fn rows(items: &[i64]) -> Vec<Tuple> {
        items.iter().map(|&i| vec![Constant::Int(i)]).collect()
    }

    fn provider() -> Arc<MemProvider> {
        let p = MemProvider::new();
        p.insert("v1", rows(&[1, 2, 3]));
        p.insert(
            "w1",
            vec![vec![Constant::Str("ford".into()), Constant::Int(7)]],
        );
        Arc::new(p)
    }

    fn grid() -> SourceGrid {
        let src = |name: &str| {
            SourceStats::new()
                .with_name(name)
                .with_extent(Extent::new(0, 3))
        };
        let inst = ProblemInstance::new(
            0.0,
            vec![10],
            vec![vec![src("v1"), src("w1"), src("missing")]],
        )
        .unwrap();
        SourceGrid::from_instance(&inst)
    }

    fn ctx(faults: &FaultConfig) -> AccessContext<'_> {
        AccessContext {
            pattern: SCAN_PATTERN,
            run: 0,
            plan_seq: 0,
            attempt: 0,
            faults,
        }
    }

    #[test]
    fn respond_maps_hosted_and_unknown_sources() {
        let p = provider();
        let req = |source: &str| Request {
            source: source.into(),
            pattern: "scan".into(),
        };
        assert_eq!(
            respond(&req("v1"), p.as_ref()),
            Response::Rows(rows(&[1, 2, 3]))
        );
        assert!(matches!(
            respond(&req("nope"), p.as_ref()),
            Response::UnknownSource(_)
        ));
    }

    #[test]
    fn tcp_backend_round_trips_through_a_live_server() {
        let mut server = SourceServer::serve(provider(), 0).unwrap();
        let backend = TcpBackend::new(server.addr().to_string());
        let grid = grid();
        let faults = FaultConfig::disabled();
        let reply = backend.access(grid.service(0, 0), &ctx(&faults)).unwrap();
        assert_eq!(reply.access.outcome, AccessOutcome::Success);
        assert!(reply.access.latency >= 0.0);
        assert_eq!(reply.tuples.unwrap().as_ref(), &rows(&[1, 2, 3]));
        // Unknown source → permanent, with the server's message.
        let err = backend
            .access(grid.service(0, 2), &ctx(&faults))
            .unwrap_err();
        assert_eq!(err.class, BackendErrorClass::Permanent);
        assert!(err.message.contains("missing"));
        assert!(server.requests_served() >= 2);
        server.stop();
    }

    #[test]
    fn dead_server_is_a_transient_failure() {
        // Bind-then-drop guarantees a port nobody is listening on.
        let port = {
            let l = TcpListener::bind(("127.0.0.1", 0)).unwrap();
            l.local_addr().unwrap().port()
        };
        let backend = TcpBackend::new(format!("127.0.0.1:{port}"))
            .with_io_timeout(Duration::from_millis(200));
        let grid = grid();
        let faults = FaultConfig::disabled();
        let err = backend
            .access(grid.service(0, 0), &ctx(&faults))
            .unwrap_err();
        assert_eq!(err.class, BackendErrorClass::Transient, "{}", err.message);
        assert!(err.latency >= 0.0);
    }

    #[test]
    fn garbage_and_truncated_frames_do_not_kill_the_server() {
        let mut server = SourceServer::serve(provider(), 0).unwrap();
        let addr = server.addr();
        // Raw garbage: a framed payload that is not a valid request.
        {
            let mut s = TcpStream::connect(addr).unwrap();
            wire::write_frame(&mut s, &[0xde, 0xad, 0xbe, 0xef]).unwrap();
            let reply = wire::read_frame(&mut s).unwrap();
            match wire::decode_response(&reply).unwrap().0 {
                Response::Error(msg) => assert!(msg.contains("malformed")),
                other => panic!("expected transient error, got {other:?}"),
            }
        }
        // A truncated frame (length prefix, missing payload) then hangup.
        {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&100u32.to_be_bytes()).unwrap();
            s.write_all(&[1, 2, 3]).unwrap();
        }
        // A hostile length prefix.
        {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&u32::MAX.to_be_bytes()).unwrap();
        }
        // The server is still alive and serving correct requests.
        let backend = TcpBackend::new(addr.to_string());
        let grid = grid();
        let faults = FaultConfig::disabled();
        let reply = backend.access(grid.service(0, 1), &ctx(&faults)).unwrap();
        assert_eq!(reply.tuples.unwrap().len(), 1);
        server.stop();
    }

    #[test]
    fn multiple_requests_reuse_one_connection() {
        let mut server = SourceServer::serve(provider(), 0).unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        for _ in 0..3 {
            let req = wire::encode_request(&Request {
                source: "v1".into(),
                pattern: "scan".into(),
            })
            .unwrap();
            wire::write_frame(&mut s, &req).unwrap();
            let reply = wire::read_frame(&mut s).unwrap();
            let (resp, epoch) = wire::decode_response(&reply).unwrap();
            assert_eq!(resp, Response::Rows(rows(&[1, 2, 3])));
            assert_eq!(epoch, 2, "two fixture inserts");
        }
        drop(s);
        server.stop();
        assert_eq!(server.requests_served(), 3);
    }

    #[test]
    fn epoch_rides_the_wire_and_advances_the_backend() {
        let p = provider(); // two fixture inserts → server epoch 2
        let mut server = SourceServer::serve(p.clone(), 0).unwrap();
        let backend = TcpBackend::new(server.addr().to_string());
        let grid = grid();
        let faults = FaultConfig::disabled();
        assert_eq!(backend.epoch(), 0, "no response observed yet");
        backend.access(grid.service(0, 0), &ctx(&faults)).unwrap();
        assert_eq!(backend.epoch(), 2);
        // A remote data change is visible after the next exchange — even
        // through a clone (the high-water mark is shared) and even when
        // the exchange itself fails (UNKNOWN_SOURCE carries the epoch).
        p.insert("v1", rows(&[9]));
        let clone = backend.clone();
        let _ = clone.access(grid.service(0, 2), &ctx(&faults));
        assert_eq!(backend.epoch(), 3);
        server.stop();
    }

    #[test]
    fn stop_is_idempotent_and_drop_safe() {
        let mut server = SourceServer::serve(provider(), 0).unwrap();
        server.stop();
        server.stop();
        drop(server); // Drop after stop must not hang.
    }

    #[test]
    fn traced_access_carries_a_sound_remote_span() {
        let mut server = SourceServer::serve(provider(), 0).unwrap();
        let backend = TcpBackend::new(server.addr().to_string());
        let grid = grid();
        let faults = FaultConfig::disabled();
        let reply = backend.access(grid.service(0, 0), &ctx(&faults)).unwrap();
        let remote = reply.remote.expect("traced tcp access reports a span");
        let phases = remote.recv_parse + remote.lookup + remote.encode;
        assert!(phases <= remote.total, "{remote:?}");
        assert!(remote.total <= reply.access.latency, "{remote:?}");
        assert!(remote.server_seq >= 1);
        assert!(!backend.server_is_legacy());
        // The server journalled the span with its trace context.
        let entries = server.journal().entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].source, "v1");
        assert_eq!(entries[0].ctx.as_ref().map(|c| c.attempt), Some(0));
        server.stop();
    }

    #[test]
    fn untraced_client_gets_no_span_and_the_server_journals_anyway() {
        let mut server = SourceServer::serve(provider(), 0).unwrap();
        let backend = TcpBackend::new(server.addr().to_string()).with_tracing(false);
        let grid = grid();
        let faults = FaultConfig::disabled();
        let reply = backend.access(grid.service(0, 0), &ctx(&faults)).unwrap();
        assert!(reply.remote.is_none());
        let entries = server.journal().entries();
        assert_eq!(entries.len(), 1);
        assert!(entries[0].ctx.is_none());
        server.stop();
    }

    #[test]
    fn legacy_server_downgrades_the_client_within_one_attempt() {
        let mut server = SourceServer::serve_legacy(provider(), 0).unwrap();
        let backend = TcpBackend::new(server.addr().to_string());
        let grid = grid();
        let faults = FaultConfig::disabled();
        // First traced attempt: the strict server rejects the extension,
        // the client latches legacy and resends plain — the attempt
        // still succeeds, with no remote span.
        let reply = backend.access(grid.service(0, 0), &ctx(&faults)).unwrap();
        assert_eq!(reply.access.outcome, AccessOutcome::Success);
        assert!(reply.remote.is_none());
        assert!(backend.server_is_legacy());
        // Clones share the latch: subsequent requests go out plain from
        // the start (one request frame each, no rejected preamble).
        let before = server.requests_served();
        let reply = backend
            .clone()
            .access(grid.service(0, 1), &ctx(&faults))
            .unwrap();
        assert!(reply.remote.is_none());
        assert_eq!(server.requests_served(), before + 1);
        server.stop();
    }

    #[test]
    fn op_trace_dumps_the_server_journal_over_the_wire() {
        let mut server = SourceServer::serve(provider(), 0).unwrap();
        let backend = TcpBackend::new(server.addr().to_string());
        let grid = grid();
        let faults = FaultConfig::disabled();
        backend.access(grid.service(0, 0), &ctx(&faults)).unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        wire::write_frame(&mut s, &[wire::OP_TRACE]).unwrap();
        let frame = wire::read_frame(&mut s).unwrap();
        let text = String::from_utf8(frame).expect("journal dump is UTF-8");
        assert_eq!(text, server.journal().render_text());
        assert!(text.starts_with("source-server spans: total 1"), "{text}");
        assert!(text.contains("source=v1"), "{text}");
        assert!(text.contains("run=0 plan=0 attempt=0"), "{text}");
        // The dump is not a scan: the served counter is untouched.
        assert_eq!(server.requests_served(), 1);
        server.stop();
    }

    #[test]
    fn server_journal_drops_oldest_beyond_the_cap() {
        let journal = ServerJournal::default();
        for i in 0..SERVER_JOURNAL_CAP as u64 + 3 {
            journal.push(ServerSpanEntry {
                request_seq: i + 1,
                source: "v1".into(),
                pattern: "scan".into(),
                ctx: None,
                recv_parse: 0.0,
                lookup: 0.0,
                encode: 0.0,
                total: 0.0,
            });
        }
        let entries = journal.entries();
        assert_eq!(entries.len(), SERVER_JOURNAL_CAP);
        assert_eq!(entries[0].request_seq, 4, "oldest three dropped");
        assert_eq!(journal.total(), SERVER_JOURNAL_CAP as u64 + 3);
        let text = journal.render_text();
        assert!(
            text.starts_with(&format!(
                "source-server spans: total {}, retained {SERVER_JOURNAL_CAP}",
                SERVER_JOURNAL_CAP + 3
            )),
            "{text}"
        );
    }
}
