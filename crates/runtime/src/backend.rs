//! Pluggable source backends: the boundary between the wave executor and
//! the worlds it can run against.
//!
//! The paper's mediator assumes autonomous remote sources with real
//! latency and real failure. Historically every access in this repo
//! bottomed out in [`SourceService::simulate_access`] — a pure hash roll.
//! The [`SourceBackend`] trait factors that assumption out: the executor
//! dispatches every source access through a backend, and the backend
//! decides what an access *is*:
//!
//! - [`SimBackend`] — the original deterministic simulator, bit-for-bit.
//!   The default everywhere; all determinism and differential suites run
//!   against it unchanged.
//! - [`crate::store::StoreBackend`] — an in-process persistent indexed
//!   store (append-only log segments + an in-memory index rebuilt on
//!   open), so sources survive process restarts.
//! - [`crate::net::TcpBackend`] — an out-of-process source reached over a
//!   length-prefixed wire protocol ([`crate::wire`]), with genuine network
//!   latency, timeouts, and connection failures.
//!
//! ## The contract
//!
//! [`SourceBackend::access`] performs one access *attempt* and is fallible
//! in two layered ways. The `Ok` path returns an [`AccessReply`] whose
//! [`Access`] may still report a simulated/observed failure outcome — that
//! is the simulator's native vocabulary, preserved exactly. The `Err` path
//! returns a typed [`BackendError`] for infrastructure failures (I/O,
//! protocol violations, missing relations) with an explicit
//! transient-vs-permanent classification, so the executor's existing
//! retry/backoff machinery handles a refused TCP connection with the same
//! discipline it applies to a simulated transient fault.
//!
//! Latencies are in *virtual time units* (the unit the catalog's cost
//! model speaks). Real backends measure wall time and map it onto that
//! axis via their `latency_unit` (units per wall second); the simulator
//! draws latencies directly. Either way the journal clock advances by the
//! reported latency, so traces from real backends are structurally
//! identical to simulated ones — only the timestamps stop being replayable.
//!
//! ## Epochs
//!
//! [`SourceBackend::epoch`] is a monotone counter that changes whenever
//! the backend's *data* may have changed (e.g. a store compaction or a
//! write). The [`crate::memo::SourceMemo`] records the epoch it observed;
//! a changed epoch invalidates cached terminal outcomes, so cross-plan
//! reuse never serves answers from a world that no longer exists. The
//! simulator is pure, so its epoch is constant `0`.

use crate::policy::FaultConfig;
use crate::source::{Access, SourceService};
use qpo_datalog::Tuple;
use std::fmt;
use std::sync::Arc;

/// Whether a backend failure is worth retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendErrorClass {
    /// The failure may heal: connection refused/reset, timeout, torn
    /// frame. The executor retries with backoff, exactly as it does for
    /// simulated transient faults.
    Transient,
    /// The failure is structural: unknown source, permission denied,
    /// malformed store. Retrying is pointless; the plan fails fast and
    /// the outcome is memoizable.
    Permanent,
}

impl BackendErrorClass {
    /// The journal/metric label for this class.
    pub fn label(self) -> &'static str {
        match self {
            BackendErrorClass::Transient => "transient",
            BackendErrorClass::Permanent => "permanent",
        }
    }
}

/// A typed infrastructure failure from a source backend, carrying its
/// retry classification and the virtual latency already paid discovering
/// it (e.g. the wall time a connect spent before being refused).
#[derive(Debug, Clone, PartialEq)]
pub struct BackendError {
    /// Retry classification.
    pub class: BackendErrorClass,
    /// Human-readable description, journalled alongside the class.
    pub message: String,
    /// Virtual time spent discovering the failure (charged to the plan).
    pub latency: f64,
}

impl BackendError {
    /// A retryable failure.
    pub fn transient(message: impl Into<String>) -> Self {
        BackendError {
            class: BackendErrorClass::Transient,
            message: message.into(),
            latency: 0.0,
        }
    }

    /// A terminal failure.
    pub fn permanent(message: impl Into<String>) -> Self {
        BackendError {
            class: BackendErrorClass::Permanent,
            message: message.into(),
            latency: 0.0,
        }
    }

    /// Attaches the virtual latency paid discovering the failure.
    pub fn with_latency(mut self, latency: f64) -> Self {
        self.latency = latency.max(0.0);
        self
    }

    /// Classifies an I/O error. Connection-level and timing failures are
    /// transient (the server may come back); structural failures —
    /// missing files, permissions, corrupt data — are permanent.
    pub fn from_io(err: &std::io::Error, context: &str) -> Self {
        use std::io::ErrorKind;
        let class = match err.kind() {
            ErrorKind::NotFound
            | ErrorKind::PermissionDenied
            | ErrorKind::InvalidInput
            | ErrorKind::InvalidData
            | ErrorKind::Unsupported => BackendErrorClass::Permanent,
            // Refused/reset/aborted/timeout/EOF and everything else:
            // retry — autonomous sources flap.
            _ => BackendErrorClass::Transient,
        };
        BackendError {
            class,
            message: format!("{context}: {err}"),
            latency: 0.0,
        }
    }
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} backend failure: {}",
            self.class.label(),
            self.message
        )
    }
}

impl std::error::Error for BackendError {}

/// Per-attempt context the executor hands to the backend: the binding
/// pattern being served, the deterministic coordinates of the attempt,
/// and the fault configuration (which only [`SimBackend`] consults).
#[derive(Debug, Clone, Copy)]
pub struct AccessContext<'a> {
    /// Binding pattern of the access (today always
    /// [`crate::memo::SCAN_PATTERN`]).
    pub pattern: &'a str,
    /// Process-local identifier of the run performing the access.
    /// Propagated to tracing backends (the TCP backend's wire trace
    /// context) so a server's journal can tell concurrent runs apart; it
    /// is never journalled client-side, so traces stay deterministic.
    pub run: u64,
    /// Emission sequence number of the plan performing the access.
    pub plan_seq: u64,
    /// Zero-based attempt number within the retry loop.
    pub attempt: u32,
    /// The run's fault configuration. Real backends ignore it — their
    /// faults are real.
    pub faults: &'a FaultConfig,
}

/// Server-side timing of one remote access, decoded from the wire's
/// span-block extension and mapped onto the client's virtual-time axis
/// (the backend's `latency_unit` scaling, same as the client latency).
/// By construction `recv_parse + lookup + encode ≤ total ≤` the attempt's
/// charged client latency, so `client latency − total` is a non-negative
/// network residual.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemoteSpan {
    /// Server frame receive + request parse time (virtual units).
    pub recv_parse: f64,
    /// Server provider lookup time (virtual units).
    pub lookup: f64,
    /// Server row encode time (virtual units).
    pub encode: f64,
    /// Total server residence time, `≥` the phase sum (virtual units).
    pub total: f64,
    /// The server's monotone request counter at this request.
    pub server_seq: u64,
}

/// What one backend access attempt produced: the access record (outcome +
/// virtual latency) and, for backends that actually hold data, the
/// relation's tuples. `None` tuples means "evaluate against whatever data
/// the evaluator already has" — the simulator's contract, where the
/// static database is the world.
#[derive(Debug, Clone)]
pub struct AccessReply {
    /// Outcome and charged virtual latency of the attempt.
    pub access: Access,
    /// The source relation's tuples, when the backend serves data.
    pub tuples: Option<Arc<Vec<Tuple>>>,
    /// Server-side span of the attempt, when the backend speaks the wire
    /// protocol's span-block extension (only [`crate::net::TcpBackend`]
    /// today). `None` degrades to single-span client-side attribution.
    pub remote: Option<RemoteSpan>,
}

/// A world the executor can run plans against. Implementations must be
/// cheap to call from worker threads and internally synchronized.
pub trait SourceBackend: Send + Sync {
    /// Short label for journal/metric dimensions (`"sim"`, `"store"`,
    /// `"tcp"`).
    fn kind(&self) -> &'static str;

    /// Monotone data-version counter; see the module docs. Constant for
    /// pure backends.
    fn epoch(&self) -> u64 {
        0
    }

    /// Performs one access attempt against `svc`. `Ok` carries the
    /// attempt's outcome (which may itself be a simulated failure); `Err`
    /// is an infrastructure failure with an explicit retry class.
    fn access(
        &self,
        svc: &SourceService,
        ctx: &AccessContext<'_>,
    ) -> Result<AccessReply, BackendError>;
}

/// The deterministic simulator as a backend: delegates straight to
/// [`SourceService::simulate_access`], preserving the seeded rolls
/// bit-for-bit. Never returns `Err` and never serves tuples — the
/// evaluator's static database is the simulated world's data.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimBackend;

impl SourceBackend for SimBackend {
    fn kind(&self) -> &'static str {
        "sim"
    }

    fn access(
        &self,
        svc: &SourceService,
        ctx: &AccessContext<'_>,
    ) -> Result<AccessReply, BackendError> {
        Ok(AccessReply {
            access: svc.simulate_access(ctx.faults, ctx.plan_seq, ctx.attempt),
            tuples: None,
            remote: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memo::SCAN_PATTERN;
    use crate::source::SourceGrid;
    use qpo_catalog::{Extent, ProblemInstance, SourceStats};

    fn grid() -> SourceGrid {
        let inst = ProblemInstance::new(
            0.0,
            vec![100],
            vec![vec![SourceStats::new()
                .with_name("v1")
                .with_extent(Extent::new(0, 10))
                .with_access_cost(2.0)
                .with_failure_prob(0.4)]],
        )
        .unwrap();
        SourceGrid::from_instance(&inst)
    }

    #[test]
    fn sim_backend_reproduces_simulate_access_bit_for_bit() {
        let grid = grid();
        let svc = grid.service(0, 0);
        let faults = FaultConfig::with_seed(42);
        for plan_seq in 0..50 {
            for attempt in 0..4 {
                let ctx = AccessContext {
                    pattern: SCAN_PATTERN,
                    run: 0,
                    plan_seq,
                    attempt,
                    faults: &faults,
                };
                let reply = SimBackend.access(svc, &ctx).expect("sim never errors");
                assert_eq!(
                    reply.access,
                    svc.simulate_access(&faults, plan_seq, attempt)
                );
                assert!(reply.tuples.is_none());
            }
        }
        assert_eq!(SimBackend.kind(), "sim");
        assert_eq!(SimBackend.epoch(), 0);
    }

    #[test]
    fn io_errors_classify_by_kind() {
        use std::io::{Error, ErrorKind};
        let transient = [
            ErrorKind::ConnectionRefused,
            ErrorKind::ConnectionReset,
            ErrorKind::TimedOut,
            ErrorKind::UnexpectedEof,
            ErrorKind::BrokenPipe,
        ];
        for kind in transient {
            let e = BackendError::from_io(&Error::new(kind, "boom"), "connect");
            assert_eq!(e.class, BackendErrorClass::Transient, "{kind:?}");
            assert!(e.message.contains("connect"));
        }
        let permanent = [
            ErrorKind::NotFound,
            ErrorKind::PermissionDenied,
            ErrorKind::InvalidData,
        ];
        for kind in permanent {
            let e = BackendError::from_io(&Error::new(kind, "boom"), "open");
            assert_eq!(e.class, BackendErrorClass::Permanent, "{kind:?}");
        }
    }

    #[test]
    fn error_constructors_carry_class_and_latency() {
        let e = BackendError::transient("flaky").with_latency(3.5);
        assert_eq!(e.class, BackendErrorClass::Transient);
        assert_eq!(e.latency, 3.5);
        assert_eq!(e.class.label(), "transient");
        let e = BackendError::permanent("gone");
        assert_eq!(e.class.label(), "permanent");
        assert!(e.to_string().contains("permanent backend failure"));
        // Negative latencies are clamped: a plan can never be refunded.
        assert_eq!(BackendError::transient("x").with_latency(-1.0).latency, 0.0);
    }
}
