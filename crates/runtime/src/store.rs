//! [`StoreBackend`]: an in-process persistent indexed source store.
//!
//! Sources live in a directory of append-only log segments
//! (`segment-NNNNNN.log`). Each record is one wire-framed
//! [`crate::wire::encode_relation`] payload — a full snapshot of one
//! relation. On open the segments are replayed in order and the *latest*
//! record per relation wins, rebuilding the in-memory index; a torn tail
//! frame (crash mid-append) is detected and the segment is truncated back
//! to the last whole record, so recovery is last-good-record *and*
//! records appended after the reopen land at a frame-aligned offset,
//! keeping them reachable on every later replay. [`StoreBackend::flush`]
//! fsyncs the active segment, making everything before it durable.
//!
//! Accesses are served from the in-memory index and charged the *measured*
//! wall time of the lookup, mapped onto the virtual-time axis via
//! `latency_unit` (units per wall second, default `1000.0`, i.e. one unit
//! per millisecond). A relation the store does not hold is a permanent
//! [`BackendError`] — the mediator's catalog said the source exists, the
//! world disagrees, and retrying will not change that.
//!
//! The [`SourceBackend::epoch`] is the total number of records ever
//! appended (persisted implicitly as "records replayed on open" plus
//! appends since), so any write — including one made by a previous
//! process incarnation — moves the epoch and invalidates memoized
//! outcomes that predate it.

use crate::backend::{AccessContext, AccessReply, BackendError, SourceBackend};
use crate::source::{Access, AccessOutcome, SourceService};
use crate::wire;
use qpo_datalog::Tuple;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Active segment rotation threshold: appends past this many bytes open a
/// fresh segment, keeping individual files bounded and replayable.
const SEGMENT_ROTATE_BYTES: u64 = 4 * 1024 * 1024;

struct StoreInner {
    index: BTreeMap<String, Arc<Vec<Tuple>>>,
    log: BufWriter<File>,
    log_bytes: u64,
    segment: u64,
}

/// Persistent indexed source store; see the module docs.
pub struct StoreBackend {
    dir: PathBuf,
    latency_unit: f64,
    inner: Mutex<StoreInner>,
    /// Total records ever appended (replayed + live). Monotone across
    /// reopen, so it doubles as the backend epoch.
    records: AtomicU64,
}

impl std::fmt::Debug for StoreBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreBackend")
            .field("dir", &self.dir)
            .field("records", &self.records.load(Ordering::Relaxed))
            .finish()
    }
}

fn segment_path(dir: &Path, segment: u64) -> PathBuf {
    dir.join(format!("segment-{segment:06}.log"))
}

/// Replays one segment file into the index, stopping (without error) at a
/// torn tail frame. Returns the number of whole records applied and the
/// byte offset just past the last whole record — the offset the segment
/// must be truncated to before it can take further appends.
fn replay_segment(
    path: &Path,
    index: &mut BTreeMap<String, Arc<Vec<Tuple>>>,
) -> std::io::Result<(u64, u64)> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut applied = 0u64;
    let mut good_bytes = 0u64;
    loop {
        let payload = match wire::read_frame(&mut reader) {
            Ok(p) => p,
            // Torn tail (crash mid-append) or clean end: stop replaying.
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        };
        let (name, rows) = match wire::decode_relation(&payload) {
            Ok(rec) => rec,
            // A framed-but-garbled record: treat like a torn tail. Every
            // record before it already applied; nothing after it can be
            // trusted to align.
            Err(_) => break,
        };
        index.insert(name, Arc::new(rows));
        applied += 1;
        good_bytes += 4 + payload.len() as u64;
    }
    Ok((applied, good_bytes))
}

impl StoreBackend {
    /// Opens (or creates) a store at `dir`, replaying all segments to
    /// rebuild the index.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut segments: Vec<(u64, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name
                .strip_prefix("segment-")
                .and_then(|s| s.strip_suffix(".log"))
            {
                if let Ok(n) = num.parse::<u64>() {
                    segments.push((n, entry.path()));
                }
            }
        }
        segments.sort();
        let mut index = BTreeMap::new();
        let mut replayed = 0u64;
        for (_, path) in &segments {
            let (applied, good_bytes) = replay_segment(path, &mut index)?;
            replayed += applied;
            // A torn or garbled tail (crash mid-append) leaves garbage
            // bytes past the last whole record. Appending after them
            // would make every later record unreachable on the next
            // replay (the stale length prefix misaligns the frame
            // stream), so cut the segment back to the last whole record
            // before it can take appends again.
            if std::fs::metadata(path)?.len() > good_bytes {
                let tail = OpenOptions::new().write(true).open(path)?;
                tail.set_len(good_bytes)?;
                tail.sync_all()?;
            }
        }
        let segment = segments.last().map_or(0, |(n, _)| *n);
        let mut log_file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&dir, segment))?;
        let log_bytes = log_file.seek(SeekFrom::End(0))?;
        Ok(StoreBackend {
            dir,
            latency_unit: 1000.0,
            inner: Mutex::new(StoreInner {
                index,
                log: BufWriter::new(log_file),
                log_bytes,
                segment,
            }),
            records: AtomicU64::new(replayed),
        })
    }

    /// Sets the virtual-time units charged per wall second (default
    /// `1000.0`: one unit per millisecond).
    pub fn with_latency_unit(mut self, units_per_second: f64) -> Self {
        self.latency_unit = units_per_second.max(0.0);
        self
    }

    /// Appends a full snapshot of `name` and updates the index. The write
    /// is buffered; call [`StoreBackend::flush`] to make it durable.
    pub fn put_relation(&self, name: &str, rows: &[Tuple]) -> std::io::Result<()> {
        let payload = wire::encode_relation(name, rows)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let mut inner = self.lock();
        if inner.log_bytes >= SEGMENT_ROTATE_BYTES {
            inner.log.flush()?;
            let segment = inner.segment + 1;
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(segment_path(&self.dir, segment))?;
            inner.log = BufWriter::new(file);
            inner.log_bytes = 0;
            inner.segment = segment;
        }
        wire::write_frame(&mut inner.log, &payload)?;
        inner.log_bytes += 4 + payload.len() as u64;
        inner
            .index
            .insert(name.to_string(), Arc::new(rows.to_vec()));
        self.records.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Flushes and fsyncs the active segment: everything appended so far
    /// survives a crash.
    pub fn flush(&self) -> std::io::Result<()> {
        let mut inner = self.lock();
        inner.log.flush()?;
        inner.log.get_ref().sync_all()
    }

    /// The current tuples of `name`, if the store holds it.
    pub fn relation(&self, name: &str) -> Option<Arc<Vec<Tuple>>> {
        self.lock().index.get(name).cloned()
    }

    /// Names of all relations held, sorted.
    pub fn relation_names(&self) -> Vec<String> {
        self.lock().index.keys().cloned().collect()
    }

    /// Number of relations held.
    pub fn len(&self) -> usize {
        self.lock().index.len()
    }

    /// Whether the store holds no relations.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total records ever appended (equals [`SourceBackend::epoch`]).
    pub fn records(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn lock(&self) -> MutexGuard<'_, StoreInner> {
        // Poison recovery: a panicking reader leaves the index intact.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl SourceBackend for StoreBackend {
    fn kind(&self) -> &'static str {
        "store"
    }

    fn epoch(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    fn access(
        &self,
        svc: &SourceService,
        _ctx: &AccessContext<'_>,
    ) -> Result<AccessReply, BackendError> {
        let start = Instant::now();
        let rows = self.relation(svc.name.as_ref());
        let latency = start.elapsed().as_secs_f64() * self.latency_unit;
        match rows {
            Some(tuples) => Ok(AccessReply {
                access: Access {
                    outcome: AccessOutcome::Success,
                    latency,
                },
                tuples: Some(tuples),
                remote: None,
            }),
            None => Err(BackendError::permanent(format!(
                "source `{}` not in store {}",
                svc.name,
                self.dir.display()
            ))
            .with_latency(latency)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendErrorClass;
    use crate::memo::SCAN_PATTERN;
    use crate::policy::FaultConfig;
    use crate::source::SourceGrid;
    use qpo_catalog::{Extent, ProblemInstance, SourceStats};
    use qpo_datalog::Constant;
    use std::sync::atomic::AtomicUsize;

    /// A unique scratch directory per test invocation; no external
    /// tempdir crate in the offline build.
    fn scratch(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("qpo-store-test-{}-{tag}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn rows(items: &[i64]) -> Vec<Tuple> {
        items.iter().map(|&i| vec![Constant::Int(i)]).collect()
    }

    #[test]
    fn put_then_get_round_trips() {
        let dir = scratch("roundtrip");
        let store = StoreBackend::open(&dir).unwrap();
        assert!(store.is_empty());
        store.put_relation("v1", &rows(&[1, 2, 3])).unwrap();
        store.put_relation("v2", &rows(&[4])).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.relation("v1").unwrap().as_ref(), &rows(&[1, 2, 3]));
        assert_eq!(store.relation_names(), vec!["v1", "v2"]);
        assert!(store.relation("v9").is_none());
        assert_eq!(store.records(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn data_survives_close_and_reopen() {
        let dir = scratch("reopen");
        {
            let store = StoreBackend::open(&dir).unwrap();
            store.put_relation("v1", &rows(&[1, 2])).unwrap();
            store.put_relation("v1", &rows(&[1, 2, 9])).unwrap(); // later record wins
            store.put_relation("w1", &rows(&[7])).unwrap();
            store.flush().unwrap();
        }
        let store = StoreBackend::open(&dir).unwrap();
        assert_eq!(store.relation("v1").unwrap().as_ref(), &rows(&[1, 2, 9]));
        assert_eq!(store.relation("w1").unwrap().as_ref(), &rows(&[7]));
        assert_eq!(store.records(), 3, "epoch is monotone across reopen");
        // Appends after reopen keep moving the epoch forward.
        store.put_relation("w1", &rows(&[8])).unwrap();
        assert_eq!(store.epoch(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_frame_recovers_to_last_good_record() {
        let dir = scratch("torn");
        {
            let store = StoreBackend::open(&dir).unwrap();
            store.put_relation("v1", &rows(&[1])).unwrap();
            store.put_relation("v2", &rows(&[2])).unwrap();
            store.flush().unwrap();
        }
        // Simulate a crash mid-append: a length prefix with half a payload.
        let path = segment_path(&dir, 0);
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(&100u32.to_be_bytes()).unwrap();
        file.write_all(&[1, 2, 3]).unwrap();
        drop(file);
        let store = StoreBackend::open(&dir).unwrap();
        assert_eq!(store.len(), 2, "whole records before the tear survive");
        assert_eq!(store.relation("v2").unwrap().as_ref(), &rows(&[2]));
        // The tear was truncated away, so records appended after the
        // crash-recovery reopen are frame-aligned and survive the *next*
        // replay — acknowledged writes never become unreachable.
        store.put_relation("v3", &rows(&[9])).unwrap();
        store.flush().unwrap();
        drop(store);
        let store = StoreBackend::open(&dir).unwrap();
        assert_eq!(store.len(), 3);
        assert_eq!(
            store.relation("v3").unwrap().as_ref(),
            &rows(&[9]),
            "post-recovery appends replay"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn access_serves_tuples_and_classifies_misses_as_permanent() {
        let dir = scratch("access");
        let store = StoreBackend::open(&dir).unwrap();
        store.put_relation("v1", &rows(&[1, 2])).unwrap();
        let inst = ProblemInstance::new(
            0.0,
            vec![10],
            vec![vec![
                SourceStats::new()
                    .with_name("v1")
                    .with_extent(Extent::new(0, 2)),
                SourceStats::new()
                    .with_name("vX")
                    .with_extent(Extent::new(0, 2)),
            ]],
        )
        .unwrap();
        let grid = SourceGrid::from_instance(&inst);
        let faults = FaultConfig::disabled();
        let ctx = AccessContext {
            pattern: SCAN_PATTERN,
            run: 0,
            plan_seq: 0,
            attempt: 0,
            faults: &faults,
        };
        let reply = store.access(grid.service(0, 0), &ctx).unwrap();
        assert_eq!(reply.access.outcome, AccessOutcome::Success);
        assert!(reply.access.latency >= 0.0);
        assert_eq!(reply.tuples.unwrap().as_ref(), &rows(&[1, 2]));
        let err = store.access(grid.service(0, 1), &ctx).unwrap_err();
        assert_eq!(err.class, BackendErrorClass::Permanent);
        assert!(err.message.contains("vX"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_rotate_and_replay_in_order() {
        let dir = scratch("rotate");
        {
            let store = StoreBackend::open(&dir).unwrap();
            // Big rows force rotation past the 4 MiB threshold.
            let big: Vec<Tuple> = (0..2000)
                .map(|i| vec![Constant::Str(format!("row-{i}-{}", "x".repeat(500)).into())])
                .collect();
            for round in 0..6 {
                store.put_relation("big", &big).unwrap();
                store.put_relation("tick", &rows(&[round])).unwrap();
            }
            store.flush().unwrap();
            let segments = std::fs::read_dir(&dir).unwrap().count();
            assert!(segments > 1, "rotation produced {segments} segment(s)");
        }
        let store = StoreBackend::open(&dir).unwrap();
        assert_eq!(
            store.relation("tick").unwrap().as_ref(),
            &rows(&[5]),
            "latest record wins across segments"
        );
        assert_eq!(store.records(), 12);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
