//! Session-scoped source-access memo: cross-plan reuse of resolved
//! access outcomes.
//!
//! The paper's failure+cache utility measure already *believes* repeated
//! accesses are near-free (§cache measure); this module makes that true
//! at the physical layer. A [`SourceMemo`] caches the *terminal* outcome
//! of each source access — success, or permanent failure — keyed on
//! `(bucket, source index, binding pattern)`. When a later plan touches
//! the same source, the wave executor serves the access from the memo
//! without re-paying latency, retries, backoff, or fees.
//!
//! ## What is (and is not) memoized
//!
//! Only *terminal* outcomes are cached:
//!
//! - **Success** — the source answered; later plans reuse it for free.
//! - **Permanent failure** — the source is down; later plans fail the
//!   access instantly instead of re-discovering the outage.
//!
//! A retries-exhausted *transient* failure is deliberately never cached:
//! the catalog says such a source should be retried, and a memoized
//! transient failure would mask plans that could have succeeded. Later
//! plans through that source roll fresh attempts.
//!
//! ## Epoch invalidation
//!
//! The memo carries an epoch counter mirroring the feedback discipline of
//! `ExecutionContext` (qpo-core), whose epoch bumps whenever observed
//! outcomes retract assumed state. When a plan fails from *live* (non-
//! memoized) accesses the executor calls [`SourceMemo::invalidate`]: the
//! epoch bumps and every cached entry from older epochs is dropped, so
//! post-failure plans re-verify sources instead of trusting stale
//! successes. Outcomes of the failing plan itself are stored *after* the
//! bump, which is why a permanently-down source costs exactly one real
//! access per epoch. Plans that fail purely from memoized outcomes do not
//! bump the epoch — nothing new was observed.
//!
//! ## Determinism
//!
//! All lookups and stores happen on the executor's coordinator thread at
//! fixed points of the wave loop (lookup at dispatch, store at merge, in
//! emission order), so hit/miss counts, journal events, and replayed
//! outcomes are pure functions of `(seed, sources, plan order)` —
//! byte-identical traces under any worker count.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// The binding pattern of a full extension scan — the only access mode
/// the wave executor performs today. The key slot exists so bound-access
/// memoization (per the paper's binding-pattern source descriptions) can
/// share the same memo.
pub const SCAN_PATTERN: &str = "scan";

/// A terminal access outcome worth remembering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoOutcome {
    /// The access succeeded; repeats are free.
    Success,
    /// The source is permanently down; repeats fail instantly.
    PermanentFailure,
}

/// A memo lookup that hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoHit {
    /// The cached terminal outcome.
    pub outcome: MemoOutcome,
    /// True when the entry was stored by an *earlier* run sharing this
    /// memo (a warm session). Journal consumers use this to distinguish
    /// hits that cannot be paired with a `memo_store` in the same trace
    /// run.
    pub warm: bool,
}

#[derive(Debug)]
struct MemoEntry {
    outcome: MemoOutcome,
    epoch: u64,
    run_token: u64,
    /// Backend data version this outcome was observed under; see
    /// [`SourceMemo::sync_backend_epoch`].
    backend_epoch: u64,
}

#[derive(Debug, Default)]
struct MemoInner {
    entries: BTreeMap<(usize, usize, Arc<str>), MemoEntry>,
    epoch: u64,
    run_token: u64,
    backend_epoch: u64,
    hits: u64,
    misses: u64,
    stores: u64,
}

/// Cross-plan source-access memo, cheaply cloneable (shared interior).
///
/// One memo is scoped to one *session* — a sequence of runs over the same
/// source grid and fault seed. Sharing it across unrelated grids would
/// alias `(bucket, index)` coordinates.
#[derive(Debug, Clone, Default)]
pub struct SourceMemo {
    inner: Arc<Mutex<MemoInner>>,
}

impl SourceMemo {
    /// Creates an empty memo.
    pub fn new() -> Self {
        SourceMemo::default()
    }

    /// Marks the start of a new executor run. Entries stored by earlier
    /// runs remain valid but report as *warm* on hit.
    pub fn begin_run(&self) {
        self.lock().run_token += 1;
    }

    /// Declares the backend's current data version
    /// ([`crate::backend::SourceBackend::epoch`]). A changed epoch drops
    /// every cached outcome observed under the old one — a store write or
    /// a restarted server invalidates terminal outcomes the same way a
    /// live failure does, without touching the failure-driven
    /// [`SourceMemo::epoch`] discipline. The executor calls this at the
    /// start of each run; `SimBackend`'s epoch is constant `0`, so purely
    /// simulated sessions are unaffected.
    pub fn sync_backend_epoch(&self, epoch: u64) {
        let mut inner = self.lock();
        if inner.backend_epoch == epoch {
            return;
        }
        inner.backend_epoch = epoch;
        inner.entries.retain(|_, e| e.backend_epoch == epoch);
    }

    /// Looks up the cached outcome for `(bucket, index, pattern)`,
    /// counting a hit or miss.
    pub fn lookup(&self, bucket: usize, index: usize, pattern: &str) -> Option<MemoHit> {
        let mut inner = self.lock();
        let epoch = inner.epoch;
        let token = inner.run_token;
        match inner.entries.get(&(bucket, index, Arc::from(pattern))) {
            Some(e) if e.epoch == epoch => {
                let hit = MemoHit {
                    outcome: e.outcome,
                    warm: e.run_token != token,
                };
                inner.hits += 1;
                Some(hit)
            }
            _ => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Whether a live entry exists, without counting a hit or miss. Used
    /// by reuse-aware scheduling to score overlap without skewing the
    /// hit-rate statistics.
    pub fn contains(&self, bucket: usize, index: usize, pattern: &str) -> bool {
        let inner = self.lock();
        inner
            .entries
            .get(&(bucket, index, Arc::from(pattern)))
            .is_some_and(|e| e.epoch == inner.epoch)
    }

    /// Stores a terminal outcome in the current epoch.
    pub fn store(&self, bucket: usize, index: usize, pattern: &str, outcome: MemoOutcome) {
        let mut inner = self.lock();
        let epoch = inner.epoch;
        let token = inner.run_token;
        let backend_epoch = inner.backend_epoch;
        inner.entries.insert(
            (bucket, index, Arc::from(pattern)),
            MemoEntry {
                outcome,
                epoch,
                run_token: token,
                backend_epoch,
            },
        );
        inner.stores += 1;
    }

    /// Bumps the epoch and drops every entry from older epochs. Called by
    /// the executor when a plan fails from live accesses, mirroring the
    /// `ExecutionContext` retract feedback.
    pub fn invalidate(&self) {
        let mut inner = self.lock();
        inner.epoch += 1;
        let epoch = inner.epoch;
        inner.entries.retain(|_, e| e.epoch == epoch);
    }

    /// The current invalidation epoch.
    pub fn epoch(&self) -> u64 {
        self.lock().epoch
    }

    /// Lookups served from the memo so far.
    pub fn hits(&self) -> u64 {
        self.lock().hits
    }

    /// Lookups that found nothing so far.
    pub fn misses(&self) -> u64 {
        self.lock().misses
    }

    /// Outcomes stored so far (including overwrites).
    pub fn stores(&self) -> u64 {
        self.lock().stores
    }

    /// Number of live cached entries.
    pub fn len(&self) -> usize {
        let inner = self.lock();
        let epoch = inner.epoch;
        inner.entries.values().filter(|e| e.epoch == epoch).count()
    }

    /// Whether the memo holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident bytes of the memo (keys plus entries), for
    /// the `qpo_memo_bytes` gauge.
    pub fn approx_bytes(&self) -> usize {
        let inner = self.lock();
        inner
            .entries
            .iter()
            .map(|((_, _, pattern), _)| {
                std::mem::size_of::<(usize, usize, Arc<str>)>()
                    + pattern.len()
                    + std::mem::size_of::<MemoEntry>()
            })
            .sum()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemoInner> {
        // Poison recovery (the qpo-obs registry/journal idiom): every
        // critical section here is a plain field update that leaves the
        // map consistent, so a worker panicking mid-section cannot wedge
        // the shared memo for the rest of the session.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_miss_then_store_then_hit() {
        let memo = SourceMemo::new();
        memo.begin_run();
        assert!(memo.lookup(0, 1, SCAN_PATTERN).is_none());
        memo.store(0, 1, SCAN_PATTERN, MemoOutcome::Success);
        let hit = memo.lookup(0, 1, SCAN_PATTERN).expect("stored");
        assert_eq!(hit.outcome, MemoOutcome::Success);
        assert!(!hit.warm, "same-run entry is cold");
        assert_eq!((memo.hits(), memo.misses(), memo.stores()), (1, 1, 1));
        assert_eq!(memo.len(), 1);
        assert!(memo.approx_bytes() > 0);
    }

    #[test]
    fn entries_from_earlier_runs_are_warm() {
        let memo = SourceMemo::new();
        memo.begin_run();
        memo.store(2, 0, SCAN_PATTERN, MemoOutcome::PermanentFailure);
        memo.begin_run();
        let hit = memo
            .lookup(2, 0, SCAN_PATTERN)
            .expect("persists across runs");
        assert_eq!(hit.outcome, MemoOutcome::PermanentFailure);
        assert!(hit.warm);
    }

    #[test]
    fn invalidate_drops_older_epochs() {
        let memo = SourceMemo::new();
        memo.store(0, 0, SCAN_PATTERN, MemoOutcome::Success);
        assert!(memo.contains(0, 0, SCAN_PATTERN));
        memo.invalidate();
        assert_eq!(memo.epoch(), 1);
        assert!(!memo.contains(0, 0, SCAN_PATTERN));
        assert!(memo.lookup(0, 0, SCAN_PATTERN).is_none());
        assert!(memo.is_empty());
        // Post-bump stores land in the new epoch and survive.
        memo.store(0, 0, SCAN_PATTERN, MemoOutcome::PermanentFailure);
        assert!(memo.contains(0, 0, SCAN_PATTERN));
    }

    #[test]
    fn contains_does_not_count_hits() {
        let memo = SourceMemo::new();
        memo.store(1, 1, SCAN_PATTERN, MemoOutcome::Success);
        assert!(memo.contains(1, 1, SCAN_PATTERN));
        assert!(!memo.contains(1, 2, SCAN_PATTERN));
        assert_eq!((memo.hits(), memo.misses()), (0, 0));
    }

    #[test]
    fn backend_epoch_change_drops_stale_entries() {
        let memo = SourceMemo::new();
        memo.sync_backend_epoch(0); // no-op: already at 0
        memo.store(0, 0, SCAN_PATTERN, MemoOutcome::Success);
        memo.sync_backend_epoch(1);
        assert!(
            memo.lookup(0, 0, SCAN_PATTERN).is_none(),
            "outcomes from the old data version are gone"
        );
        // The failure epoch is untouched — only the data version moved.
        assert_eq!(memo.epoch(), 0);
        memo.store(0, 0, SCAN_PATTERN, MemoOutcome::Success);
        memo.sync_backend_epoch(1); // same version: entries survive
        assert!(memo.contains(0, 0, SCAN_PATTERN));
    }

    #[test]
    fn poisoned_lock_recovers_instead_of_wedging() {
        let memo = SourceMemo::new();
        memo.store(0, 0, SCAN_PATTERN, MemoOutcome::Success);
        // Poison the mutex: panic while holding the raw guard.
        let inner = Arc::clone(&memo.inner);
        let _ = std::thread::spawn(move || {
            let _guard = inner.lock().unwrap();
            panic!("poison the memo lock");
        })
        .join();
        assert!(memo.inner.is_poisoned(), "the panic actually poisoned it");
        // Every entry point still works on the recovered state.
        let hit = memo.lookup(0, 0, SCAN_PATTERN).expect("state survives");
        assert_eq!(hit.outcome, MemoOutcome::Success);
        memo.store(1, 0, SCAN_PATTERN, MemoOutcome::PermanentFailure);
        assert_eq!(memo.len(), 2);
        memo.invalidate();
        assert!(memo.is_empty());
    }

    #[test]
    fn patterns_key_distinct_entries() {
        let memo = SourceMemo::new();
        memo.store(0, 0, SCAN_PATTERN, MemoOutcome::Success);
        assert!(memo.lookup(0, 0, "bound:bf").is_none());
        memo.store(0, 0, "bound:bf", MemoOutcome::PermanentFailure);
        assert_eq!(
            memo.lookup(0, 0, SCAN_PATTERN).map(|h| h.outcome),
            Some(MemoOutcome::Success)
        );
        assert_eq!(memo.len(), 2);
    }
}
