//! The source-server wire protocol: length-prefixed binary frames over a
//! byte stream.
//!
//! Deliberately tiny — one request shape, one response shape — so the
//! whole codec is auditable and the robustness surface (truncated frames,
//! garbage bytes, oversized lengths) is small enough to test exhaustively.
//!
//! ## Framing
//!
//! Every message is one *frame*: a `u32` big-endian payload length
//! followed by that many payload bytes. Readers enforce
//! [`MAX_FRAME_BYTES`] before allocating, so a hostile or corrupt length
//! prefix cannot balloon memory.
//!
//! ## Payloads
//!
//! Request (`op` byte then fields):
//!
//! ```text
//! [u8 op = 1] [u16 len][source name bytes] [u16 len][binding pattern bytes]
//! ```
//!
//! Response (`status` byte, then the server's data epoch, then fields):
//!
//! ```text
//! [u8 0 = OK]             [u64 epoch] [u32 row count] rows…
//! [u8 1 = UNKNOWN_SOURCE] [u64 epoch] [u16 len][message bytes]  (permanent)
//! [u8 2 = ERROR]          [u64 epoch] [u16 len][message bytes]  (transient)
//! ```
//!
//! The epoch is the server's monotone data-version counter
//! ([`crate::net::RelationProvider::epoch`]): it rides on *every*
//! response so a [`crate::net::TcpBackend`] can surface it through
//! [`crate::backend::SourceBackend::epoch`] and the source memo can
//! invalidate outcomes cached against a world the server no longer
//! serves — no manual version bookkeeping on the client.
//!
//! A row is `[u16 arity]` followed by tagged constants: tag `0` is a
//! big-endian `i64`, tag `1` is a `u16`-length-prefixed UTF-8 string.
//! Decoders reject unknown tags, truncated fields, and trailing bytes, so
//! every byte of a frame is accounted for.

use qpo_datalog::{Constant, Tuple};
use std::fmt;
use std::io::{Read, Write};

/// Hard ceiling on a frame's payload size. A length prefix above this is
/// rejected before any allocation happens.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Protocol opcode for a scan request (the only request today; the slot
/// exists so bound accesses can join the protocol without re-framing).
pub const OP_SCAN: u8 = 1;

/// Protocol opcode for a server-journal dump request. The payload is the
/// single opcode byte; the response is one raw UTF-8 text frame (not a
/// [`Response`]) rendering the server's bounded span journal.
pub const OP_TRACE: u8 = 2;

/// Extension tag for a request's [`TraceContext`] block.
pub const EXT_TRACE_CONTEXT: u8 = 0x10;

/// Extension tag for a response's [`ServerSpan`] block.
pub const EXT_SERVER_SPAN: u8 = 0x11;

/// What went wrong decoding a payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before a field was complete.
    Truncated,
    /// A declared length exceeds the protocol ceiling.
    Oversized(usize),
    /// An unknown constant tag.
    BadTag(u8),
    /// An unknown request opcode.
    BadOp(u8),
    /// An unknown response status byte.
    BadStatus(u8),
    /// A string field was not valid UTF-8.
    Utf8,
    /// The payload had bytes left over after the message was complete.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "payload truncated mid-field"),
            WireError::Oversized(n) => write!(f, "declared length {n} exceeds protocol ceiling"),
            WireError::BadTag(t) => write!(f, "unknown constant tag {t}"),
            WireError::BadOp(op) => write!(f, "unknown request opcode {op}"),
            WireError::BadStatus(s) => write!(f, "unknown response status {s}"),
            WireError::Utf8 => write!(f, "string field is not valid UTF-8"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for WireError {}

/// A source-access request: scan `source` under `pattern`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Catalog name of the source relation.
    pub source: String,
    /// Binding pattern (today always `"scan"`).
    pub pattern: String,
}

/// A source-access response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The source answered with its tuples.
    Rows(Vec<Tuple>),
    /// The server does not host that source — a permanent failure.
    UnknownSource(String),
    /// The server failed transiently (e.g. mid-restart); retry.
    Error(String),
}

/// Client trace context propagated on a request as an optional trailing
/// extension block (tag [`EXT_TRACE_CONTEXT`]): which run, plan, and
/// attempt this access serves. Servers echo it into their own journal and
/// — only when it is present — attach a [`ServerSpan`] to the response,
/// so legacy clients receive byte-identical responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceContext {
    /// Client-process run identifier (not journalled; disambiguates
    /// concurrent runs in the *server's* journal only).
    pub run: u64,
    /// Emission sequence number of the plan the access serves.
    pub plan_seq: u64,
    /// Catalog name of the source being accessed.
    pub source: String,
    /// 1-based attempt number within the access retry chain.
    pub attempt: u32,
}

/// Server-side span block riding a response as an optional trailing
/// extension (tag [`EXT_SERVER_SPAN`]): how the server spent its wall
/// time on this request, plus its monotone request counter. All phase
/// durations are wall-clock seconds encoded as `f64::to_bits` big-endian;
/// the server clamps `total ≥ recv_parse + lookup + encode` at
/// construction so decoded blocks always attribute soundly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerSpan {
    /// Frame receive + request parse time (seconds).
    pub recv_parse: f64,
    /// Provider lookup time: store index probe or mem scan (seconds).
    pub lookup: f64,
    /// Row encode time (seconds).
    pub encode: f64,
    /// Total server residence time, `≥` the phase sum (seconds).
    pub total: f64,
    /// The server's monotone request counter at this request.
    pub request_seq: u64,
}

/// Bounds-checked little reader over a payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Oversized(n))?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_be_bytes(raw))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(self.u64()? as i64)
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Utf8)
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn finish(self) -> Result<(), WireError> {
        let left = self.buf.len() - self.pos;
        if left == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(left))
        }
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) -> Result<(), WireError> {
    let len = u16::try_from(s.len()).map_err(|_| WireError::Oversized(s.len()))?;
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_tuple(out: &mut Vec<u8>, tuple: &Tuple) -> Result<(), WireError> {
    let arity = u16::try_from(tuple.len()).map_err(|_| WireError::Oversized(tuple.len()))?;
    out.extend_from_slice(&arity.to_be_bytes());
    for c in tuple {
        match c {
            Constant::Int(i) => {
                out.push(0);
                out.extend_from_slice(&i.to_be_bytes());
            }
            Constant::Str(s) => {
                out.push(1);
                put_string(out, s)?;
            }
        }
    }
    Ok(())
}

fn read_tuple(r: &mut Reader<'_>) -> Result<Tuple, WireError> {
    let arity = r.u16()? as usize;
    let mut tuple = Vec::with_capacity(arity.min(64));
    for _ in 0..arity {
        let c = match r.u8()? {
            0 => Constant::Int(r.i64()?),
            1 => Constant::Str(r.string()?.into()),
            t => return Err(WireError::BadTag(t)),
        };
        tuple.push(c);
    }
    Ok(tuple)
}

/// Encodes a request payload (no frame prefix).
pub fn encode_request(req: &Request) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::with_capacity(5 + req.source.len() + req.pattern.len());
    out.push(OP_SCAN);
    put_string(&mut out, &req.source)?;
    put_string(&mut out, &req.pattern)?;
    Ok(out)
}

fn read_request_body(r: &mut Reader<'_>) -> Result<Request, WireError> {
    match r.u8()? {
        OP_SCAN => {}
        op => return Err(WireError::BadOp(op)),
    }
    let source = r.string()?;
    let pattern = r.string()?;
    Ok(Request { source, pattern })
}

/// Decodes a request payload, rejecting unknown opcodes, truncation, and
/// trailing bytes (extension blocks included — this is the strict legacy
/// decoder; see [`decode_request_ext`]).
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut r = Reader::new(payload);
    let req = read_request_body(&mut r)?;
    r.finish()?;
    Ok(req)
}

/// Encodes a response payload (no frame prefix). `epoch` is the server's
/// data-version counter, carried in the header of every response.
pub fn encode_response(resp: &Response, epoch: u64) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::new();
    match resp {
        Response::Rows(rows) => {
            out.push(0);
            out.extend_from_slice(&epoch.to_be_bytes());
            let count = u32::try_from(rows.len()).map_err(|_| WireError::Oversized(rows.len()))?;
            out.extend_from_slice(&count.to_be_bytes());
            for row in rows {
                put_tuple(&mut out, row)?;
            }
        }
        Response::UnknownSource(msg) => {
            out.push(1);
            out.extend_from_slice(&epoch.to_be_bytes());
            put_string(&mut out, msg)?;
        }
        Response::Error(msg) => {
            out.push(2);
            out.extend_from_slice(&epoch.to_be_bytes());
            put_string(&mut out, msg)?;
        }
    }
    Ok(out)
}

fn read_response_body(r: &mut Reader<'_>) -> Result<(Response, u64), WireError> {
    let status = r.u8()?;
    if status > 2 {
        return Err(WireError::BadStatus(status));
    }
    let epoch = r.u64()?;
    let resp = match status {
        0 => {
            let count = r.u32()? as usize;
            if count > MAX_FRAME_BYTES {
                return Err(WireError::Oversized(count));
            }
            let mut rows = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                rows.push(read_tuple(r)?);
            }
            Response::Rows(rows)
        }
        1 => Response::UnknownSource(r.string()?),
        2 => Response::Error(r.string()?),
        s => return Err(WireError::BadStatus(s)),
    };
    Ok((resp, epoch))
}

/// Decodes a response payload into `(response, server epoch)`, rejecting
/// unknown statuses, truncation, and trailing bytes (extension blocks
/// included — this is the strict legacy decoder; see
/// [`decode_response_ext`]).
pub fn decode_response(payload: &[u8]) -> Result<(Response, u64), WireError> {
    let mut r = Reader::new(payload);
    let (resp, epoch) = read_response_body(&mut r)?;
    r.finish()?;
    Ok((resp, epoch))
}

// ---------------------------------------------------------------------
// Extension blocks: optional, length-prefixed, order-independent blobs
// trailing a message body — `[u8 tag][u16 len][len bytes]` each. Strict
// decoders reject them as trailing bytes (the legacy behavior the
// interop tests pin); the `_ext` decoders skip unknown tags, so the
// protocol can grow without re-framing.
// ---------------------------------------------------------------------

fn put_ext(out: &mut Vec<u8>, tag: u8, body: &[u8]) -> Result<(), WireError> {
    let len = u16::try_from(body.len()).map_err(|_| WireError::Oversized(body.len()))?;
    out.push(tag);
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(body);
    Ok(())
}

/// Scans the extension blocks after a message body, returning the bytes
/// of the first block tagged `want` (unknown tags are skipped; a
/// truncated block is an error).
fn find_ext<'a>(r: &mut Reader<'a>, want: u8) -> Result<Option<&'a [u8]>, WireError> {
    let mut found = None;
    while r.remaining() > 0 {
        let tag = r.u8()?;
        let len = r.u16()? as usize;
        let body = r.take(len)?;
        if tag == want && found.is_none() {
            found = Some(body);
        }
    }
    Ok(found)
}

/// Appends a [`TraceContext`] extension block to an encoded request
/// payload.
pub fn append_trace_context(out: &mut Vec<u8>, ctx: &TraceContext) -> Result<(), WireError> {
    let mut body = Vec::with_capacity(22 + ctx.source.len());
    body.extend_from_slice(&ctx.run.to_be_bytes());
    body.extend_from_slice(&ctx.plan_seq.to_be_bytes());
    put_string(&mut body, &ctx.source)?;
    body.extend_from_slice(&ctx.attempt.to_be_bytes());
    put_ext(out, EXT_TRACE_CONTEXT, &body)
}

/// Appends a [`ServerSpan`] extension block to an encoded response
/// payload (the response body is encoded *before* the span exists — the
/// encode phase is part of what the span times — so the block is
/// appended, never interleaved).
pub fn append_server_span(out: &mut Vec<u8>, span: &ServerSpan) -> Result<(), WireError> {
    let mut body = Vec::with_capacity(40);
    for v in [span.recv_parse, span.lookup, span.encode, span.total] {
        body.extend_from_slice(&v.to_bits().to_be_bytes());
    }
    body.extend_from_slice(&span.request_seq.to_be_bytes());
    put_ext(out, EXT_SERVER_SPAN, &body)
}

/// [`encode_request`] plus an optional trace-context extension block
/// (`None` produces the legacy bytes exactly).
pub fn encode_request_with(
    req: &Request,
    ctx: Option<&TraceContext>,
) -> Result<Vec<u8>, WireError> {
    let mut out = encode_request(req)?;
    if let Some(ctx) = ctx {
        append_trace_context(&mut out, ctx)?;
    }
    Ok(out)
}

/// [`encode_response`] plus an optional server-span extension block
/// (`None` produces the legacy bytes exactly).
pub fn encode_response_with(
    resp: &Response,
    epoch: u64,
    span: Option<&ServerSpan>,
) -> Result<Vec<u8>, WireError> {
    let mut out = encode_response(resp, epoch)?;
    if let Some(span) = span {
        append_server_span(&mut out, span)?;
    }
    Ok(out)
}

/// Decodes a request and its optional [`TraceContext`]. A legacy payload
/// (no extension blocks) decodes with `None`; unknown extension tags are
/// skipped.
pub fn decode_request_ext(payload: &[u8]) -> Result<(Request, Option<TraceContext>), WireError> {
    let mut r = Reader::new(payload);
    let req = read_request_body(&mut r)?;
    let ctx = match find_ext(&mut r, EXT_TRACE_CONTEXT)? {
        None => None,
        Some(body) => {
            let mut b = Reader::new(body);
            let run = b.u64()?;
            let plan_seq = b.u64()?;
            let source = b.string()?;
            let attempt = b.u32()?;
            b.finish()?;
            Some(TraceContext {
                run,
                plan_seq,
                source,
                attempt,
            })
        }
    };
    r.finish()?;
    Ok((req, ctx))
}

/// Decodes a response, its epoch, and its optional [`ServerSpan`]. A
/// legacy payload (no extension blocks) decodes with `None`; unknown
/// extension tags are skipped.
pub fn decode_response_ext(
    payload: &[u8],
) -> Result<(Response, u64, Option<ServerSpan>), WireError> {
    let mut r = Reader::new(payload);
    let (resp, epoch) = read_response_body(&mut r)?;
    let span = match find_ext(&mut r, EXT_SERVER_SPAN)? {
        None => None,
        Some(body) => {
            let mut b = Reader::new(body);
            let recv_parse = f64::from_bits(b.u64()?);
            let lookup = f64::from_bits(b.u64()?);
            let encode = f64::from_bits(b.u64()?);
            let total = f64::from_bits(b.u64()?);
            let request_seq = b.u64()?;
            b.finish()?;
            Some(ServerSpan {
                recv_parse,
                lookup,
                encode,
                total,
                request_seq,
            })
        }
    };
    r.finish()?;
    Ok((resp, epoch, span))
}

/// Encodes one named relation — the record format of the store's log
/// segments: `[u16 len][name]` then `[u32 row count]` and the rows.
pub fn encode_relation(name: &str, rows: &[Tuple]) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::new();
    put_string(&mut out, name)?;
    let count = u32::try_from(rows.len()).map_err(|_| WireError::Oversized(rows.len()))?;
    out.extend_from_slice(&count.to_be_bytes());
    for row in rows {
        put_tuple(&mut out, row)?;
    }
    Ok(out)
}

/// Decodes one named-relation record (inverse of [`encode_relation`]).
pub fn decode_relation(payload: &[u8]) -> Result<(String, Vec<Tuple>), WireError> {
    let mut r = Reader::new(payload);
    let name = r.string()?;
    let count = r.u32()? as usize;
    if count > MAX_FRAME_BYTES {
        return Err(WireError::Oversized(count));
    }
    let mut rows = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        rows.push(read_tuple(&mut r)?);
    }
    r.finish()?;
    Ok((name, rows))
}

/// Writes one frame: `u32` big-endian payload length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            WireError::Oversized(payload.len()).to_string(),
        ));
    }
    let len = payload.len() as u32;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame, enforcing [`MAX_FRAME_BYTES`] before allocating. A
/// clean EOF *before any length byte* maps to `UnexpectedEof` with an
/// empty message, which callers treat as "peer closed"; EOF mid-frame is
/// a truncation error.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            WireError::Oversized(len).to_string(),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(items: &[i64]) -> Tuple {
        items.iter().map(|&i| Constant::Int(i)).collect()
    }

    #[test]
    fn request_round_trips() {
        let req = Request {
            source: "v3".into(),
            pattern: "scan".into(),
        };
        let bytes = encode_request(&req).unwrap();
        assert_eq!(decode_request(&bytes).unwrap(), req);
    }

    #[test]
    fn responses_round_trip() {
        let cases = [
            Response::Rows(vec![
                row(&[1, 2]),
                vec![Constant::Str("ford".into()), Constant::Int(-7)],
                vec![],
            ]),
            Response::Rows(Vec::new()),
            Response::UnknownSource("v9".into()),
            Response::Error("mid-restart".into()),
        ];
        for (i, resp) in cases.into_iter().enumerate() {
            let epoch = i as u64 * 1000 + 7;
            let bytes = encode_response(&resp, epoch).unwrap();
            assert_eq!(decode_response(&bytes).unwrap(), (resp, epoch));
        }
    }

    #[test]
    fn truncated_payloads_are_rejected_at_every_prefix() {
        let req = Request {
            source: "movies".into(),
            pattern: "scan".into(),
        };
        let bytes = encode_request(&req).unwrap();
        for cut in 0..bytes.len() {
            let err = decode_request(&bytes[..cut]).unwrap_err();
            assert_eq!(err, WireError::Truncated, "cut at {cut}");
        }
        let resp = Response::Rows(vec![row(&[1]), vec![Constant::Str("x".into())]]);
        let bytes = encode_response(&resp, 42).unwrap();
        for cut in 0..bytes.len() {
            assert_eq!(
                decode_response(&bytes[..cut]).unwrap_err(),
                WireError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn garbage_bytes_are_rejected_not_panicked_on() {
        assert_eq!(decode_request(&[9]).unwrap_err(), WireError::BadOp(9));
        assert_eq!(decode_response(&[7]).unwrap_err(), WireError::BadStatus(7));
        // Bad constant tag inside a row.
        let mut bytes = encode_response(&Response::Rows(vec![row(&[5])]), 3).unwrap();
        let tag_at = bytes.len() - 9; // tag byte precedes the 8-byte int
        bytes[tag_at] = 0xEE;
        assert_eq!(
            decode_response(&bytes).unwrap_err(),
            WireError::BadTag(0xEE)
        );
        // Invalid UTF-8 in a string field.
        let mut bytes = encode_response(&Response::Error("ab".into()), 3).unwrap();
        let n = bytes.len();
        bytes[n - 1] = 0xFF;
        bytes[n - 2] = 0xFE;
        assert_eq!(decode_response(&bytes).unwrap_err(), WireError::Utf8);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_request(&Request {
            source: "v1".into(),
            pattern: "scan".into(),
        })
        .unwrap();
        bytes.extend_from_slice(&[0, 0, 0]);
        assert_eq!(
            decode_request(&bytes).unwrap_err(),
            WireError::TrailingBytes(3)
        );
    }

    #[test]
    fn frames_round_trip_and_enforce_the_ceiling() {
        let payload = b"hello frames".to_vec();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        assert_eq!(read_frame(&mut wire.as_slice()).unwrap(), payload);
        // A hostile length prefix is rejected before allocation.
        let mut hostile = (u32::MAX).to_be_bytes().to_vec();
        hostile.extend_from_slice(b"x");
        let err = read_frame(&mut hostile.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // A truncated frame reports UnexpectedEof.
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        wire.truncate(wire.len() - 3);
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn relation_records_round_trip() {
        let rows = vec![row(&[1, 2]), vec![Constant::Str("ford".into())]];
        let bytes = encode_relation("v4", &rows).unwrap();
        let (name, decoded) = decode_relation(&bytes).unwrap();
        assert_eq!(name, "v4");
        assert_eq!(decoded, rows);
        for cut in 0..bytes.len() {
            assert_eq!(
                decode_relation(&bytes[..cut]).unwrap_err(),
                WireError::Truncated
            );
        }
    }

    #[test]
    fn oversized_strings_fail_to_encode() {
        let req = Request {
            source: "v".repeat(70_000),
            pattern: "scan".into(),
        };
        assert!(matches!(
            encode_request(&req).unwrap_err(),
            WireError::Oversized(70_000)
        ));
    }

    fn ctx() -> TraceContext {
        TraceContext {
            run: 7,
            plan_seq: 3,
            source: "v2".into(),
            attempt: 2,
        }
    }

    fn span() -> ServerSpan {
        ServerSpan {
            recv_parse: 1e-5,
            lookup: 3e-5,
            encode: 2e-5,
            total: 9e-5,
            request_seq: 41,
        }
    }

    #[test]
    fn trace_context_rides_a_request_and_legacy_requests_decode_without_one() {
        let req = Request {
            source: "v2".into(),
            pattern: "scan".into(),
        };
        let bytes = encode_request_with(&req, Some(&ctx())).unwrap();
        assert_eq!(
            decode_request_ext(&bytes).unwrap(),
            (req.clone(), Some(ctx()))
        );
        // The strict legacy decoder sees the block as trailing bytes —
        // exactly how an old server reports an extended request.
        assert!(matches!(
            decode_request(&bytes).unwrap_err(),
            WireError::TrailingBytes(_)
        ));
        // No context: the bytes are the legacy bytes, both decoders agree.
        let plain = encode_request_with(&req, None).unwrap();
        assert_eq!(plain, encode_request(&req).unwrap());
        assert_eq!(decode_request_ext(&plain).unwrap(), (req, None));
    }

    #[test]
    fn server_span_rides_a_response_and_legacy_responses_decode_without_one() {
        let resp = Response::Rows(vec![row(&[1, 2])]);
        let bytes = encode_response_with(&resp, 5, Some(&span())).unwrap();
        assert_eq!(
            decode_response_ext(&bytes).unwrap(),
            (resp.clone(), 5, Some(span()))
        );
        assert!(matches!(
            decode_response(&bytes).unwrap_err(),
            WireError::TrailingBytes(_)
        ));
        let plain = encode_response_with(&resp, 5, None).unwrap();
        assert_eq!(plain, encode_response(&resp, 5).unwrap());
        assert_eq!(decode_response_ext(&plain).unwrap(), (resp, 5, None));
    }

    #[test]
    fn unknown_extension_tags_are_skipped_not_rejected() {
        let resp = Response::Error("x".into());
        let mut bytes = encode_response(&resp, 1).unwrap();
        // A future extension this decoder has never heard of…
        bytes.push(0xEE);
        bytes.extend_from_slice(&3u16.to_be_bytes());
        bytes.extend_from_slice(&[9, 9, 9]);
        // …then a span block after it.
        append_server_span(&mut bytes, &span()).unwrap();
        assert_eq!(
            decode_response_ext(&bytes).unwrap(),
            (resp, 1, Some(span()))
        );
    }

    #[test]
    fn truncated_extension_blocks_error_cleanly() {
        let req = Request {
            source: "v1".into(),
            pattern: "scan".into(),
        };
        let bytes = encode_request_with(&req, Some(&ctx())).unwrap();
        let base = encode_request(&req).unwrap().len();
        for cut in base + 1..bytes.len() {
            assert!(decode_request_ext(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
