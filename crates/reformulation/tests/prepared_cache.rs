//! Property tests for the canonicalized reformulation cache: any
//! variable-renamed (and body-rotated) variant of a query must hit the
//! entry its original created, without re-running plan generation; queries
//! with different constants must not collide.

use proptest::prelude::*;
use qpo_catalog::domains::{movie_domain, movie_query, MOVIE_UNIVERSE};
use qpo_datalog::{parse_query, ConjunctiveQuery, Substitution, Term};
use qpo_reformulation::ReformulationCache;
use std::sync::Arc;

/// Bijectively renames the query's variables to `W{σ(i)}` under a
/// permutation σ drawn from `seed` (Fisher–Yates over a splitmix walk).
fn rename_bijectively(q: &ConjunctiveQuery, seed: u64) -> ConjunctiveQuery {
    let vars = q.all_variables();
    let n = vars.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut s = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    for i in (1..n).rev() {
        s ^= s >> 30;
        s = s.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        s ^= s >> 27;
        let j = (s % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    let mut subst = Substitution::new();
    for (i, v) in vars.iter().enumerate() {
        subst.bind(v.as_ref(), Term::var(format!("W{}", order[i])));
    }
    q.apply(&subst)
}

fn rotate_body(q: &ConjunctiveQuery, k: usize) -> ConjunctiveQuery {
    if q.body.is_empty() {
        return q.clone();
    }
    let k = k % q.body.len();
    let mut body = q.body[k..].to_vec();
    body.extend_from_slice(&q.body[..k]);
    ConjunctiveQuery::new(q.head.clone(), body)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn renamed_variants_hit_the_original_entry(seed in 0u64..10_000, rot in 0usize..3) {
        let catalog = movie_domain();
        let cache = ReformulationCache::new(8, MOVIE_UNIVERSE, 5.0);
        let original = cache.get_or_prepare(&catalog, &movie_query()).unwrap();
        let variant = rotate_body(&rename_bijectively(&movie_query(), seed), rot);
        let served = cache.get_or_prepare(&catalog, &variant).unwrap();
        prop_assert!(Arc::ptr_eq(&original, &served),
            "renamed variant missed the cache: {}", variant);
        let stats = cache.stats();
        prop_assert_eq!(stats.generations, 1, "hit must skip plan generation");
        prop_assert_eq!((stats.hits, stats.misses), (1, 1));
        // The shared entry serves the representative's plan space.
        prop_assert_eq!(served.plan_count(), 9);
    }

    #[test]
    fn different_constants_stay_separate(seed in 0u64..10_000) {
        let catalog = movie_domain();
        let cache = ReformulationCache::new(8, MOVIE_UNIVERSE, 5.0);
        let q1 = movie_query();
        let q2 = parse_query("q(M, R) :- play_in(hanks, M), review_of(R, M)").unwrap();
        let a = cache.get_or_prepare(&catalog, &q1).unwrap();
        let b = cache.get_or_prepare(&catalog, &rename_bijectively(&q2, seed)).unwrap();
        prop_assert!(!Arc::ptr_eq(&a, &b), "distinct constants collided");
        prop_assert_eq!(cache.stats().generations, 2);
    }
}
