//! The bucket algorithm [Levy–Rajaraman–Ordille, VLDB '96], as used by §2
//! of the plan-ordering paper.
//!
//! For each query subgoal, collect the sources that can return tuples
//! satisfying it (a *bucket*); candidate plans are elements of the
//! Cartesian product of the buckets; each candidate is kept only if its
//! expansion is contained in the query (soundness). The plan-ordering
//! algorithms run over the Cartesian product *before* the soundness test,
//! exactly as the paper prescribes (order first, test plans as they pop
//! out).

use qpo_datalog::{is_sound_plan, Atom, ConjunctiveQuery, SourceDescription, Term};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One bucket entry: a source usable for a subgoal, with the source atom
/// (arguments already unified against the subgoal) to splice into plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketEntry {
    /// Source relation name.
    pub source: Arc<str>,
    /// The source atom to use in a plan choosing this entry.
    pub atom: Atom,
}

/// One bucket per query subgoal, in subgoal order.
pub type Buckets = Vec<Vec<BucketEntry>>;

/// Attempts to place view `view` into the bucket of subgoal `goal` via its
/// body atom `body_atom`. Returns the instantiated source atom on success.
///
/// The classic admission test: positional unification of the subgoal with
/// the view's body atom must succeed, with a consistent mapping of view
/// variables to query terms, and every *distinguished* query variable of
/// the subgoal must land on a distinguished (head) variable of the view —
/// otherwise the source cannot return that attribute at all.
fn try_entry(
    goal: &Atom,
    view: &SourceDescription,
    body_atom: &Atom,
    query_head_vars: &[Arc<str>],
    fresh_prefix: &str,
) -> Option<Atom> {
    if goal.predicate != body_atom.predicate || goal.arity() != body_atom.arity() {
        return None;
    }
    let head_vars = view.definition.head.variables();
    // view variable → query term.
    let mut phi: BTreeMap<Arc<str>, Term> = BTreeMap::new();
    for (qt, vt) in goal.terms.iter().zip(&body_atom.terms) {
        match (qt, vt) {
            (Term::Const(c), Term::Const(d)) => {
                if c != d {
                    return None;
                }
            }
            (Term::Var(x), Term::Const(_)) => {
                // The view fixes a constant where the query has a variable.
                // A distinguished variable could then never be reported.
                if query_head_vars.contains(x) {
                    return None;
                }
            }
            (qt, Term::Var(y)) => {
                if let Term::Var(x) = qt {
                    if query_head_vars.contains(x) && !head_vars.contains(y) {
                        return None; // distinguished var not retrievable
                    }
                }
                match phi.get(y.as_ref()) {
                    Some(prev) if prev != qt => return None,
                    Some(_) => {}
                    None => {
                        phi.insert(y.clone(), qt.clone());
                    }
                }
            }
        }
    }
    // Instantiate the view head: mapped variables take their query term,
    // unmapped ones become fresh (per-entry) variables.
    let mut fresh = 0usize;
    let terms = view
        .definition
        .head
        .terms
        .iter()
        .map(|t| match t {
            Term::Const(_) => t.clone(),
            Term::Var(y) => phi.get(y.as_ref()).cloned().unwrap_or_else(|| {
                fresh += 1;
                Term::var(format!("{fresh_prefix}f{fresh}"))
            }),
        })
        .collect();
    Some(Atom::new(view.name().as_ref(), terms))
}

/// Builds the buckets for `query` over `views`.
///
/// A view enters a subgoal's bucket once per unifiable body atom (a view
/// joining a relation with itself can serve the same subgoal in two ways).
pub fn create_buckets(query: &ConjunctiveQuery, views: &[SourceDescription]) -> Buckets {
    let head_vars = query.head_variables();
    query
        .body
        .iter()
        .enumerate()
        .map(|(i, goal)| {
            let mut bucket = Vec::new();
            for view in views {
                for (j, body_atom) in view.definition.body.iter().enumerate() {
                    let prefix = format!("_B{i}n{}a{j}_", bucket.len());
                    if let Some(atom) = try_entry(goal, view, body_atom, &head_vars, &prefix) {
                        bucket.push(BucketEntry {
                            source: view.name().clone(),
                            atom,
                        });
                    }
                }
            }
            bucket
        })
        .collect()
}

/// Materializes the candidate plan selecting `choice[i]` from bucket `i`.
///
/// # Panics
/// Panics if `choice` does not address every bucket.
pub fn candidate_plan(
    query: &ConjunctiveQuery,
    buckets: &Buckets,
    choice: &[usize],
) -> ConjunctiveQuery {
    assert_eq!(choice.len(), buckets.len(), "one choice per bucket");
    let body = buckets
        .iter()
        .zip(choice)
        .map(|(bucket, &c)| bucket[c].atom.clone())
        .collect();
    ConjunctiveQuery::new(query.head.clone(), body)
}

/// Enumerates every candidate in the Cartesian product, returning the
/// choices whose plan is sound. Brute force — the ordering algorithms exist
/// precisely to avoid this; used by tests, small examples, and the mediator.
pub fn enumerate_sound_plans(
    query: &ConjunctiveQuery,
    views: &[SourceDescription],
    buckets: &Buckets,
) -> Vec<(Vec<usize>, ConjunctiveQuery)> {
    let view_map = qpo_datalog::expansion::view_map(views);
    let mut result = Vec::new();
    let mut choice = vec![0usize; buckets.len()];
    if buckets.iter().any(Vec::is_empty) {
        return result;
    }
    loop {
        let plan = candidate_plan(query, buckets, &choice);
        if is_sound_plan(&plan, &view_map, query).unwrap_or(false) {
            result.push((choice.clone(), plan));
        }
        // Advance odometer.
        let mut b = buckets.len();
        loop {
            if b == 0 {
                return result;
            }
            b -= 1;
            choice[b] += 1;
            if choice[b] < buckets[b].len() {
                break;
            }
            choice[b] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpo_datalog::parse_query;

    fn desc(text: &str) -> SourceDescription {
        SourceDescription::new(parse_query(text).unwrap())
    }

    fn figure1_views() -> Vec<SourceDescription> {
        vec![
            desc("v1(A, M) :- play_in(A, M), american(M)"),
            desc("v2(A, M) :- play_in(A, M), russian(M)"),
            desc("v3(A, M) :- play_in(A, M)"),
            desc("v4(R, M) :- review_of(R, M)"),
            desc("v5(R, M) :- review_of(R, M)"),
            desc("v6(R, M) :- review_of(R, M)"),
        ]
    }

    fn figure1_query() -> ConjunctiveQuery {
        parse_query("q(M, R) :- play_in(ford, M), review_of(R, M)").unwrap()
    }

    #[test]
    fn figure1_buckets() {
        let buckets = create_buckets(&figure1_query(), &figure1_views());
        assert_eq!(buckets.len(), 2);
        let names =
            |b: &[BucketEntry]| -> Vec<String> { b.iter().map(|e| e.source.to_string()).collect() };
        assert_eq!(names(&buckets[0]), vec!["v1", "v2", "v3"]);
        assert_eq!(names(&buckets[1]), vec!["v4", "v5", "v6"]);
        // The bucket-0 atoms carry the constant binding.
        assert_eq!(buckets[0][0].atom.to_string(), "v1(\"ford\", M)");
        assert_eq!(buckets[1][0].atom.to_string(), "v4(R, M)");
    }

    #[test]
    fn all_nine_figure1_plans_are_sound() {
        let query = figure1_query();
        let views = figure1_views();
        let buckets = create_buckets(&query, &views);
        let sound = enumerate_sound_plans(&query, &views, &buckets);
        assert_eq!(sound.len(), 9, "Example 1.1: nine sound plans");
    }

    #[test]
    fn distinguished_variable_must_be_retrievable() {
        // v hides the movie attribute (not in its head) → cannot serve a
        // query that outputs M.
        let views = vec![desc("v(A) :- play_in(A, M)")];
        let q = parse_query("q(A, M) :- play_in(A, M)").unwrap();
        let buckets = create_buckets(&q, &views);
        assert!(buckets[0].is_empty());
        // But it can serve a query that projects M away.
        let q2 = parse_query("q(A) :- play_in(A, M)").unwrap();
        let buckets2 = create_buckets(&q2, &views);
        assert_eq!(buckets2[0].len(), 1);
        assert_eq!(buckets2[0][0].atom.to_string(), "v(A)");
    }

    #[test]
    fn constant_conflicts_are_rejected() {
        let views = vec![
            desc("va(M) :- play_in(ford, M)"),
            desc("vb(M) :- play_in(hanks, M)"),
        ];
        let q = parse_query("q(M) :- play_in(ford, M)").unwrap();
        let buckets = create_buckets(&q, &views);
        let names: Vec<_> = buckets[0].iter().map(|e| e.source.to_string()).collect();
        assert_eq!(names, vec!["va"], "vb's constant clashes with the query's");
    }

    #[test]
    fn view_constant_against_distinguished_variable_is_rejected() {
        // The view only stores ford movies; a query asking for all actors
        // (distinguished A) cannot use it soundly — and cannot even
        // retrieve A.
        let views = vec![desc("v(M) :- play_in(ford, M)")];
        let q = parse_query("q(A, M) :- play_in(A, M)").unwrap();
        assert!(create_buckets(&q, &views)[0].is_empty());
        // With A existential the view is admitted (soundness still fails,
        // but that is the soundness test's job).
        let q2 = parse_query("q(M) :- play_in(A, M)").unwrap();
        assert_eq!(create_buckets(&q2, &views)[0].len(), 1);
    }

    #[test]
    fn self_join_views_enter_once_per_matching_atom() {
        // The view exports all three chain positions, so either of its
        // edge atoms can serve the query's subgoal.
        let views = vec![desc("v(X, Z, Y) :- edge(X, Z), edge(Z, Y)")];
        let q = parse_query("q(X, Y) :- edge(X, Y)").unwrap();
        let buckets = create_buckets(&q, &views);
        assert_eq!(buckets[0].len(), 2, "both edge atoms unify");
        assert_ne!(buckets[0][0].atom, buckets[0][1].atom);
        assert_eq!(buckets[0][0].atom.terms[0], Term::var("X"));
        assert_eq!(buckets[0][1].atom.terms[1], Term::var("X"));
    }

    #[test]
    fn repeated_view_variable_requires_consistent_mapping() {
        // v's body atom r(X, X) forces both query terms to be equal.
        let views = vec![desc("v(X) :- r(X, X)")];
        let q1 = parse_query("q(A) :- r(A, A)").unwrap();
        assert_eq!(create_buckets(&q1, &views)[0].len(), 1);
        let q2 = parse_query("q(A) :- r(A, B)").unwrap();
        assert!(create_buckets(&q2, &views)[0].is_empty());
    }

    #[test]
    fn unsound_candidates_are_filtered() {
        // v2 stores russian movies; the query (with the `american` subgoal)
        // admits it into the play_in bucket, but the combined plan is
        // unsound only when expansions conflict — here all plans remain
        // sound, so instead check a genuinely unsound combination: a source
        // whose join variable cannot be verified.
        let views = vec![
            desc("v1(A) :- play_in(A, M), american(M)"),
            desc("v2(A, M) :- play_in(A, M)"),
        ];
        // Query joins on M, but v1 does not export M: using v1 for the
        // play_in subgoal loses the join.
        let q = parse_query("q(A) :- play_in(A, M), american(M)").unwrap();
        let buckets = create_buckets(&q, &views);
        // v1 and v2 both enter bucket 0 (M is existential); bucket 1 gets
        // nobody (no view covers american/1 retrievably)... except v1 via
        // its american atom with fresh head var.
        assert_eq!(buckets[0].len(), 2);
        assert_eq!(buckets[1].len(), 1, "v1's american(M) atom enters");
        let sound = enumerate_sound_plans(&q, &views, &buckets);
        // v1(A) alone covers both subgoals when combined with itself.
        assert!(!sound.is_empty());
        for (_, plan) in &sound {
            let vm = qpo_datalog::expansion::view_map(&views);
            assert!(is_sound_plan(plan, &vm, &q).unwrap());
        }
    }

    #[test]
    fn empty_bucket_means_no_plans() {
        let views = vec![desc("v(R, M) :- review_of(R, M)")];
        let q = figure1_query();
        let buckets = create_buckets(&q, &views);
        assert!(buckets[0].is_empty());
        assert!(enumerate_sound_plans(&q, &views, &buckets).is_empty());
    }

    #[test]
    #[should_panic(expected = "one choice per bucket")]
    fn candidate_plan_checks_arity() {
        let buckets = create_buckets(&figure1_query(), &figure1_views());
        candidate_plan(&figure1_query(), &buckets, &[0]);
    }
}
