//! The MiniCon algorithm [Pottinger–Levy, VLDB '00], adapted to produce
//! the *generalized buckets* and *plan spaces* of §7 of the plan-ordering
//! paper.
//!
//! A MiniCon description (MCD) records that a view can cover a *set* of
//! query subgoals at once; the key rule is that when a query variable maps
//! to an existential view variable, every subgoal mentioning that variable
//! must be covered by the same MCD (the join can only happen inside the
//! view). MCDs with the same covered set form a generalized bucket; a set
//! of buckets whose covered sets partition the query's subgoals forms a
//! plan space containing **only sound plans** — so, unlike with the bucket
//! algorithm, plans popped from the ordering algorithms need no soundness
//! test.
//!
//! This implementation is deliberately conservative in one corner: it
//! rejects mappings that send two distinct query variables to the same view
//! variable (equating variables through a view). Such rewritings are rare
//! and the restriction only loses candidate plans, never admits unsound
//! ones; the tests cross-check every produced plan against the
//! expansion-containment soundness test.

use qpo_datalog::{Atom, ConjunctiveQuery, SourceDescription, Term};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A MiniCon description: one view covering a set of query subgoals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mcd {
    /// The view used.
    pub view: Arc<str>,
    /// Indices of the query subgoals this MCD covers.
    pub covered: BTreeSet<usize>,
    /// The instantiated source atom to splice into plans.
    pub atom: Atom,
}

/// All MCDs sharing one covered set: a generalized bucket (§7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneralizedBucket {
    /// The covered subgoal indices.
    pub covered: BTreeSet<usize>,
    /// The MCDs (plan alternatives) for this covered set.
    pub entries: Vec<Mcd>,
}

/// A plan space: generalized buckets whose covered sets partition the
/// query's subgoals. Every choice of one entry per bucket is a sound plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McdPlanSpace {
    /// The buckets, ordered by their smallest covered subgoal.
    pub buckets: Vec<GeneralizedBucket>,
}

impl McdPlanSpace {
    /// Number of plans in this space.
    pub fn plan_count(&self) -> usize {
        self.buckets.iter().map(|b| b.entries.len()).product()
    }

    /// Materializes the plan selecting `choice[i]` from bucket `i`.
    pub fn plan(&self, query: &ConjunctiveQuery, choice: &[usize]) -> ConjunctiveQuery {
        assert_eq!(choice.len(), self.buckets.len(), "one choice per bucket");
        let body = self
            .buckets
            .iter()
            .zip(choice)
            .map(|(b, &c)| b.entries[c].atom.clone())
            .collect();
        ConjunctiveQuery::new(query.head.clone(), body)
    }
}

/// In-progress MCD construction state.
#[derive(Debug, Clone)]
struct State {
    /// query variable → view term.
    tau: BTreeMap<Arc<str>, Term>,
    /// view variable → query term (must stay single-valued: the
    /// conservative no-equating rule).
    rev: BTreeMap<Arc<str>, Term>,
    covered: BTreeSet<usize>,
}

struct ViewInfo<'v> {
    desc: &'v SourceDescription,
    head_vars: Vec<Arc<str>>,
}

/// Tries to extend `state` by matching query subgoal `goal` against view
/// body atom `atom`. Returns the query variables newly mapped to
/// existential view variables (whose other subgoals must then be covered).
fn match_atom(
    state: &mut State,
    goal: &Atom,
    atom: &Atom,
    view: &ViewInfo,
    query_head_vars: &[Arc<str>],
) -> Option<Vec<Arc<str>>> {
    if goal.predicate != atom.predicate || goal.arity() != atom.arity() {
        return None;
    }
    let mut forced = Vec::new();
    for (qt, vt) in goal.terms.iter().zip(&atom.terms) {
        match (qt, vt) {
            (Term::Const(c), Term::Const(d)) => {
                if c != d {
                    return None;
                }
            }
            (Term::Const(_), Term::Var(y)) => {
                // The plan can select y = constant only if y is exported.
                if !view.head_vars.contains(y) {
                    return None;
                }
                match state.rev.get(y.as_ref()) {
                    Some(prev) if prev != qt => return None,
                    Some(_) => {}
                    None => {
                        state.rev.insert(y.clone(), qt.clone());
                    }
                }
            }
            (Term::Var(x), vt) => {
                match state.tau.get(x.as_ref()) {
                    Some(prev) if prev != vt => return None,
                    Some(_) => continue, // already mapped consistently
                    None => {}
                }
                if let Term::Var(y) = vt {
                    let distinguished = view.head_vars.contains(y);
                    if query_head_vars.contains(x) && !distinguished {
                        return None; // C1: distinguished var must be exported
                    }
                    match state.rev.get(y.as_ref()) {
                        Some(prev) if prev != qt => return None, // no equating
                        Some(_) => {}
                        None => {
                            state.rev.insert(y.clone(), qt.clone());
                        }
                    }
                    if !distinguished {
                        forced.push(x.clone()); // C2 closure trigger
                    }
                } else {
                    // View constant: the value is fixed *inside* the view.
                    // A distinguished variable could not be reported, and a
                    // join on x could only be checked inside this view —
                    // so close over x's other subgoals, like C2.
                    if query_head_vars.contains(x) {
                        return None;
                    }
                    forced.push(x.clone());
                }
                state.tau.insert(x.clone(), vt.clone());
            }
        }
    }
    Some(forced)
}

/// Recursively covers `pending` subgoals inside the view, branching over
/// body-atom choices; pushes completed states into `done`.
fn close(
    state: State,
    mut pending: Vec<usize>,
    query: &ConjunctiveQuery,
    view: &ViewInfo,
    query_head_vars: &[Arc<str>],
    done: &mut Vec<State>,
) {
    // Drop already-covered goals.
    while let Some(&g) = pending.last() {
        if state.covered.contains(&g) {
            pending.pop();
        } else {
            break;
        }
    }
    let Some(goal_idx) = pending.pop() else {
        done.push(state);
        return;
    };
    let goal = &query.body[goal_idx];
    for atom in &view.desc.definition.body {
        let mut next = state.clone();
        next.covered.insert(goal_idx);
        if let Some(forced) = match_atom(&mut next, goal, atom, view, query_head_vars) {
            let mut next_pending = pending.clone();
            for x in forced {
                for (i, g) in query.body.iter().enumerate() {
                    if !next.covered.contains(&i) && g.variables().contains(&x) {
                        next_pending.push(i);
                    }
                }
            }
            close(next, next_pending, query, view, query_head_vars, done);
        }
    }
}

/// Builds the instantiated source atom for a completed state.
fn instantiate(state: &State, view: &ViewInfo, fresh_prefix: &str) -> Atom {
    let mut fresh = 0usize;
    let terms = view
        .desc
        .definition
        .head
        .terms
        .iter()
        .map(|t| match t {
            Term::Const(_) => t.clone(),
            Term::Var(y) => state.rev.get(y.as_ref()).cloned().unwrap_or_else(|| {
                fresh += 1;
                Term::var(format!("{fresh_prefix}f{fresh}"))
            }),
        })
        .collect();
    Atom::new(view.desc.name().as_ref(), terms)
}

/// Forms all MCDs for `query` over `views`.
pub fn form_mcds(query: &ConjunctiveQuery, views: &[SourceDescription]) -> Vec<Mcd> {
    let query_head_vars = query.head_variables();
    let mut mcds: Vec<Mcd> = Vec::new();
    for desc in views {
        let view = ViewInfo {
            desc,
            head_vars: desc.definition.head.variables(),
        };
        for start in 0..query.body.len() {
            let state = State {
                tau: BTreeMap::new(),
                rev: BTreeMap::new(),
                covered: BTreeSet::new(),
            };
            let mut done = Vec::new();
            close(
                state,
                vec![start],
                query,
                &view,
                &query_head_vars,
                &mut done,
            );
            for (k, s) in done.into_iter().enumerate() {
                // Keep only MCDs whose smallest covered goal is the start:
                // closures discovered from a later start are duplicates.
                if s.covered.iter().next() != Some(&start) {
                    continue;
                }
                let prefix = format!("_M{}g{start}c{k}_", mcds.len());
                let mcd = Mcd {
                    view: desc.name().clone(),
                    covered: s.covered.clone(),
                    atom: instantiate(&s, &view, &prefix),
                };
                // Structural dedup (ignoring fresh-variable names).
                let dup = mcds.iter().any(|m| {
                    m.view == mcd.view
                        && m.covered == mcd.covered
                        && m.atom.terms.len() == mcd.atom.terms.len()
                        && m.atom
                            .terms
                            .iter()
                            .zip(&mcd.atom.terms)
                            .all(|(a, b)| a == b || (a.is_var() && b.is_var()))
                });
                if !dup {
                    mcds.push(mcd);
                }
            }
        }
    }
    mcds
}

/// Groups MCDs into plan spaces: every partition of the subgoal indices
/// into covered sets (with at least one MCD each) yields one space.
pub fn minicon_plan_spaces(
    query: &ConjunctiveQuery,
    views: &[SourceDescription],
) -> Vec<McdPlanSpace> {
    let mcds = form_mcds(query, views);
    // Distinct covered sets, each with its entries.
    let mut groups: BTreeMap<BTreeSet<usize>, Vec<Mcd>> = BTreeMap::new();
    for m in mcds {
        groups.entry(m.covered.clone()).or_default().push(m);
    }
    let sets: Vec<&BTreeSet<usize>> = groups.keys().collect();
    let n = query.body.len();
    let mut spaces = Vec::new();
    let mut stack: Vec<usize> = Vec::new();

    fn cover(
        uncovered: &BTreeSet<usize>,
        sets: &[&BTreeSet<usize>],
        stack: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        let Some(&first) = uncovered.iter().next() else {
            out.push(stack.clone());
            return;
        };
        for (i, s) in sets.iter().enumerate() {
            if s.contains(&first) && s.is_subset(uncovered) {
                stack.push(i);
                let rest: BTreeSet<usize> = uncovered.difference(s).copied().collect();
                cover(&rest, sets, stack, out);
                stack.pop();
            }
        }
    }

    let all: BTreeSet<usize> = (0..n).collect();
    let mut covers = Vec::new();
    cover(&all, &sets, &mut stack, &mut covers);
    for c in covers {
        let mut buckets: Vec<GeneralizedBucket> = c
            .into_iter()
            .map(|i| GeneralizedBucket {
                covered: sets[i].clone(),
                entries: groups[sets[i]].clone(),
            })
            .collect();
        buckets.sort_by_key(|b| b.covered.iter().next().copied());
        spaces.push(McdPlanSpace { buckets });
    }
    spaces
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpo_datalog::{expansion::view_map, is_sound_plan, parse_query};

    fn desc(text: &str) -> SourceDescription {
        SourceDescription::new(parse_query(text).unwrap())
    }

    fn figure1_views() -> Vec<SourceDescription> {
        vec![
            desc("v1(A, M) :- play_in(A, M), american(M)"),
            desc("v2(A, M) :- play_in(A, M), russian(M)"),
            desc("v3(A, M) :- play_in(A, M)"),
            desc("v4(R, M) :- review_of(R, M)"),
            desc("v5(R, M) :- review_of(R, M)"),
            desc("v6(R, M) :- review_of(R, M)"),
        ]
    }

    fn assert_all_sound(
        query: &ConjunctiveQuery,
        views: &[SourceDescription],
        spaces: &[McdPlanSpace],
    ) -> usize {
        let vm = view_map(views);
        let mut count = 0;
        for space in spaces {
            let mut choice = vec![0usize; space.buckets.len()];
            'space: loop {
                let plan = space.plan(query, &choice);
                assert!(
                    is_sound_plan(&plan, &vm, query).unwrap(),
                    "unsound minicon plan: {plan}"
                );
                count += 1;
                let mut b = space.buckets.len();
                loop {
                    if b == 0 {
                        break 'space;
                    }
                    b -= 1;
                    choice[b] += 1;
                    if choice[b] < space.buckets[b].entries.len() {
                        break;
                    }
                    choice[b] = 0;
                }
            }
        }
        count
    }

    #[test]
    fn figure1_single_space_with_nine_plans() {
        let query = parse_query("q(M, R) :- play_in(ford, M), review_of(R, M)").unwrap();
        let views = figure1_views();
        let spaces = minicon_plan_spaces(&query, &views);
        assert_eq!(spaces.len(), 1);
        assert_eq!(spaces[0].buckets.len(), 2);
        assert_eq!(spaces[0].plan_count(), 9);
        let n = assert_all_sound(&query, &views, &spaces);
        assert_eq!(n, 9);
    }

    #[test]
    fn hidden_join_variable_forces_multi_goal_mcd() {
        // v covers both subgoals at once (Y is hidden); w exports Y.
        let views = vec![
            desc("v(X, Z) :- r(X, Y), s(Y, Z)"),
            desc("w1(X, Y) :- r(X, Y)"),
            desc("w2(Y, Z) :- s(Y, Z)"),
        ];
        let query = parse_query("q(X, Z) :- r(X, Y), s(Y, Z)").unwrap();
        let mcds = form_mcds(&query, &views);
        let v_mcd = mcds.iter().find(|m| m.view.as_ref() == "v").unwrap();
        assert_eq!(v_mcd.covered.len(), 2, "v must cover both subgoals");
        // Two plan spaces: {v} and {w1} × {w2}.
        let spaces = minicon_plan_spaces(&query, &views);
        assert_eq!(spaces.len(), 2);
        let total = assert_all_sound(&query, &views, &spaces);
        assert_eq!(total, 2);
    }

    #[test]
    fn view_that_cannot_join_is_excluded() {
        // v hides Y but covers only r — its MCD would need to cover the s
        // subgoal too, which v cannot; so v yields no MCD at all.
        let views = vec![desc("v(X) :- r(X, Y)"), desc("w(Y, Z) :- s(Y, Z)")];
        let query = parse_query("q(X) :- r(X, Y), s(Y, Z)").unwrap();
        let mcds = form_mcds(&query, &views);
        assert!(
            mcds.iter().all(|m| m.view.as_ref() != "v"),
            "v must not form an MCD: {mcds:?}"
        );
        assert!(minicon_plan_spaces(&query, &views).is_empty());
    }

    #[test]
    fn distinguished_variable_must_be_exported() {
        let views = vec![desc("v(X) :- r(X, Y)")];
        let query = parse_query("q(X, Y) :- r(X, Y)").unwrap();
        assert!(form_mcds(&query, &views).is_empty());
    }

    #[test]
    fn constants_restrict_mcds() {
        let views = vec![
            desc("va(M) :- play_in(ford, M)"),
            desc("vb(A, M) :- play_in(A, M)"),
        ];
        let query = parse_query("q(M) :- play_in(ford, M)").unwrap();
        let mcds = form_mcds(&query, &views);
        let names: BTreeSet<&str> = mcds.iter().map(|m| m.view.as_ref()).collect();
        assert!(names.contains("va") && names.contains("vb"));
        let spaces = minicon_plan_spaces(&query, &views);
        assert_eq!(assert_all_sound(&query, &views, &spaces), 2);
    }

    #[test]
    fn matches_bucket_algorithm_plan_set_on_figure1() {
        use crate::bucket::{create_buckets, enumerate_sound_plans};
        let query = parse_query("q(M, R) :- play_in(ford, M), review_of(R, M)").unwrap();
        let views = figure1_views();
        let buckets = create_buckets(&query, &views);
        let bucket_plans: BTreeSet<Vec<Arc<str>>> = enumerate_sound_plans(&query, &views, &buckets)
            .into_iter()
            .map(|(_, p)| p.body.iter().map(|a| a.predicate.clone()).collect())
            .collect();
        let spaces = minicon_plan_spaces(&query, &views);
        let mut minicon_plans: BTreeSet<Vec<Arc<str>>> = BTreeSet::new();
        for space in &spaces {
            let mut choice = vec![0usize; space.buckets.len()];
            'outer: loop {
                let plan = space.plan(&query, &choice);
                minicon_plans.insert(plan.body.iter().map(|a| a.predicate.clone()).collect());
                let mut b = space.buckets.len();
                loop {
                    if b == 0 {
                        break 'outer;
                    }
                    b -= 1;
                    choice[b] += 1;
                    if choice[b] < space.buckets[b].entries.len() {
                        break;
                    }
                    choice[b] = 0;
                }
            }
        }
        assert_eq!(bucket_plans, minicon_plans);
    }
}
