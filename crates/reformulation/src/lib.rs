//! Query reformulation for LAV data integration.
//!
//! Three plan-generation algorithms, all feeding the plan-ordering
//! algorithms of `qpo-core` (per §2 and §7 of Doan & Halevy, ICDE 2002):
//!
//! - [`bucket`] — the bucket algorithm: one bucket per subgoal, candidate
//!   plans from the Cartesian product, soundness tested per plan;
//! - [`inverse`] — inverse rules: view inversion with Skolem terms, rules
//!   grouped per covered relation into buckets;
//! - [`minicon`] — MiniCon: generalized buckets covering *sets* of
//!   subgoals, combined into plan spaces that contain only sound plans;
//! - [`assemble`] — binds reformulated buckets to catalog statistics,
//!   producing the [`qpo_catalog::ProblemInstance`] the orderers consume;
//! - [`prepared`] — the serving layer's cacheable unit: a pure
//!   [`PreparedQuery`] (reformulation + instance) behind a bounded LRU
//!   [`ReformulationCache`] keyed on [`qpo_datalog::CanonicalQuery`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assemble;
pub mod bucket;
pub mod inverse;
pub mod minicon;
pub mod prepared;

pub use assemble::{minicon_instances, reformulate, Reformulation, ReformulationError};
pub use bucket::{candidate_plan, create_buckets, enumerate_sound_plans, BucketEntry, Buckets};
pub use inverse::{
    answer_with_inverse_rules, buckets_from_inverse_rules, invert, InverseRule, RuleTerm,
};
pub use minicon::{form_mcds, minicon_plan_spaces, GeneralizedBucket, Mcd, McdPlanSpace};
pub use prepared::{prepare, CacheStats, PreparedQuery, ReformulationCache};
