//! Prepared queries and the canonicalized reformulation cache.
//!
//! Reformulation is pure: for a fixed catalog (and universe/overhead
//! configuration), the buckets and the numeric [`ProblemInstance`] depend
//! only on the query's structure — not on its variable names, and not on
//! the order of its body atoms. A serving mediator therefore computes the
//! [`CanonicalQuery`] key of each incoming query and looks it up in a
//! bounded LRU [`ReformulationCache`]; a hit returns a shared
//! [`Arc<PreparedQuery>`] and **skips bucket generation and instance
//! assembly entirely**. Misses run [`prepare`] once and publish the result
//! for every later structurally-identical query.
//!
//! The cached artifact keeps the *representative* query — the first
//! concrete query that produced the entry — so materialized plans
//! ([`Reformulation::plan_query`]) are rendered with that representative's
//! variable names. Answers are tuples of constants and do not depend on
//! variable names, so a hit serves the same answer sets (and the same
//! plan-index/utility sequence) a cold run would have produced.

use crate::assemble::{reformulate, Reformulation, ReformulationError};
use qpo_catalog::{Catalog, ProblemInstance};
use qpo_datalog::{CanonicalQuery, ConjunctiveQuery};
use qpo_obs::{Counter, Obs};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Everything the serving layer needs to order and execute plans for one
/// query shape: the symbolic reformulation plus the numeric instance.
/// Pure and immutable — share it freely across sessions and threads.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    /// The representative query this entry was prepared from.
    pub query: ConjunctiveQuery,
    /// The canonical key the entry is filed under.
    pub canonical: CanonicalQuery,
    /// Buckets + plan materialization for the representative query.
    pub reformulation: Reformulation,
    /// The numeric instance the plan orderers consume.
    pub instance: ProblemInstance,
    /// Per-subgoal universe the instance was assembled with.
    pub universe: u64,
    /// Access overhead `h` the instance was assembled with.
    pub overhead: f64,
}

impl PreparedQuery {
    /// Number of candidate plans in the instance's Cartesian product.
    pub fn plan_count(&self) -> usize {
        self.instance.plan_count()
    }
}

/// Reformulates `query` against `catalog` and assembles the numeric
/// instance — the full (cacheable) plan-generation pipeline.
pub fn prepare(
    catalog: &Catalog,
    query: &ConjunctiveQuery,
    universe: u64,
    overhead: f64,
) -> Result<PreparedQuery, ReformulationError> {
    let reformulation = reformulate(catalog, query)?;
    let instance = reformulation.problem_instance(catalog, universe, overhead)?;
    Ok(PreparedQuery {
        query: query.clone(),
        canonical: CanonicalQuery::of(query),
        reformulation,
        instance,
        universe,
        overhead,
    })
}

/// Aggregate cache counters, snapshotted by [`ReformulationCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (plan generation skipped).
    pub hits: u64,
    /// Lookups that had to prepare the query.
    pub misses: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Calls into the plan-generation pipeline ([`prepare`]). On a
    /// single-threaded workload this equals `misses`; under concurrency
    /// two racing misses for one key may both generate (the loser's entry
    /// is discarded), so `generations >= misses` in general.
    pub generations: u64,
    /// Entries currently resident.
    pub len: usize,
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Slot {
    prepared: Arc<PreparedQuery>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: BTreeMap<CanonicalQuery, Slot>,
    tick: u64,
}

/// A bounded LRU cache of [`PreparedQuery`] entries keyed on
/// [`CanonicalQuery`], bound to one `(universe, overhead)` configuration.
///
/// Interior-mutable and `Sync`: lookups take a short mutex; the expensive
/// prepare work on a miss runs *outside* the lock, so concurrent sessions
/// never serialize on plan generation. Counters are `qpo-obs` handles —
/// detached by default, re-homed onto a registry by
/// [`ReformulationCache::with_obs`].
#[derive(Debug)]
pub struct ReformulationCache {
    capacity: usize,
    universe: u64,
    overhead: f64,
    inner: Mutex<CacheInner>,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    generations: Counter,
}

impl ReformulationCache {
    /// An empty cache holding at most `capacity` entries (min 1), for
    /// instances assembled with the given universe and overhead.
    pub fn new(capacity: usize, universe: u64, overhead: f64) -> Self {
        ReformulationCache {
            capacity: capacity.max(1),
            universe,
            overhead,
            inner: Mutex::new(CacheInner::default()),
            hits: Counter::detached(),
            misses: Counter::detached(),
            evictions: Counter::detached(),
            generations: Counter::detached(),
        }
    }

    /// Re-homes the cache's counters onto `obs.registry` under the
    /// `qpo_reformulation_cache_*` / `qpo_reformulation_generations_total`
    /// names. Call before first use — prior counts stay on the detached
    /// handles.
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.hits = obs
            .registry
            .counter("qpo_reformulation_cache_hits_total", &[]);
        self.misses = obs
            .registry
            .counter("qpo_reformulation_cache_misses_total", &[]);
        self.evictions = obs
            .registry
            .counter("qpo_reformulation_cache_evictions_total", &[]);
        self.generations = obs
            .registry
            .counter("qpo_reformulation_generations_total", &[]);
        self
    }

    /// Maximum number of resident entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The universe the cache's instances are assembled with.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// The access overhead the cache's instances are assembled with.
    pub fn overhead(&self) -> f64 {
        self.overhead
    }

    /// Current counter values and occupancy.
    pub fn stats(&self) -> CacheStats {
        let len = self
            .inner
            .lock()
            .expect("cache lock never poisoned")
            .map
            .len();
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            generations: self.generations.get(),
            len,
        }
    }

    /// Drops every entry (counters are preserved).
    pub fn clear(&self) {
        self.inner
            .lock()
            .expect("cache lock never poisoned")
            .map
            .clear();
    }

    /// Looks up the canonical key of `query`, preparing and inserting on a
    /// miss. A hit returns the shared entry without touching the
    /// plan-generation pipeline.
    pub fn get_or_prepare(
        &self,
        catalog: &Catalog,
        query: &ConjunctiveQuery,
    ) -> Result<Arc<PreparedQuery>, ReformulationError> {
        let key = CanonicalQuery::of(query);
        {
            let mut inner = self.inner.lock().expect("cache lock never poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(slot) = inner.map.get_mut(&key) {
                slot.last_used = tick;
                self.hits.inc();
                return Ok(Arc::clone(&slot.prepared));
            }
        }
        // Miss: generate outside the lock so other sessions keep serving.
        self.misses.inc();
        self.generations.inc();
        let prepared = Arc::new(prepare(catalog, query, self.universe, self.overhead)?);
        let mut inner = self.inner.lock().expect("cache lock never poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(slot) = inner.map.get_mut(&key) {
            // A racing thread published first; keep its entry so every
            // later hit serves one representative.
            slot.last_used = tick;
            return Ok(Arc::clone(&slot.prepared));
        }
        inner.map.insert(
            key,
            Slot {
                prepared: Arc::clone(&prepared),
                last_used: tick,
            },
        );
        while inner.map.len() > self.capacity {
            // Evict the least-recently-used key (ties broken by key order,
            // deterministically, courtesy of the BTreeMap walk).
            let lru = inner
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty map has an LRU entry");
            inner.map.remove(&lru);
            self.evictions.inc();
        }
        Ok(prepared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpo_catalog::domains::{movie_domain, movie_query, MOVIE_UNIVERSE};
    use qpo_datalog::parse_query;

    fn cache(capacity: usize) -> ReformulationCache {
        ReformulationCache::new(capacity, MOVIE_UNIVERSE, 5.0)
    }

    #[test]
    fn miss_then_hit_shares_the_entry() {
        let catalog = movie_domain();
        let c = cache(8);
        let a = c.get_or_prepare(&catalog, &movie_query()).unwrap();
        let b = c.get_or_prepare(&catalog, &movie_query()).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hit must share the prepared entry");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.generations, s.len), (1, 1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn renamed_query_hits_without_generation() {
        let catalog = movie_domain();
        let c = cache(8);
        let a = c.get_or_prepare(&catalog, &movie_query()).unwrap();
        let renamed =
            parse_query("q(Movie, Rev) :- play_in(ford, Movie), review_of(Rev, Movie)").unwrap();
        let b = c.get_or_prepare(&catalog, &renamed).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(c.stats().generations, 1, "hit skipped plan generation");
        // The shared entry renders plans with the representative's names.
        assert_eq!(b.query, movie_query());
    }

    #[test]
    fn different_constants_do_not_share() {
        let catalog = movie_domain();
        let c = cache(8);
        let q1 = parse_query("q(M, R) :- play_in(ford, M), review_of(R, M)").unwrap();
        let q2 = parse_query("q(M, R) :- play_in(hanks, M), review_of(R, M)").unwrap();
        let a = c.get_or_prepare(&catalog, &q1).unwrap();
        let b = c.get_or_prepare(&catalog, &q2).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(c.stats().generations, 2);
    }

    #[test]
    fn lru_bound_evicts_the_coldest_entry() {
        let catalog = movie_domain();
        let c = cache(2);
        let q = |actor: &str| {
            parse_query(&format!("q(M, R) :- play_in({actor}, M), review_of(R, M)")).unwrap()
        };
        c.get_or_prepare(&catalog, &q("a1")).unwrap();
        c.get_or_prepare(&catalog, &q("a2")).unwrap();
        c.get_or_prepare(&catalog, &q("a1")).unwrap(); // refresh a1
        c.get_or_prepare(&catalog, &q("a3")).unwrap(); // evicts a2
        let s = c.stats();
        assert_eq!((s.evictions, s.len), (1, 2));
        c.get_or_prepare(&catalog, &q("a1")).unwrap(); // still resident
        assert_eq!(c.stats().hits, 2);
        c.get_or_prepare(&catalog, &q("a2")).unwrap(); // was evicted: miss
        assert_eq!(c.stats().misses, 4);
    }

    #[test]
    fn errors_are_not_cached() {
        let catalog = movie_domain();
        let c = cache(8);
        let bad = parse_query("q(D) :- directs(D, M)").unwrap();
        assert!(c.get_or_prepare(&catalog, &bad).is_err());
        assert!(c.get_or_prepare(&catalog, &bad).is_err());
        let s = c.stats();
        assert_eq!(s.len, 0);
        assert_eq!(s.misses, 2, "each failing lookup re-runs reformulation");
    }

    #[test]
    fn prepare_matches_direct_reformulation() {
        let catalog = movie_domain();
        let p = prepare(&catalog, &movie_query(), MOVIE_UNIVERSE, 5.0).unwrap();
        let r = reformulate(&catalog, &movie_query()).unwrap();
        let inst = r.problem_instance(&catalog, MOVIE_UNIVERSE, 5.0).unwrap();
        assert_eq!(p.reformulation.buckets, r.buckets);
        assert_eq!(p.instance.buckets, inst.buckets);
        assert_eq!(p.plan_count(), 9);
    }

    #[test]
    fn with_obs_lands_counters_on_the_registry() {
        let catalog = movie_domain();
        let obs = Obs::new();
        let c = cache(8).with_obs(&obs);
        c.get_or_prepare(&catalog, &movie_query()).unwrap();
        c.get_or_prepare(&catalog, &movie_query()).unwrap();
        assert_eq!(
            obs.registry
                .counter_value("qpo_reformulation_cache_hits_total", &[]),
            1
        );
        assert_eq!(
            obs.registry
                .counter_value("qpo_reformulation_generations_total", &[]),
            1
        );
    }
}
