//! The inverse-rule reformulation algorithm [Duschka–Genesereth, PODS '97],
//! and its bridge to plan ordering (§7 of the plan-ordering paper).
//!
//! Each LAV view `V(X̄) :- p1(Ȳ1), ..., pk(Ȳk)` is inverted into one rule
//! per body atom: `pi(Ȳi') :- V(X̄)`, where existential view variables
//! become Skolem terms over the head variables. For conjunctive queries the
//! inverse rules covering the same schema relation "naturally form a
//! bucket" (§7), which is exactly how [`buckets_from_inverse_rules`] feeds
//! the ordering algorithms.

use qpo_datalog::{Atom, SourceDescription, Term};
use std::fmt;
use std::sync::Arc;

/// A term in an inverse-rule head: an ordinary term or a Skolem function of
/// the view's distinguished variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleTerm {
    /// A plain variable or constant (copied from the view).
    Plain(Term),
    /// `f_{view,index}(head vars)` — stands for the unknown value of an
    /// existential view variable.
    Skolem {
        /// View the Skolem function belongs to.
        view: Arc<str>,
        /// Which existential variable of the view (by first occurrence).
        index: usize,
        /// The Skolem function's arguments: the view's distinguished terms.
        args: Vec<Term>,
    },
}

impl fmt::Display for RuleTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleTerm::Plain(t) => write!(f, "{t}"),
            RuleTerm::Skolem { view, index, args } => {
                write!(f, "f_{view}_{index}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// One inverse rule: `head_relation(head_terms) :- source(source_terms)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InverseRule {
    /// Schema relation the rule derives.
    pub relation: Arc<str>,
    /// Derived terms (may contain Skolems).
    pub terms: Vec<RuleTerm>,
    /// The source atom in the rule body (the view head).
    pub source: Atom,
}

impl fmt::Display for InverseRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ") :- {}", self.source)
    }
}

/// Inverts a set of view definitions.
pub fn invert(views: &[SourceDescription]) -> Vec<InverseRule> {
    let mut rules = Vec::new();
    for view in views {
        let head = &view.definition.head;
        let head_vars = head.variables();
        // Existential variables, numbered by first occurrence.
        let mut existentials: Vec<Arc<str>> = Vec::new();
        for atom in &view.definition.body {
            for v in atom.variables() {
                if !head_vars.contains(&v) && !existentials.contains(&v) {
                    existentials.push(v);
                }
            }
        }
        for atom in &view.definition.body {
            let terms = atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) if !head_vars.contains(v) => {
                        let index = existentials
                            .iter()
                            .position(|e| e == v)
                            .expect("existential was collected");
                        RuleTerm::Skolem {
                            view: view.name().clone(),
                            index,
                            args: head.terms.clone(),
                        }
                    }
                    other => RuleTerm::Plain(other.clone()),
                })
                .collect();
            rules.push(InverseRule {
                relation: atom.predicate.clone(),
                terms,
                source: head.clone(),
            });
        }
    }
    rules
}

/// Reserved prefix marking Skolem constants produced by
/// [`answer_with_inverse_rules`]; contains a NUL byte so it can never
/// collide with real data values.
const SKOLEM_PREFIX: &str = "\u{0}sk:";

/// Answers `query` by *executing* the inverse-rule program over the source
/// extensions — the maximally-contained-rewriting semantics of
/// Duschka–Genesereth:
///
/// 1. every source tuple fires each of its view's inverse rules, deriving
///    schema facts in which existential view variables become Skolem
///    constants (one per `(view, existential, head-binding)`),
/// 2. the user query is evaluated over the derived schema facts,
/// 3. answers containing Skolem constants are discarded (they denote
///    unknown values and cannot be reported).
///
/// For conjunctive queries this produces exactly the union of the answers
/// of all sound plans — the equivalence the integration tests exploit to
/// cross-validate the bucket-algorithm mediator against an independent
/// semantics.
pub fn answer_with_inverse_rules(
    query: &qpo_datalog::ConjunctiveQuery,
    views: &[SourceDescription],
    sources: &qpo_datalog::Database,
) -> std::collections::BTreeSet<qpo_datalog::Tuple> {
    use qpo_datalog::{Constant, Database};
    use std::collections::BTreeMap;

    let rules = invert(views);
    let mut schema_db = Database::new();
    for rule in &rules {
        // The rule body is the view head: bind its variables per tuple.
        'tuples: for tuple in sources.tuples(&rule.source.predicate) {
            if tuple.len() != rule.source.arity() {
                continue;
            }
            let mut binding: BTreeMap<Arc<str>, Constant> = BTreeMap::new();
            for (term, value) in rule.source.terms.iter().zip(tuple) {
                match term {
                    Term::Const(c) => {
                        if c != value {
                            continue 'tuples;
                        }
                    }
                    Term::Var(v) => match binding.get(v.as_ref()) {
                        Some(prev) if prev != value => continue 'tuples,
                        Some(_) => {}
                        None => {
                            binding.insert(v.clone(), value.clone());
                        }
                    },
                }
            }
            let fact: Vec<Constant> = rule
                .terms
                .iter()
                .map(|rt| match rt {
                    RuleTerm::Plain(Term::Const(c)) => c.clone(),
                    RuleTerm::Plain(Term::Var(v)) => binding
                        .get(v.as_ref())
                        .cloned()
                        .expect("head variables are bound by the view head"),
                    RuleTerm::Skolem { view, index, args } => {
                        // Deterministic Skolem constant over the bound args.
                        let vals: Vec<String> = args
                            .iter()
                            .map(|a| match a {
                                Term::Const(c) => c.to_string(),
                                Term::Var(v) => binding
                                    .get(v.as_ref())
                                    .expect("Skolem args are head terms")
                                    .to_string(),
                            })
                            .collect();
                        Constant::str(format!("{SKOLEM_PREFIX}{view}:{index}:{}", vals.join(",")))
                    }
                })
                .collect();
            schema_db.insert(rule.relation.as_ref(), fact);
        }
    }
    schema_db
        .evaluate(query)
        .into_iter()
        .filter(|answer| {
            !answer
                .iter()
                .any(|c| matches!(c, Constant::Str(s) if s.starts_with(SKOLEM_PREFIX)))
        })
        .collect()
}

/// Groups inverse rules into buckets for the query's subgoals (§7): rule
/// `r` enters subgoal `g`'s bucket iff it derives `g`'s relation and
/// unifies with it positionally — a Skolem term unifies with a variable but
/// never with a constant (its value is unknown, so it cannot be *proven*
/// equal to a constant), and a query constant must match a plain constant
/// or a variable/Skolem-free position.
pub fn buckets_from_inverse_rules<'r>(
    query: &qpo_datalog::ConjunctiveQuery,
    rules: &'r [InverseRule],
) -> Vec<Vec<&'r InverseRule>> {
    query
        .body
        .iter()
        .map(|goal| {
            rules
                .iter()
                .filter(|r| {
                    r.relation == goal.predicate
                        && r.terms.len() == goal.arity()
                        && goal
                            .terms
                            .iter()
                            .zip(&r.terms)
                            .all(|(qt, rt)| match (qt, rt) {
                                (Term::Var(_), _) => true,
                                (Term::Const(c), RuleTerm::Plain(Term::Const(d))) => c == d,
                                (Term::Const(_), RuleTerm::Plain(Term::Var(_))) => true,
                                (Term::Const(_), RuleTerm::Skolem { .. }) => false,
                            })
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpo_datalog::parse_query;

    fn desc(text: &str) -> SourceDescription {
        SourceDescription::new(parse_query(text).unwrap())
    }

    #[test]
    fn inverts_figure1_views() {
        let rules = invert(&[
            desc("v1(A, M) :- play_in(A, M), american(M)"),
            desc("v4(R, M) :- review_of(R, M)"),
        ]);
        assert_eq!(rules.len(), 3, "one rule per body atom");
        assert_eq!(rules[0].to_string(), "play_in(A, M) :- v1(A, M)");
        assert_eq!(rules[1].to_string(), "american(M) :- v1(A, M)");
        assert_eq!(rules[2].to_string(), "review_of(R, M) :- v4(R, M)");
    }

    #[test]
    fn existentials_become_skolems() {
        let rules = invert(&[desc("v(X) :- r(X, Y), s(Y, Z)")]);
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].to_string(), "r(X, f_v_0(X)) :- v(X)");
        assert_eq!(rules[1].to_string(), "s(f_v_0(X), f_v_1(X)) :- v(X)");
        match &rules[1].terms[1] {
            RuleTerm::Skolem { view, index, args } => {
                assert_eq!(view.as_ref(), "v");
                assert_eq!(*index, 1);
                assert_eq!(args, &vec![Term::var("X")]);
            }
            other => panic!("expected Skolem, got {other:?}"),
        }
    }

    #[test]
    fn bucket_grouping_matches_bucket_algorithm_on_figure1() {
        let views = [
            desc("v1(A, M) :- play_in(A, M), american(M)"),
            desc("v2(A, M) :- play_in(A, M), russian(M)"),
            desc("v3(A, M) :- play_in(A, M)"),
            desc("v4(R, M) :- review_of(R, M)"),
            desc("v5(R, M) :- review_of(R, M)"),
            desc("v6(R, M) :- review_of(R, M)"),
        ];
        let rules = invert(&views);
        let query = parse_query("q(M, R) :- play_in(ford, M), review_of(R, M)").unwrap();
        let buckets = buckets_from_inverse_rules(&query, &rules);
        let names = |b: &[&InverseRule]| -> Vec<String> {
            b.iter().map(|r| r.source.predicate.to_string()).collect()
        };
        assert_eq!(names(&buckets[0]), vec!["v1", "v2", "v3"]);
        assert_eq!(names(&buckets[1]), vec!["v4", "v5", "v6"]);
    }

    #[test]
    fn skolem_never_unifies_with_a_constant() {
        // v hides the second attribute of r, so a query fixing it to a
        // constant cannot use the rule.
        let rules = invert(&[desc("v(X) :- r(X, Y)")]);
        let q = parse_query("q(X) :- r(X, paris)").unwrap();
        let buckets = buckets_from_inverse_rules(&q, &rules);
        assert!(buckets[0].is_empty());
        // A variable there is fine.
        let q2 = parse_query("q(X) :- r(X, Y)").unwrap();
        assert_eq!(buckets_from_inverse_rules(&q2, &rules)[0].len(), 1);
    }

    #[test]
    fn inverse_evaluation_joins_through_skolems() {
        use qpo_datalog::{Constant, Database};
        // v(X) :- r(X, Y): r's second column is a Skolem per X — answers
        // projecting it away survive, answers exposing it are dropped.
        let views = [desc("v(X) :- r(X, Y)")];
        let mut db = Database::new();
        db.insert("v", vec![Constant::int(1)]);
        db.insert("v", vec![Constant::int(2)]);

        let project = parse_query("q(X) :- r(X, Y)").unwrap();
        let answers = answer_with_inverse_rules(&project, &views, &db);
        assert_eq!(answers.len(), 2);

        let expose = parse_query("q(X, Y) :- r(X, Y)").unwrap();
        assert!(
            answer_with_inverse_rules(&expose, &views, &db).is_empty(),
            "Skolem values must never be reported"
        );
    }

    #[test]
    fn inverse_evaluation_equates_skolems_from_the_same_binding() {
        use qpo_datalog::{Constant, Database};
        // w(X, Z) :- r(X, Y), s(Y, Z): both atoms share the same Skolem for
        // Y, so the derived facts join back together.
        let views = [desc("w(X, Z) :- r(X, Y), s(Y, Z)")];
        let mut db = Database::new();
        db.insert("w", vec![Constant::int(1), Constant::int(9)]);
        let q = parse_query("q(X, Z) :- r(X, Y), s(Y, Z)").unwrap();
        let answers = answer_with_inverse_rules(&q, &views, &db);
        assert_eq!(answers.len(), 1);
        assert!(answers.contains(&vec![Constant::int(1), Constant::int(9)]));
        // Distinct bindings get distinct Skolems: no cross-tuple joins.
        db.insert("w", vec![Constant::int(2), Constant::int(8)]);
        let answers = answer_with_inverse_rules(&q, &views, &db);
        assert_eq!(answers.len(), 2, "no spurious cross joins");
        assert!(!answers.contains(&vec![Constant::int(1), Constant::int(8)]));
    }

    #[test]
    fn inverse_evaluation_respects_view_constants() {
        use qpo_datalog::{Constant, Database};
        let views = [desc("v(M) :- play_in(ford, M)")];
        let mut db = Database::new();
        db.insert("v", vec![Constant::str("witness")]);
        let q = parse_query("q(M) :- play_in(ford, M)").unwrap();
        assert_eq!(answer_with_inverse_rules(&q, &views, &db).len(), 1);
        let q2 = parse_query("q(M) :- play_in(hanks, M)").unwrap();
        assert!(answer_with_inverse_rules(&q2, &views, &db).is_empty());
    }

    #[test]
    fn constants_in_rules_must_match() {
        let rules = invert(&[desc("v(M) :- play_in(ford, M)")]);
        let q_ok = parse_query("q(M) :- play_in(ford, M)").unwrap();
        assert_eq!(buckets_from_inverse_rules(&q_ok, &rules)[0].len(), 1);
        let q_bad = parse_query("q(M) :- play_in(hanks, M)").unwrap();
        assert!(buckets_from_inverse_rules(&q_bad, &rules)[0].is_empty());
    }
}
