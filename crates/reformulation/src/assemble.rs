//! Bridge from symbolic reformulation to numeric plan ordering.
//!
//! The ordering algorithms consume a [`ProblemInstance`] — buckets of
//! source *statistics*. This module reformulates a query against a
//! [`Catalog`] with the bucket algorithm and assembles the matching
//! instance, so a caller can order plans and then map emitted index plans
//! back to executable conjunctive queries.

use crate::bucket::{candidate_plan, create_buckets, Buckets};
use crate::minicon::McdPlanSpace;
use qpo_catalog::schema::SchemaError;
use qpo_catalog::{Catalog, ProblemInstance};
use qpo_datalog::ConjunctiveQuery;
use std::fmt;

/// A reformulated query: its buckets plus everything needed to materialize
/// and execute plans.
#[derive(Debug, Clone)]
pub struct Reformulation {
    /// The user query.
    pub query: ConjunctiveQuery,
    /// One bucket of usable sources per subgoal.
    pub buckets: Buckets,
}

/// Reformulation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReformulationError {
    /// The query does not conform to the catalog's schema.
    Schema(SchemaError),
    /// Some subgoal has no usable source: no plan can cover the query.
    EmptyBucket(usize),
    /// A bucket entry references a source the catalog does not know (can
    /// only happen with inconsistent inputs).
    UnknownSource(String),
}

impl fmt::Display for ReformulationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReformulationError::Schema(e) => write!(f, "schema error: {e}"),
            ReformulationError::EmptyBucket(b) => {
                write!(f, "no source can answer subgoal {b}")
            }
            ReformulationError::UnknownSource(s) => write!(f, "unknown source `{s}`"),
        }
    }
}

impl std::error::Error for ReformulationError {}

/// Reformulates `query` against `catalog` using the bucket algorithm.
pub fn reformulate(
    catalog: &Catalog,
    query: &ConjunctiveQuery,
) -> Result<Reformulation, ReformulationError> {
    catalog
        .validate_query(query)
        .map_err(ReformulationError::Schema)?;
    let views = catalog.descriptions();
    let buckets = create_buckets(query, &views);
    if let Some(b) = buckets.iter().position(Vec::is_empty) {
        return Err(ReformulationError::EmptyBucket(b));
    }
    Ok(Reformulation {
        query: query.clone(),
        buckets,
    })
}

impl Reformulation {
    /// Assembles the numeric [`ProblemInstance`] for the ordering
    /// algorithms: bucket `i`'s entry `j` carries the statistics of the
    /// source behind `buckets[i][j]`. The per-subgoal universe is
    /// `universe`, enlarged if some extent would not fit.
    pub fn problem_instance(
        &self,
        catalog: &Catalog,
        universe: u64,
        overhead: f64,
    ) -> Result<ProblemInstance, ReformulationError> {
        let mut stat_buckets = Vec::with_capacity(self.buckets.len());
        let mut universes = Vec::with_capacity(self.buckets.len());
        for bucket in &self.buckets {
            let mut stats = Vec::with_capacity(bucket.len());
            let mut max_end = universe;
            for entry in bucket {
                let e = catalog
                    .source(&entry.source)
                    .ok_or_else(|| ReformulationError::UnknownSource(entry.source.to_string()))?;
                max_end = max_end.max(e.stats.extent.end());
                stats.push(e.stats.clone());
            }
            stat_buckets.push(stats);
            universes.push(max_end);
        }
        ProblemInstance::new(overhead, universes, stat_buckets)
            .map_err(|e| ReformulationError::UnknownSource(e.to_string()))
    }

    /// Materializes the conjunctive query plan for an emitted index plan.
    pub fn plan_query(&self, choice: &[usize]) -> ConjunctiveQuery {
        candidate_plan(&self.query, &self.buckets, choice)
    }

    /// The source names of an emitted index plan, in bucket order.
    pub fn plan_sources(&self, choice: &[usize]) -> Vec<String> {
        self.buckets
            .iter()
            .zip(choice)
            .map(|(b, &c)| b[c].source.to_string())
            .collect()
    }
}

/// Assembles one [`ProblemInstance`] per MiniCon plan space (§7):
/// generalized buckets become instance buckets, and each MCD entry carries
/// the statistics of its view. Returned instances are index-aligned with
/// `spaces`, so an emitted `(space, choice)` maps back through
/// [`McdPlanSpace::plan`].
///
/// Note: a generalized bucket covers a *set* of subgoals, so the instance's
/// "universe" per bucket is the covered sets' common scale — extents keep
/// their view's values; the `universe` argument is grown to fit them.
pub fn minicon_instances(
    catalog: &Catalog,
    spaces: &[McdPlanSpace],
    universe: u64,
    overhead: f64,
) -> Result<Vec<ProblemInstance>, ReformulationError> {
    let mut instances = Vec::with_capacity(spaces.len());
    for space in spaces {
        let mut buckets = Vec::with_capacity(space.buckets.len());
        let mut universes = Vec::with_capacity(space.buckets.len());
        for bucket in &space.buckets {
            let mut stats = Vec::with_capacity(bucket.entries.len());
            let mut max_end = universe;
            for mcd in &bucket.entries {
                let entry = catalog
                    .source(&mcd.view)
                    .ok_or_else(|| ReformulationError::UnknownSource(mcd.view.to_string()))?;
                max_end = max_end.max(entry.stats.extent.end());
                stats.push(entry.stats.clone());
            }
            buckets.push(stats);
            universes.push(max_end);
        }
        instances.push(
            ProblemInstance::new(overhead, universes, buckets)
                .map_err(|e| ReformulationError::UnknownSource(e.to_string()))?,
        );
    }
    Ok(instances)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpo_catalog::domains::{movie_domain, movie_query, MOVIE_UNIVERSE};
    use qpo_datalog::parse_query;

    #[test]
    fn movie_domain_reformulates() {
        let catalog = movie_domain();
        let r = reformulate(&catalog, &movie_query()).unwrap();
        assert_eq!(r.buckets.len(), 2);
        assert_eq!(r.buckets[0].len(), 3);
        assert_eq!(r.buckets[1].len(), 3);
        let inst = r.problem_instance(&catalog, MOVIE_UNIVERSE, 5.0).unwrap();
        assert_eq!(inst.plan_count(), 9);
        assert_eq!(inst.universes, vec![MOVIE_UNIVERSE; 2]);
        // Stats line up with the catalog.
        let v1 = catalog.source("v1").unwrap();
        assert_eq!(inst.buckets[0][0], v1.stats);
    }

    #[test]
    fn plan_query_and_sources_roundtrip() {
        let catalog = movie_domain();
        let r = reformulate(&catalog, &movie_query()).unwrap();
        assert_eq!(r.plan_sources(&[0, 1]), vec!["v1", "v5"]);
        let plan = r.plan_query(&[2, 0]);
        assert_eq!(plan.to_string(), "q(M, R) :- v3(\"ford\", M), v4(R, M)");
    }

    #[test]
    fn schema_violations_are_reported() {
        let catalog = movie_domain();
        let q = parse_query("q(D) :- directs(D, M)").unwrap();
        assert!(matches!(
            reformulate(&catalog, &q),
            Err(ReformulationError::Schema(_))
        ));
    }

    #[test]
    fn longer_queries_reformulate_too() {
        let catalog = movie_domain();
        let q = parse_query("q(A) :- play_in(A, M), review_of(rev9, M), russian(M)").unwrap();
        let r = reformulate(&catalog, &q).unwrap();
        assert_eq!(r.buckets.len(), 3);
        assert!(r.buckets.iter().all(|b| !b.is_empty()));
    }

    #[test]
    fn uncoverable_subgoal_is_reported() {
        let catalog = movie_domain();
        // A catalog whose only source covers play_in but not review_of.
        let mut small = qpo_catalog::Catalog::new(catalog.schema.clone());
        small
            .add_source(
                qpo_datalog::SourceDescription::new(
                    parse_query("v(A, M) :- play_in(A, M)").unwrap(),
                ),
                qpo_catalog::SourceStats::new(),
            )
            .unwrap();
        let err = reformulate(&small, &movie_query()).unwrap_err();
        assert_eq!(err, ReformulationError::EmptyBucket(1));
        assert!(err.to_string().contains("subgoal 1"));
    }

    #[test]
    fn minicon_instances_align_with_spaces() {
        use crate::minicon::minicon_plan_spaces;
        use qpo_catalog::{Extent, MediatedSchema, SchemaRelation, SourceStats};
        use qpo_datalog::SourceDescription;

        let schema = MediatedSchema::with_relations([
            SchemaRelation::new("r", 2),
            SchemaRelation::new("s", 2),
        ]);
        let mut catalog = qpo_catalog::Catalog::new(schema);
        let mut add = |text: &str, tuples: f64| {
            catalog
                .add_source(
                    SourceDescription::new(parse_query(text).unwrap()),
                    SourceStats::new()
                        .with_extent(Extent::new(0, 50))
                        .with_tuples(tuples),
                )
                .unwrap();
        };
        add("pair(X, Z) :- r(X, Y), s(Y, Z)", 30.0);
        add("left(X, Y) :- r(X, Y)", 10.0);
        add("right(Y, Z) :- s(Y, Z)", 20.0);

        let query = parse_query("q(X, Z) :- r(X, Y), s(Y, Z)").unwrap();
        let spaces = minicon_plan_spaces(&query, &catalog.descriptions());
        assert_eq!(spaces.len(), 2);
        let instances = minicon_instances(&catalog, &spaces, 100, 1.0).unwrap();
        assert_eq!(instances.len(), 2);
        for (space, inst) in spaces.iter().zip(&instances) {
            assert_eq!(space.buckets.len(), inst.query_len());
            for (gb, ib) in space.buckets.iter().zip(&inst.buckets) {
                assert_eq!(gb.entries.len(), ib.len());
                for (mcd, stat) in gb.entries.iter().zip(ib) {
                    assert_eq!(catalog.source(&mcd.view).unwrap().stats.tuples, stat.tuples);
                }
            }
        }
    }

    #[test]
    fn instance_universe_grows_to_fit_extents() {
        let catalog = movie_domain();
        let r = reformulate(&catalog, &movie_query()).unwrap();
        let inst = r.problem_instance(&catalog, 10, 1.0).unwrap();
        // Requested universe 10 is far too small for the extents; each
        // bucket's universe must have grown to fit its largest extent end.
        for (u, bucket) in inst.universes.iter().zip(&inst.buckets) {
            let max_end = bucket.iter().map(|s| s.extent.end()).max().unwrap();
            assert_eq!(*u, max_end.max(10));
        }
        assert!(inst.validate().is_ok());
    }
}
