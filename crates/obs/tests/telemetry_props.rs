//! Property tests for the telemetry primitives: histogram bucket/quantile
//! semantics and Prometheus label-value escaping.

use proptest::prelude::*;
use qpo_obs::registry::{bucket_edge, FINITE_BUCKETS};
use qpo_obs::{escape_label_value, Histogram, Registry};

/// Smallest bucket edge whose cumulative count reaches `rank = max(1,
/// ceil(q·n))` — the specification `HistogramSnapshot::quantile` must
/// satisfy, written directly against the recorded values instead of the
/// bucket array.
fn spec_quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let n = values.len() as f64;
    let rank = ((q.clamp(0.0, 1.0) * n).ceil() as usize).max(1);
    for i in 0..FINITE_BUCKETS {
        let edge = bucket_edge(i);
        // le-semantics: a value equal to an edge belongs to that bucket,
        // and everything at or below the smallest edge underflows into
        // bucket 0.
        let cdf = values
            .iter()
            .filter(|v| if v.is_nan() { false } else { **v <= edge })
            .count();
        if cdf >= rank {
            return Some(edge);
        }
    }
    Some(f64::INFINITY)
}

/// Arbitrary label values with the escape-relevant characters (quote,
/// backslash, newline) heavily over-represented. (The proptest shim has
/// no regex string strategy, so build strings from a char soup.)
fn label_value() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just('"'),
            Just('\\'),
            Just('\n'),
            Just('é'),
            (0u32..26).prop_map(|i| char::from(b'a' + i as u8)),
        ],
        0..24,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

fn finite_values() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(
        prop_oneof![
            // Spread across the bucket range, including sub-edge and
            // overflow magnitudes, zero, and negatives.
            (-12.0..22.0f64).prop_map(|e| 2f64.powf(e)),
            -4.0..4.0f64,
            Just(0.0),
            Just(2f64.powi(20) * 4.0),
        ],
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantile_is_smallest_edge_with_cdf_at_least_q(values in finite_values(), q in 0.0..1.0f64) {
        let h = Histogram::detached();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.quantile(q), spec_quantile(&values, q));
    }

    #[test]
    fn quantiles_are_monotone_in_q(values in finite_values(), a in 0.0..1.0f64, b in 0.0..1.0f64) {
        let h = Histogram::detached();
        for &v in &values {
            h.record(v);
        }
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(h.quantile(lo).unwrap() <= h.quantile(hi).unwrap());
    }

    #[test]
    fn every_observation_lands_in_exactly_one_bucket(values in finite_values()) {
        let h = Histogram::detached();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), values.len() as u64);
        prop_assert_eq!(snap.count, values.len() as u64);
    }

    #[test]
    fn values_beyond_the_last_edge_overflow(scale in 1.0..1e6f64) {
        let h = Histogram::detached();
        h.record(2f64.powi(20) * (1.0 + scale));
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        let snap = h.snapshot();
        prop_assert_eq!(snap.buckets[FINITE_BUCKETS], 3);
        prop_assert_eq!(h.quantile(1.0), Some(f64::INFINITY));
    }

    #[test]
    fn escaping_is_reversible_and_prometheus_safe(s in label_value()) {
        let escaped = escape_label_value(&s);
        // No raw specials survive: every quote/backslash is part of an
        // escape sequence, and newlines are gone entirely.
        prop_assert!(!escaped.contains('\n'));
        let mut chars = escaped.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                let next = chars.next();
                prop_assert!(matches!(next, Some('\\') | Some('"') | Some('n')));
            } else {
                prop_assert_ne!(c, '"');
            }
        }
        // Unescaping restores the original string exactly.
        let mut unescaped = String::new();
        let mut chars = escaped.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('\\') => unescaped.push('\\'),
                    Some('"') => unescaped.push('"'),
                    Some('n') => unescaped.push('\n'),
                    other => prop_assert!(false, "dangling escape {other:?}"),
                }
            } else {
                unescaped.push(c);
            }
        }
        prop_assert_eq!(unescaped, s);
    }

    #[test]
    fn exported_sample_lines_stay_single_line(v in label_value()) {
        let reg = Registry::new();
        reg.counter("qpo_prop_total", &[("q", v.as_str())]).inc();
        let text = qpo_obs::prometheus_text(&reg);
        // One TYPE line + one sample line, regardless of what the label
        // value contained.
        prop_assert_eq!(text.lines().count(), 2, "got:\n{}", text);
        prop_assert!(text.lines().nth(1).unwrap().starts_with("qpo_prop_total{q=\""));
    }
}
