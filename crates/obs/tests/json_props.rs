//! Property tests for the trace-file JSON reader: malformed input must
//! produce [`JsonError`]s, never panics, and everything the workspace's
//! hand-rolled writers emit must read back exactly.

use proptest::prelude::*;
use proptest::TestRng;
use qpo_obs::json::{parse_json, Json};
use rand::Rng;
use std::fmt::Write as _;

/// Serializes a [`Json`] value with the exact escaping discipline the
/// journal's writers use (`push_str`/`push_f64` in `journal.rs`), so the
/// round-trip property pins reader and writers to each other.
fn write_json(out: &mut String, v: &Json) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Number(n) => {
            let _ = write!(out, "{n}");
        }
        Json::String(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        Json::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(out, item);
            }
            out.push(']');
        }
        Json::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(out, &Json::String(k.clone()));
                out.push(':');
                write_json(out, val);
            }
            out.push('}');
        }
    }
}

fn gen_string(rng: &mut TestRng) -> String {
    // Escape-relevant characters, control bytes, and multi-byte UTF-8
    // (including an astral char, which the writer emits raw and the
    // reader must slice on byte offsets without panicking).
    const SOUP: &[char] = &[
        'a', 'b', 'z', '"', '\\', '\n', '\r', '\t', '\u{1}', '\u{1f}', 'é', 'π', '🦀', ' ', '/',
    ];
    let n = rng.gen_range(0usize..12);
    (0..n).map(|_| SOUP[rng.gen_range(0..SOUP.len())]).collect()
}

fn gen_number(rng: &mut TestRng) -> f64 {
    match rng.gen_range(0u32..4) {
        0 => rng.gen_range(-1.0e9..1.0e9f64),
        1 => rng.gen_range(-1000i64..1000) as f64,
        2 => 2f64.powi(rng.gen_range(-60i32..60)),
        _ => 0.0,
    }
}

fn gen_json(rng: &mut TestRng, depth: u32) -> Json {
    let top = if depth == 0 { 4 } else { 6 };
    match rng.gen_range(0u32..top) {
        0 => Json::Null,
        1 => Json::Bool(rng.gen_range(0u32..2) == 0),
        2 => Json::Number(gen_number(rng)),
        3 => Json::String(gen_string(rng)),
        4 => {
            let n = rng.gen_range(0usize..4);
            Json::Array((0..n).map(|_| gen_json(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.gen_range(0usize..4);
            Json::Object(
                (0..n)
                    .map(|_| (gen_string(rng), gen_json(rng, depth - 1)))
                    .collect(),
            )
        }
    }
}

/// Arbitrary [`Json`] trees, depth-bounded (the shim has no
/// `prop_recursive`, so the recursion lives in a plain generator).
struct JsonTree;

impl proptest::strategy::Strategy for JsonTree {
    type Value = Json;
    fn generate(&self, rng: &mut TestRng) -> Json {
        gen_json(rng, 3)
    }
}

/// Character soup skewed toward JSON's structural tokens, so deep but
/// broken nestings, dangling escapes, and cut-off literals all appear.
fn json_soup() -> impl proptest::strategy::Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just('{'),
            Just('}'),
            Just('['),
            Just(']'),
            Just('"'),
            Just(','),
            Just(':'),
            Just('\\'),
            Just('.'),
            Just('-'),
            Just('+'),
            Just('e'),
            Just('u'),
            Just('t'),
            Just('n'),
            Just('0'),
            Just('9'),
            Just(' '),
            Just('é'),
            Just('🦀'),
        ],
        0..48,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn malformed_input_errors_instead_of_panicking(soup in json_soup()) {
        // The property is that this call returns at all: every failure
        // path must surface as a JsonError (satellite of PR 8 — the two
        // `expect`s this reader used to contain turned char soup into
        // panics). On error, the offset stays inside the input and the
        // Display form renders.
        if let Err(e) = parse_json(&soup) {
            prop_assert!(e.offset <= soup.len(), "offset {} past {}", e.offset, soup.len());
            prop_assert!(e.to_string().contains("json error at byte"));
        }
    }

    #[test]
    fn truncated_documents_never_panic(doc in JsonTree, cut in 0.0..1.0f64) {
        let mut text = String::new();
        write_json(&mut text, &doc);
        // Truncate at an arbitrary char boundary: mid-literal, mid-escape,
        // mid-number. The reader must error or (for a prefix that happens
        // to be complete, e.g. a cut-short number) parse cleanly.
        let boundary = text
            .char_indices()
            .map(|(i, _)| i)
            .chain([text.len()])
            .nth((cut * text.chars().count() as f64) as usize)
            .unwrap_or(0);
        let _ = parse_json(&text[..boundary]);
    }

    #[test]
    fn writer_output_reads_back_exactly(doc in JsonTree) {
        let mut text = String::new();
        write_json(&mut text, &doc);
        let parsed = parse_json(&text);
        prop_assert_eq!(parsed.as_ref(), Ok(&doc), "from {}", text);
        // And the round-trip is a fixed point: re-serializing the parsed
        // value reproduces the bytes.
        let mut again = String::new();
        write_json(&mut again, parsed.as_ref().unwrap());
        prop_assert_eq!(again, text);
    }

    #[test]
    fn trailing_garbage_is_rejected(doc in JsonTree, tail in json_soup()) {
        let mut text = String::new();
        write_json(&mut text, &doc);
        let trimmed_tail = tail.trim();
        text.push(' ');
        text.push_str(trimmed_tail);
        if trimmed_tail.is_empty() {
            prop_assert!(parse_json(&text).is_ok());
        } else {
            // Any non-whitespace after one complete value is an error;
            // `parse_json` reads exactly one document.
            prop_assert!(parse_json(&text).is_err(), "accepted {}", text);
        }
    }
}
