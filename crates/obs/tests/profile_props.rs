//! Property tests for the span-tree profiler: arbitrary well-formed
//! executor-shaped traces must reconstruct into profiles whose spans
//! nest, whose self/join/wait times are non-negative and account exactly
//! for the charged latency, and whose critical path never exceeds — and
//! on complete traces bit-equals — the reported makespan.

use proptest::prelude::*;
use proptest::TestRng;
use qpo_obs::journal::{TraceJournal, Value};
use qpo_obs::{parse_json, validate_trace, ProfileIndex, SpanStatus};
use rand::Rng;

const SOURCES: &[&str] = &["alpha", "beta", "gamma", "delta"];

/// One source's retry chain: (backoff, charge, outcome) per attempt, in
/// charge order — the executor's `access_with_retries` shape.
#[derive(Debug, Clone)]
struct Chain {
    name: &'static str,
    attempts: Vec<(f64, f64, &'static str)>,
}

impl Chain {
    /// The runtime's accumulation order: backoff then charge, attempt by
    /// attempt. The profiler must re-sum in exactly this order.
    fn total(&self) -> f64 {
        let mut t = 0.0f64;
        for (backoff, charge, _) in &self.attempts {
            t += backoff;
            t += charge;
        }
        t
    }
}

#[derive(Debug, Clone)]
struct SynthPlan {
    name: String,
    utility: f64,
    chains: Vec<Chain>,
    terminal: &'static str,
    tuples: u64,
}

impl SynthPlan {
    /// Sources run in parallel, so the slowest chain bounds the plan —
    /// the executor's `plan_latency`.
    fn latency(&self) -> f64 {
        self.chains.iter().map(Chain::total).fold(0.0, f64::max)
    }
}

#[derive(Debug, Clone)]
struct SynthRun {
    lookahead: u64,
    prepare_kernel: u64,
    ordering_kernel: u64,
    plans: Vec<SynthPlan>,
}

fn gen_chain(rng: &mut TestRng, name: &'static str) -> Chain {
    let n = rng.gen_range(1usize..4);
    let attempts = (0..n)
        .map(|a| {
            let backoff = if a == 0 {
                0.0
            } else {
                rng.gen_range(0.0..2.0f64)
            };
            let last = a == n - 1;
            let outcome = if last {
                ["ok", "permanent", "transient"][rng.gen_range(0usize..3)]
            } else {
                ["transient", "timeout"][rng.gen_range(0usize..2)]
            };
            let charge = if outcome == "permanent" {
                0.0
            } else {
                rng.gen_range(0.0..10.0f64)
            };
            (backoff, charge, outcome)
        })
        .collect();
    Chain { name, attempts }
}

fn gen_plan(rng: &mut TestRng, seq: usize) -> SynthPlan {
    // A distinct subset of the source pool, in pool order (the executor
    // accesses each of a plan's sources once).
    let mut chains = Vec::new();
    for name in SOURCES {
        if rng.gen_range(0u32..3) > 0 {
            chains.push(gen_chain(rng, name));
        }
    }
    SynthPlan {
        name: format!("p{seq}"),
        utility: rng.gen_range(-5.0..5.0f64),
        terminal: [
            "plan_completed",
            "plan_completed",
            "plan_failed",
            "plan_unsound",
        ][rng.gen_range(0usize..4)],
        tuples: rng.gen_range(0u64..50),
        chains,
    }
}

fn gen_runs(rng: &mut TestRng) -> Vec<SynthRun> {
    let n = rng.gen_range(0usize..3);
    (0..n)
        .map(|_| SynthRun {
            lookahead: rng.gen_range(1u64..4),
            prepare_kernel: rng.gen_range(0u64..4),
            ordering_kernel: rng.gen_range(0u64..4),
            plans: {
                let n = rng.gen_range(0usize..6);
                (0..n).map(|seq| gen_plan(rng, seq)).collect()
            },
        })
        .collect()
}

/// Arbitrary multi-run traces (the shim has no `prop_recursive`, so the
/// structure lives in plain generators).
struct Traces;

impl proptest::strategy::Strategy for Traces {
    type Value = Vec<SynthRun>;
    fn generate(&self, rng: &mut TestRng) -> Vec<SynthRun> {
        gen_runs(rng)
    }
}

/// Journals `runs` exactly the way the concurrent executor does: a serial
/// virtual clock that emits up to `lookahead` plans ahead of the merge
/// cursor, journals each merge's retry chains and terminal (with the
/// plan's charged latency) before advancing the clock by that latency,
/// and seals the run with `run_finished{makespan: vclock}`.
fn journal_runs(runs: &[SynthRun]) -> TraceJournal {
    let journal = TraceJournal::enabled();
    for run in runs {
        let mut vclock = 0.0f64;
        journal.set_clock(vclock);
        journal.record(
            "run_started",
            vec![("lookahead", Value::U64(run.lookahead))],
        );
        for _ in 0..run.prepare_kernel {
            journal.record("kernel_refinement", vec![("frontier", Value::U64(1))]);
        }
        let mut emitted = 0usize;
        let mut answers = 0u64;
        for (i, p) in run.plans.iter().enumerate() {
            while emitted < run.plans.len() && emitted <= i + run.lookahead as usize {
                let q = &run.plans[emitted];
                journal.record(
                    "plan_emitted",
                    vec![
                        ("plan_seq", Value::U64(emitted as u64)),
                        ("plan", Value::Str(q.name.clone().into())),
                        ("utility", Value::F64(q.utility)),
                    ],
                );
                emitted += 1;
            }
            if i == 0 && run.ordering_kernel > 0 {
                for _ in 0..run.ordering_kernel {
                    journal.record("kernel_refinement", vec![("frontier", Value::U64(1))]);
                }
            }
            for c in &p.chains {
                for (a, (backoff, charge, outcome)) in c.attempts.iter().enumerate() {
                    journal.record(
                        "source_attempt",
                        vec![
                            ("plan_seq", Value::U64(i as u64)),
                            ("source", Value::Str((*c.name).into())),
                            ("attempt", Value::U64(a as u64 + 1)),
                            ("backoff", Value::F64(*backoff)),
                            ("latency", Value::F64(*charge)),
                            ("outcome", Value::Str((*outcome).into())),
                        ],
                    );
                }
            }
            let latency = p.latency();
            let mut fields = vec![
                ("plan_seq", Value::U64(i as u64)),
                ("latency", Value::F64(latency)),
            ];
            if p.terminal == "plan_completed" {
                fields.push(("tuples", Value::U64(p.tuples)));
                answers += p.tuples;
            }
            journal.record(p.terminal, fields);
            vclock += latency;
            journal.set_clock(vclock);
        }
        journal.record(
            "run_finished",
            vec![
                ("plans", Value::U64(run.plans.len() as u64)),
                ("answers", Value::U64(answers)),
                ("makespan", Value::F64(vclock)),
            ],
        );
    }
    journal
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn span_trees_nest_attribute_exactly_and_bound_the_makespan(runs in Traces) {
        let journal = journal_runs(&runs);
        let jsonl = journal.to_jsonl();
        validate_trace(&jsonl).expect("synthetic trace is structurally valid");
        let index = ProfileIndex::from_jsonl(&jsonl).expect("reconstructable");
        // The two replay paths (live events, JSONL round-trip) agree.
        prop_assert_eq!(&index, &ProfileIndex::from_journal(&journal));
        prop_assert_eq!(index.runs().len(), runs.len());
        for (profile, model) in index.runs().iter().zip(&runs) {
            profile.check().expect("span-tree invariants");
            // Critical path bit-equals the journalled makespan: both are
            // the same left-to-right fold over per-plan latencies.
            let makespan = profile.makespan.expect("run was sealed");
            prop_assert_eq!(profile.critical_path.to_bits(), makespan.to_bits());
            let mut expected = 0.0f64;
            for p in &model.plans {
                expected += p.latency();
            }
            prop_assert_eq!(expected.to_bits(), profile.critical_path.to_bits());
            prop_assert_eq!(profile.prepare_events, model.prepare_kernel);
            if !model.plans.is_empty() {
                prop_assert_eq!(profile.ordering_events, model.ordering_kernel);
            }
            // Nesting and attribution, spelled out (check() verifies the
            // same things; the point of the property is that it holds on
            // arbitrary traces, not just the executor's).
            let mut cursor = f64::NEG_INFINITY;
            for (p, m) in profile.plans.iter().zip(&model.plans) {
                prop_assert!(p.start >= cursor, "plan {} starts before its predecessor", p.seq);
                cursor = p.start;
                prop_assert!(p.end >= p.start);
                prop_assert!(p.wait >= 0.0 && p.join >= 0.0 && p.self_time >= 0.0);
                prop_assert_eq!(p.sources.len(), m.chains.len());
                for (s, c) in p.sources.iter().zip(&m.chains) {
                    // Children nest within the parent span, and the
                    // chain re-sums bit-exactly in charge order.
                    prop_assert!(s.total <= p.latency, "{} escapes plan {}", s.name, p.seq);
                    prop_assert_eq!(s.total.to_bits(), c.total().to_bits());
                    prop_assert_eq!(s.attempts, c.attempts.len() as u64);
                }
                match p.critical_source {
                    Some(ci) => {
                        let critical = p.sources[ci].total;
                        prop_assert!(p.sources.iter().all(|s| s.total <= critical));
                        // Self + join + the critical child account for
                        // the whole latency, exactly.
                        prop_assert_eq!(
                            (critical + p.join + p.self_time).to_bits(),
                            p.latency.to_bits()
                        );
                    }
                    None => {
                        prop_assert_eq!(p.self_time.to_bits(), p.latency.to_bits());
                    }
                }
                prop_assert!(p.status != SpanStatus::Open, "every synthetic plan was closed");
            }
        }
    }

    #[test]
    fn reconstruction_is_prefix_robust(runs in Traces, cut in 0.0..1.0f64) {
        // A truncated journal (crashed run, live tail) still profiles:
        // open spans keep zero latency, the critical path only shrinks,
        // and no invariant breaks.
        let jsonl = journal_runs(&runs).to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        let keep = (cut * lines.len() as f64) as usize;
        let prefix = lines[..keep.min(lines.len())].join("\n");
        let index = ProfileIndex::from_jsonl(&prefix).expect("prefixes reconstruct");
        for profile in index.runs() {
            profile.check().expect("prefix span tree is still sound");
            if let Some(makespan) = profile.makespan {
                prop_assert!(profile.critical_path <= makespan);
            }
        }
    }

    #[test]
    fn rendered_profiles_parse_and_name_every_plan(runs in Traces) {
        let journal = journal_runs(&runs);
        let index = ProfileIndex::from_journal(&journal);
        parse_json(&index.to_json()).expect("index JSON is well-formed");
        for (profile, model) in index.runs().iter().zip(&runs) {
            parse_json(&profile.to_json()).expect("run JSON is well-formed");
            let text = profile.render_text();
            prop_assert!(text.contains("critical-path"));
            for p in &model.plans {
                prop_assert!(text.contains(&p.name), "{} missing from:\n{}", p.name, text);
            }
        }
    }
}
