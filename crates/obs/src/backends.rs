//! The live backend directory behind the introspection server's
//! `/backends` endpoint.
//!
//! The mediator publishes one entry per registered source backend —
//! its label, its kind (`sim` / `store` / `tcp`), and a closure that
//! samples the backend's current wire/data epoch on demand. The board
//! lives in `qpo-obs` (which cannot depend on the runtime's backend
//! traits) precisely because it stores only these three projections;
//! the epoch closure keeps the endpoint live without the board ever
//! holding a backend type.
//!
//! [`backends_text`] is the offline renderer; the `/backends` endpoint
//! serves its bytes verbatim, so a test can diff the two.

use std::fmt;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// The epoch sampler a backend publishes: called at render time, so the
/// listing always shows the current epoch.
pub type EpochFn = Arc<dyn Fn() -> u64 + Send + Sync>;

struct BackendEntry {
    label: String,
    kind: String,
    epoch: EpochFn,
}

/// The live directory of published backends. Cloning shares the
/// underlying storage, like the other boards in this crate.
#[derive(Clone, Default)]
pub struct BackendBoard {
    inner: Arc<Mutex<Vec<BackendEntry>>>,
}

impl fmt::Debug for BackendBoard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BackendBoard")
            .field("backends", &self.snapshot().len())
            .finish()
    }
}

impl BackendBoard {
    /// An empty board.
    pub fn new() -> Self {
        BackendBoard::default()
    }

    /// Publishes (or republishes) a backend under its label. The epoch
    /// closure is sampled at every render, never stored as a value.
    pub fn publish(&self, label: &str, kind: &str, epoch: EpochFn) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let entry = BackendEntry {
            label: label.to_string(),
            kind: kind.to_string(),
            epoch,
        };
        match inner.iter_mut().find(|e| e.label == label) {
            Some(slot) => *slot = entry,
            None => inner.push(entry),
        }
    }

    /// Removes every published entry (a mediator swapping its whole
    /// registry republishes from scratch).
    pub fn clear(&self) {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    /// A point-in-time snapshot: `(label, kind, epoch)` per backend in
    /// publication order, with each epoch sampled now.
    pub fn snapshot(&self) -> Vec<(String, String, u64)> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .iter()
            .map(|e| (e.label.clone(), e.kind.clone(), (e.epoch)()))
            .collect()
    }
}

/// The `/backends` listing: one `label kind=… epoch=…` line per
/// published backend, in publication order. The endpoint serves exactly
/// these bytes.
pub fn backends_text(board: &BackendBoard) -> String {
    let entries = board.snapshot();
    if entries.is_empty() {
        return "no backends published\n".to_string();
    }
    let mut out = String::new();
    for (label, kind, epoch) in entries {
        let _ = writeln!(out, "{label} kind={kind} epoch={epoch}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn publishes_render_live_epochs_in_order() {
        let board = BackendBoard::new();
        assert_eq!(backends_text(&board), "no backends published\n");
        let epoch = Arc::new(AtomicU64::new(3));
        let sampled = Arc::clone(&epoch);
        board.publish(
            "imdb",
            "tcp",
            Arc::new(move || sampled.load(Ordering::SeqCst)),
        );
        board.publish("dblp", "store", Arc::new(|| 0));
        assert_eq!(
            backends_text(&board),
            "imdb kind=tcp epoch=3\ndblp kind=store epoch=0\n"
        );
        // The closure is sampled at render time, so epoch bumps show up.
        epoch.store(4, Ordering::SeqCst);
        assert!(backends_text(&board).starts_with("imdb kind=tcp epoch=4\n"));
        // Republishing under the same label replaces in place.
        board.publish("imdb", "sim", Arc::new(|| 9));
        assert_eq!(
            backends_text(&board),
            "imdb kind=sim epoch=9\ndblp kind=store epoch=0\n"
        );
        board.clear();
        assert_eq!(backends_text(&board), "no backends published\n");
    }
}
