//! Exporters: a Prometheus-style text exposition and a human-readable
//! summary of a [`Registry`]. (The third exporter — the JSONL trace — is
//! [`crate::TraceJournal::to_jsonl`], owned by the journal.)
//!
//! Both renderings walk a [`RegistrySnapshot`], whose `BTreeMap`-backed
//! key order makes the output deterministic for a given metric state.

use std::fmt::Write as _;

use crate::registry::{bucket_edge, MetricId, Registry, RegistrySnapshot, FINITE_BUCKETS};

/// Escapes a label value per the Prometheus text exposition format:
/// backslash → `\\`, double quote → `\"`, newline → `\n`. Everything else
/// passes through unchanged (label *values* may contain any UTF-8).
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_with_le(id: &MetricId, suffix: &str, le: &str) -> String {
    let mut pairs: Vec<String> = id
        .labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    pairs.push(format!("le=\"{le}\""));
    format!("{}{}{{{}}}", id.name, suffix, pairs.join(","))
}

fn render_suffixed(id: &MetricId, suffix: &str) -> String {
    let mut out = id.name.clone();
    out.push_str(suffix);
    if !id.labels.is_empty() {
        let pairs: Vec<String> = id
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
            .collect();
        let _ = write!(out, "{{{}}}", pairs.join(","));
    }
    out
}

fn push_type_line(out: &mut String, last: &mut Option<String>, name: &str, kind: &str) {
    if last.as_deref() != Some(name) {
        let _ = writeln!(out, "# TYPE {name} {kind}");
        *last = Some(name.to_string());
    }
}

/// Renders every metric in Prometheus text-exposition style: counters and
/// gauges as single samples, histograms as cumulative `_bucket{le=…}`
/// series plus `_sum` and `_count`.
pub fn prometheus_text(registry: &Registry) -> String {
    let snap = registry.snapshot();
    let mut out = String::new();
    let mut last_family: Option<String> = None;
    for (id, value) in &snap.counters {
        push_type_line(&mut out, &mut last_family, &id.name, "counter");
        let _ = writeln!(out, "{} {}", id.render(), value);
    }
    last_family = None;
    for (id, value) in &snap.gauges {
        push_type_line(&mut out, &mut last_family, &id.name, "gauge");
        let _ = writeln!(out, "{} {}", id.render(), value);
    }
    last_family = None;
    for (id, hist) in &snap.histograms {
        push_type_line(&mut out, &mut last_family, &id.name, "histogram");
        let mut cumulative = 0u64;
        for (i, count) in hist.buckets.iter().enumerate() {
            cumulative += count;
            // Skip interior empty prefixes? No — Prometheus convention is
            // to emit every configured bucket, and 32 lines is cheap.
            let le = if i < FINITE_BUCKETS {
                format!("{}", bucket_edge(i))
            } else {
                "+Inf".to_string()
            };
            let _ = writeln!(out, "{} {}", render_with_le(id, "_bucket", &le), cumulative);
        }
        let _ = writeln!(out, "{} {}", render_suffixed(id, "_sum"), hist.sum);
        let _ = writeln!(out, "{} {}", render_suffixed(id, "_count"), hist.count);
    }
    out
}

fn summary_section<T, F>(out: &mut String, title: &str, rows: &[(MetricId, T)], fmt: F)
where
    F: Fn(&T) -> String,
{
    if rows.is_empty() {
        return;
    }
    let _ = writeln!(out, "  {title}:");
    let width = rows
        .iter()
        .map(|(id, _)| id.render().len())
        .max()
        .unwrap_or(0);
    for (id, v) in rows {
        let _ = writeln!(out, "    {:<width$}  {}", id.render(), fmt(v));
    }
}

/// Renders a compact human summary: every counter and gauge with its
/// value, every histogram with count / sum / p50 / p95. This is the
/// general-purpose sibling of `qpo_exec::format_kernel_stats` — that
/// formatter stays for its curated kernel block; this one shows whatever
/// the registry holds. No trailing newline.
pub fn summary_text(registry: &Registry) -> String {
    let snap: RegistrySnapshot = registry.snapshot();
    let mut out = String::from("telemetry summary:\n");
    summary_section(&mut out, "counters", &snap.counters, |v| format!("{v}"));
    summary_section(&mut out, "gauges", &snap.gauges, |v| format!("{v:.4}"));
    summary_section(&mut out, "histograms", &snap.histograms, |h| {
        let p50 = h.quantile(0.50);
        let p95 = h.quantile(0.95);
        let q = |v: Option<f64>| match v {
            Some(x) => format!("{x}"),
            None => "-".to_string(),
        };
        format!(
            "count={} sum={:.4} p50≤{} p95≤{}",
            h.count,
            h.sum,
            q(p50),
            q(p95)
        )
    });
    if snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty() {
        out.push_str("  (empty)\n");
    }
    out.pop(); // drop trailing newline, like format_kernel_stats
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let reg = Registry::new();
        reg.counter("qpo_runtime_attempts_total", &[]).add(7);
        reg.counter("qpo_runtime_plans_total", &[("status", "executed")])
            .add(5);
        reg.counter("qpo_runtime_plans_total", &[("status", "failed")])
            .add(2);
        reg.gauge("qpo_runtime_virtual_time", &[]).set(12.5);
        let h = reg.histogram("qpo_runtime_access_latency", &[("source", "s1")]);
        for v in [0.5, 0.5, 3.0] {
            h.record(v);
        }
        reg
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = prometheus_text(&sample_registry());
        assert!(text.contains("# TYPE qpo_runtime_attempts_total counter\n"));
        assert!(text.contains("qpo_runtime_attempts_total 7\n"));
        assert!(text.contains("qpo_runtime_plans_total{status=\"executed\"} 5\n"));
        assert!(text.contains("qpo_runtime_plans_total{status=\"failed\"} 2\n"));
        assert_eq!(
            text.matches("# TYPE qpo_runtime_plans_total counter")
                .count(),
            1,
            "one TYPE line per family"
        );
        assert!(text.contains("# TYPE qpo_runtime_virtual_time gauge\n"));
        assert!(text.contains("qpo_runtime_virtual_time 12.5\n"));
        assert!(text.contains("# TYPE qpo_runtime_access_latency histogram\n"));
        // Cumulative buckets: the 0.5 edge holds 2, the 4 edge holds all 3.
        assert!(text.contains("qpo_runtime_access_latency_bucket{source=\"s1\",le=\"0.5\"} 2\n"));
        assert!(text.contains("qpo_runtime_access_latency_bucket{source=\"s1\",le=\"4\"} 3\n"));
        assert!(text.contains("qpo_runtime_access_latency_bucket{source=\"s1\",le=\"+Inf\"} 3\n"));
        assert!(text.contains("qpo_runtime_access_latency_sum{source=\"s1\"} 4\n"));
        assert!(text.contains("qpo_runtime_access_latency_count{source=\"s1\"} 3\n"));
    }

    #[test]
    fn summary_lists_every_metric_with_quantiles() {
        let text = summary_text(&sample_registry());
        assert!(text.starts_with("telemetry summary:\n"));
        assert!(!text.ends_with('\n'));
        for needle in [
            "counters:",
            "qpo_runtime_attempts_total",
            "qpo_runtime_plans_total{status=\"executed\"}",
            "gauges:",
            "12.5000",
            "histograms:",
            "count=3 sum=4.0000 p50≤0.5 p95≤4",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn empty_registry_renders_placeholder() {
        assert_eq!(
            summary_text(&Registry::new()),
            "telemetry summary:\n  (empty)"
        );
        assert_eq!(prometheus_text(&Registry::new()), "");
    }
}
