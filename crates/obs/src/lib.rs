//! First-party telemetry for the plan-ordering stack.
//!
//! The paper's contribution is *measured* — its Figure 6 counts interval
//! evaluations and times the arrival of the k-th best plan — so the
//! reproduction needs instrumentation that is always on, cheap, and
//! deterministic. This crate supplies it without any external dependency
//! (the workspace builds fully offline):
//!
//! - [`registry`] — a [`Registry`] of atomic [`Counter`]s, [`Gauge`]s, and
//!   fixed-bucket log₂ [`Histogram`]s, labelled by source / plan / orderer
//!   and cheap enough to leave enabled in benchmarks;
//! - [`journal`] — a [`TraceJournal`] of structured plan-lifecycle and
//!   kernel events, timestamped by the executor's **virtual clock** so a
//!   trace is bit-for-bit identical under any worker count (the
//!   fixed-seed-replay guarantee of the runtime, extended to the trace
//!   itself);
//! - [`export`] — a JSONL rendering of the journal, a Prometheus-style
//!   text exposition of the registry, and a human summary;
//! - [`json`] — a minimal JSON reader used to validate traces
//!   ([`validate_trace`]) without pulling in serde;
//! - [`quality`] — per-session ordering-quality telemetry: the online
//!   anytime curve ([`QualityTracker`]) and the live session directory
//!   ([`SessionBoard`]);
//! - [`explain`] — dominance provenance: [`EliminationCertificate`]s
//!   recorded by the ordering kernel and the [`ExplainIndex`] answering
//!   "why did plan p rank i / why was q never emitted";
//! - [`profile`] — post-hoc profiling: the [`ProfileIndex`] rebuilds a
//!   hierarchical span tree per run from the journal alone (prepare /
//!   ordering / per-plan wait / per-source attempt+backoff / join), with
//!   a critical path whose length bit-equals the executor's reported
//!   makespan and an `EXPLAIN ANALYZE`-style renderer;
//! - [`divergence`] — source drift detection: per-source online
//!   estimators ([`DivergenceMonitor`]) compared against the
//!   catalog-declared behavior, exported as `qpo_source_divergence`
//!   gauges and `drift_detected` journal events, recomputable bit-exact
//!   from the trace;
//! - [`backends`] — the live backend directory ([`BackendBoard`]): the
//!   mediator publishes each registered source backend's label, kind,
//!   and a live epoch sampler, rendered by [`backends_text`];
//! - [`serve`] — a dependency-free introspection server
//!   ([`serve::serve`]) exposing `/metrics`, `/traces`, `/sessions`,
//!   `/explain`, `/profile`, `/divergence`, `/backends`, and
//!   `/healthz` over `std::net::TcpListener`.
//!
//! The [`Obs`] bundle ties a registry, a journal, and a session board
//! together; every instrumented layer (`OrderingKernel`, the
//! `qpo-runtime` executor, `Mediator::run_concurrent_observed`) accepts
//! one.
//!
//! ```
//! use qpo_obs::{Obs, Value};
//!
//! let obs = Obs::with_trace();
//! let pops = obs.registry.counter("qpo_demo_pops_total", &[("orderer", "demo")]);
//! pops.inc();
//! obs.journal.set_clock(1.5);
//! obs.journal.record("plan_emitted", vec![("plan_seq", Value::U64(0))]);
//! obs.journal.record("plan_completed", vec![("plan_seq", Value::U64(0))]);
//! let trace = obs.journal.to_jsonl();
//! let report = qpo_obs::validate_trace(&trace).unwrap();
//! assert_eq!(report.spans_opened, report.spans_closed);
//! assert_eq!(pops.get(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backends;
pub mod divergence;
pub mod explain;
pub mod export;
pub mod journal;
pub mod json;
pub mod profile;
pub mod quality;
pub mod registry;
pub mod serve;

pub use backends::{backends_text, BackendBoard};
pub use divergence::{
    AccessObservation, DivergenceConfig, DivergenceMonitor, SourceDrift, SourceExpectation,
};
pub use explain::{
    encode_candidates, encode_plan, parse_candidates, parse_plan, EliminationCertificate,
    ExplainIndex, Explanation,
};
pub use export::{escape_label_value, prometheus_text, summary_text};
pub use journal::{validate_trace, TraceEvent, TraceJournal, TraceReport, Value};
pub use json::{parse_json, Json, JsonError};
pub use profile::{PlanSpan, ProfileIndex, RemoteSpan, RunProfile, SourceSpan, SpanStatus};
pub use quality::{QualityPoint, QualitySnapshot, QualityTracker, SessionBoard, SessionEntry};
pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use serve::IntrospectionServer;

/// The observability bundle handed to instrumented layers: one shared
/// metrics registry plus one (possibly disabled) trace journal.
///
/// Cloning is cheap and shares the underlying storage, so a single `Obs`
/// can be threaded through the mediator, the executor, and the ordering
/// kernel of one run and read back afterwards.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    /// Metric storage: counters accumulate, gauges hold the latest value,
    /// histograms bucket distributions.
    pub registry: Registry,
    /// The structured event journal. Disabled by default (recording is a
    /// no-op); see [`Obs::with_trace`].
    pub journal: TraceJournal,
    /// The live session directory behind the introspection server's
    /// `/sessions` endpoint. Always on (registration is a few map
    /// operations per session, not per plan).
    pub sessions: SessionBoard,
    /// The live backend directory behind the introspection server's
    /// `/backends` endpoint. The mediator publishes one entry per
    /// registered source backend (label, kind, live epoch sampler).
    pub backends: BackendBoard,
}

impl Obs {
    /// Registry on, journal off — the always-on metrics configuration.
    pub fn new() -> Self {
        Obs::default()
    }

    /// Registry on, journal on — the `--trace` configuration.
    pub fn with_trace() -> Self {
        Obs {
            registry: Registry::new(),
            journal: TraceJournal::enabled(),
            sessions: SessionBoard::new(),
            backends: BackendBoard::new(),
        }
    }

    /// [`Obs::with_trace`] with a bounded journal: at most `cap` events
    /// are retained (ring buffer, oldest dropped first) and every drop
    /// bumps the `qpo_trace_events_dropped_total` counter. Truncation is
    /// detectable offline — dropped events leave a seq gap that
    /// [`validate_trace`] rejects — so long-lived serving sessions can
    /// cap memory while profile reconstruction keeps requiring an
    /// un-truncated run.
    pub fn with_trace_capacity(cap: usize) -> Self {
        let obs = Obs {
            registry: Registry::new(),
            journal: TraceJournal::enabled_with_capacity(cap),
            sessions: SessionBoard::new(),
            backends: BackendBoard::new(),
        };
        obs.journal
            .set_dropped_counter(obs.registry.counter("qpo_trace_events_dropped_total", &[]));
        obs
    }
}
