//! The live introspection server: five read-only HTTP endpoints over an
//! [`Obs`] bundle, built on `std::net::TcpListener` alone (the workspace
//! builds fully offline, so no HTTP framework).
//!
//! Endpoints:
//!
//! - `/healthz` — liveness probe, `ok`;
//! - `/metrics` — the Prometheus text exposition, byte-identical to
//!   [`prometheus_text`] over the same registry;
//! - `/traces` — the JSONL journal, byte-identical to
//!   [`TraceJournal::to_jsonl`](crate::TraceJournal::to_jsonl);
//! - `/sessions` — the live session board as JSON;
//! - `/explain?run=N&plan=i,j,k` — the dominance-provenance query of
//!   [`crate::explain`] (`run` defaults to the journal's latest run);
//! - `/profile` and `/profile?run=N[&format=text]` — the span-tree
//!   profile of [`crate::profile`], reconstructed from the journal,
//!   byte-identical to the offline renderers;
//! - `/divergence` — the source-drift recomputation of
//!   [`crate::divergence`] over the journal (default config), the same
//!   bytes [`DivergenceMonitor::to_json`] renders offline;
//! - `/backends` — the published backend directory (label, kind, live
//!   epoch), byte-identical to [`backends_text`] over the same board.
//!
//! Malformed query strings on `/explain` and `/profile` return 400, and
//! request heads are bounded (oversized or unterminated heads return 400
//! without being routed).
//!
//! [`DivergenceMonitor::to_json`]: crate::divergence::DivergenceMonitor::to_json
//! The server runs one accept-loop thread and handles connections
//! serially — introspection traffic is a human with a browser or a
//! scraper on a schedule, not the query path — and every response is a
//! pure function of the observed state at request time.

use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::backends::backends_text;
use crate::divergence::{DivergenceConfig, DivergenceMonitor};
use crate::explain::{parse_plan, ExplainIndex};
use crate::export::prometheus_text;
use crate::profile::ProfileIndex;
use crate::Obs;

/// Upper bound on the request head; anything larger is rejected with a
/// 400 before routing.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A running introspection server. Dropping (or calling
/// [`IntrospectionServer::stop`]) shuts the accept loop down.
#[derive(Debug)]
pub struct IntrospectionServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl IntrospectionServer {
    /// The bound address (the OS-assigned port when started on port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread. Idempotent.
    pub fn stop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.shutdown.store(true, Ordering::SeqCst);
            // Unblock the accept call with one throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for IntrospectionServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Starts the introspection server on `127.0.0.1:port` (0 asks the OS
/// for an ephemeral port) serving the given observability bundle.
pub fn serve(obs: &Obs, port: u16) -> io::Result<IntrospectionServer> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let obs = obs.clone();
    let flag = Arc::clone(&shutdown);
    let handle = std::thread::Builder::new()
        .name("qpo-introspection".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if flag.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = stream {
                    handle_connection(stream, &obs);
                }
            }
        })?;
    Ok(IntrospectionServer {
        addr,
        shutdown,
        handle: Some(handle),
    })
}

fn handle_connection(mut stream: TcpStream, obs: &Obs) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    // Read until the end of the request head, bounded: introspection
    // requests carry no body, and a head that exceeds the cap without
    // terminating is rejected rather than routed.
    let mut terminated = false;
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") {
                    terminated = true;
                    break;
                }
                if buf.len() > MAX_HEAD_BYTES {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    let too_large = !terminated && buf.len() > MAX_HEAD_BYTES;
    let (status, reason, content_type, body) = if too_large {
        (
            400,
            "Bad Request",
            "text/plain; charset=utf-8",
            "request head too large\n".to_string(),
        )
    } else if method != "GET" {
        (
            405,
            "Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n".to_string(),
        )
    } else if !target.starts_with('/') {
        (
            400,
            "Bad Request",
            "text/plain; charset=utf-8",
            "malformed request target\n".to_string(),
        )
    } else {
        respond(target, obs)
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
    if too_large {
        // Lingering close: drain what the client keeps sending (bounded
        // by the read timeout and a byte cap) so closing the socket with
        // unread data doesn't reset the connection and discard the 400
        // we just wrote.
        let mut sink = [0u8; 1024];
        let mut drained = 0usize;
        while let Ok(n) = stream.read(&mut sink) {
            if n == 0 {
                break;
            }
            drained += n;
            if drained > 64 * MAX_HEAD_BYTES {
                break;
            }
        }
    }
}

/// Routes one request target to `(status, reason, content-type, body)`.
/// Split out (and crate-public) so tests can exercise routing without a
/// socket.
pub(crate) fn respond(target: &str, obs: &Obs) -> (u16, &'static str, &'static str, String) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/healthz" => (200, "OK", "text/plain; charset=utf-8", "ok\n".to_string()),
        "/metrics" => (
            200,
            "OK",
            "text/plain; version=0.0.4; charset=utf-8",
            prometheus_text(&obs.registry),
        ),
        "/traces" => (
            200,
            "OK",
            "application/jsonl; charset=utf-8",
            obs.journal.to_jsonl(),
        ),
        "/sessions" => (
            200,
            "OK",
            "application/json; charset=utf-8",
            obs.sessions.to_json(),
        ),
        "/explain" => explain_response(query, obs),
        "/profile" => profile_response(query, obs),
        "/backends" => (
            200,
            "OK",
            "text/plain; charset=utf-8",
            backends_text(&obs.backends),
        ),
        "/divergence" => (
            200,
            "OK",
            "application/json; charset=utf-8",
            DivergenceMonitor::from_events(&obs.journal.events(), DivergenceConfig::default())
                .to_json(),
        ),
        _ => (
            404,
            "Not Found",
            "text/plain; charset=utf-8",
            "unknown path; try /healthz /metrics /traces /sessions /explain /profile /divergence /backends\n"
                .to_string(),
        ),
    }
}

fn bad_request(usage: &str) -> (u16, &'static str, &'static str, String) {
    (
        400,
        "Bad Request",
        "text/plain; charset=utf-8",
        format!("{usage}\n"),
    )
}

fn explain_response(query: &str, obs: &Obs) -> (u16, &'static str, &'static str, String) {
    const USAGE: &str = "usage: /explain?run=N&plan=i,j,k (run defaults to the latest)";
    let mut run: Option<u64> = None;
    let mut plan: Option<Vec<usize>> = None;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        // Strict parsing: an unknown key or unparsable value is a 400,
        // never silently ignored.
        match pair.split_once('=') {
            Some(("run", v)) => match v.parse() {
                Ok(n) => run = Some(n),
                Err(_) => return bad_request(USAGE),
            },
            Some(("plan", v)) => match parse_plan(v) {
                Some(p) => plan = Some(p),
                None => return bad_request(USAGE),
            },
            _ => return bad_request(USAGE),
        }
    }
    let Some(plan) = plan else {
        return bad_request(USAGE);
    };
    let index = ExplainIndex::from_journal(&obs.journal);
    let run = run.unwrap_or_else(|| index.runs());
    let body = index.explain(run, &plan).to_json(run, &plan);
    (200, "OK", "application/json; charset=utf-8", body)
}

fn profile_response(query: &str, obs: &Obs) -> (u16, &'static str, &'static str, String) {
    const USAGE: &str = "usage: /profile[?run=N][&format=text] (run defaults to the latest)";
    let mut run: Option<u64> = None;
    let mut text = false;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        match pair.split_once('=') {
            Some(("run", v)) => match v.parse() {
                Ok(n) => run = Some(n),
                Err(_) => return bad_request(USAGE),
            },
            Some(("format", "text")) => text = true,
            Some(("format", "json")) => text = false,
            _ => return bad_request(USAGE),
        }
    }
    let index = ProfileIndex::from_journal(&obs.journal);
    if run.is_none() && !text {
        return (
            200,
            "OK",
            "application/json; charset=utf-8",
            index.to_json(),
        );
    }
    let profile = match run {
        Some(n) => index.run(n),
        None => index.latest(),
    };
    let Some(profile) = profile else {
        return (
            404,
            "Not Found",
            "text/plain; charset=utf-8",
            "no such run in the journal\n".to_string(),
        );
    };
    if text {
        (
            200,
            "OK",
            "text/plain; charset=utf-8",
            profile.render_text(),
        )
    } else {
        (
            200,
            "OK",
            "application/json; charset=utf-8",
            profile.to_json(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn sample_obs() -> Obs {
        let obs = Obs::with_trace();
        obs.registry.counter("qpo_demo_total", &[]).add(3);
        obs.journal.record("run_started", vec![]);
        obs.journal.record(
            "plan_emitted",
            vec![
                ("plan_seq", Value::U64(0)),
                ("plan", Value::Str("0,1".into())),
                ("utility", Value::F64(0.5)),
            ],
        );
        obs.sessions.open("pi", 9);
        obs
    }

    #[test]
    fn routes_are_pure_views_of_the_bundle() {
        let obs = sample_obs();
        let (status, _, _, body) = respond("/healthz", &obs);
        assert_eq!((status, body.as_str()), (200, "ok\n"));
        let (_, _, _, metrics) = respond("/metrics", &obs);
        assert_eq!(metrics, prometheus_text(&obs.registry));
        let (_, _, _, traces) = respond("/traces", &obs);
        assert_eq!(traces, obs.journal.to_jsonl());
        let (_, _, _, sessions) = respond("/sessions", &obs);
        assert_eq!(sessions, obs.sessions.to_json());
        obs.backends.publish("pi", "sim", std::sync::Arc::new(|| 7));
        let (_, _, ct, backends) = respond("/backends", &obs);
        assert_eq!(ct, "text/plain; charset=utf-8");
        assert_eq!(backends, backends_text(&obs.backends));
        assert_eq!(backends, "pi kind=sim epoch=7\n");
        let (status, _, _, body) = respond("/explain?plan=0,1", &obs);
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"emitted\""), "{body}");
        let (status, _, _, _) = respond("/explain?plan=", &obs);
        assert_eq!(status, 400);
        let (status, _, _, _) = respond("/nope", &obs);
        assert_eq!(status, 404);
    }

    #[test]
    fn server_binds_stops_and_rebinds() {
        let obs = sample_obs();
        let mut server = serve(&obs, 0).expect("bind ephemeral");
        let addr = server.addr();
        assert_ne!(addr.port(), 0);
        server.stop();
        server.stop(); // idempotent
                       // The port is released: a second server can start.
        let _again = serve(&obs, 0).expect("rebind");
    }
}
