//! The structured event journal: plan-lifecycle spans and kernel events,
//! timestamped by the executor's *virtual clock*.
//!
//! Every event carries the virtual time at which it logically happened,
//! not the wall time at which some worker thread got around to reporting
//! it. Because the runtime's virtual clock is a pure function of
//! `(seed, sources, plan order)`, the serialized journal is bit-for-bit
//! identical under any worker count — the fixed-seed-replay guarantee,
//! extended to the trace itself.
//!
//! A disabled journal (the default) makes [`TraceJournal::record`] a
//! no-op guarded by one immutable bool, so instrumented hot paths cost
//! nothing when tracing is off.
//!
//! ## Bounded journals
//!
//! [`TraceJournal::enabled_with_capacity`] caps retained events with
//! ring-buffer semantics: once full, each append drops the oldest event
//! and bumps the drop tally (exported as `qpo_trace_events_dropped_total`
//! when wired through [`crate::Obs::with_trace_capacity`]). Sequence
//! numbers keep counting across drops, so a truncated export no longer
//! starts at seq 0 and [`validate_trace`]'s contiguity check rejects it —
//! by design: profile reconstruction ([`crate::profile`]) and divergence
//! replay need the *un-truncated* run, and a capped journal is for
//! long-lived serving sessions where only the recent tail matters.

use std::borrow::Cow;
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::json::{parse_json, Json};
use crate::registry::Counter;

/// A field value attached to a trace event.
///
/// Strings are `Cow<'static, str>` so the instrumented hot paths can
/// attach static labels (outcomes, cache names) without a heap
/// allocation per event — `Value::Str("ok".into())` borrows; dynamic
/// names still pass an owned `String` through the same constructor.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (sequence numbers, counts).
    U64(u64),
    /// Floating point (latencies, utilities, clock offsets).
    F64(f64),
    /// Short string (source names, outcomes).
    Str(Cow<'static, str>),
    /// Flag.
    Bool(bool),
}

/// One journal entry: a kind, the virtual time it happened at, and a
/// small set of fields.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Monotone record index: contiguous from 0 for an unbounded journal;
    /// a capped journal keeps counting across dropped events, so the
    /// first retained seq reveals how much history is gone.
    pub seq: u64,
    /// Virtual time of the event.
    pub clock: f64,
    /// Event kind (`plan_emitted`, `source_attempt`, `kernel_refinement`, …).
    pub kind: &'static str,
    /// Event fields, serialized in insertion order.
    pub fields: Vec<(&'static str, Value)>,
}

/// Event kinds that open a plan-lifecycle span.
pub const SPAN_OPEN_KINDS: &[&str] = &["plan_emitted"];
/// Event kinds that close a plan-lifecycle span. `plan_retracted` is an
/// annotation *after* a failure, not a closer.
pub const SPAN_CLOSE_KINDS: &[&str] = &["plan_completed", "plan_failed", "plan_unsound"];

#[derive(Debug, Default)]
struct JournalInner {
    clock: f64,
    events: VecDeque<TraceEvent>,
    /// Seq of the next event (equals total events ever recorded).
    next_seq: u64,
    /// Retention cap; `None` grows without bound.
    cap: Option<usize>,
    /// Events dropped to honor the cap.
    dropped: u64,
    /// Registry counter mirroring `dropped`, when one is wired.
    dropped_counter: Option<Counter>,
}

impl JournalInner {
    fn push(&mut self, clock: f64, kind: &'static str, fields: Vec<(&'static str, Value)>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push_back(TraceEvent {
            seq,
            clock,
            kind,
            fields,
        });
        if let Some(cap) = self.cap {
            while self.events.len() > cap {
                self.events.pop_front();
                self.dropped += 1;
                if let Some(counter) = &self.dropped_counter {
                    counter.inc();
                }
            }
        }
    }
}

/// An append-only, virtually-clocked event journal. Cloning shares the
/// buffer; whether the journal records at all is fixed at construction.
#[derive(Debug, Clone, Default)]
pub struct TraceJournal {
    recording: bool,
    inner: Arc<Mutex<JournalInner>>,
}

impl TraceJournal {
    /// A journal that records. (`TraceJournal::default()` is disabled and
    /// drops everything.)
    pub fn enabled() -> Self {
        TraceJournal {
            recording: true,
            inner: Arc::default(),
        }
    }

    /// A recording journal retaining at most `cap` events, ring-buffer
    /// style: once full, each append drops the oldest event and bumps
    /// [`dropped`](Self::dropped). Sequence numbers are *not* reassigned,
    /// so [`validate_trace`]'s seq-contiguity check detects a truncated
    /// export — profile and divergence reconstruction require the full
    /// run (see the module docs).
    pub fn enabled_with_capacity(cap: usize) -> Self {
        let journal = TraceJournal::enabled();
        journal.inner.lock().unwrap_or_else(|e| e.into_inner()).cap = Some(cap);
        journal
    }

    /// The retention cap, when one was set.
    pub fn capacity(&self) -> Option<usize> {
        if !self.recording {
            return None;
        }
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).cap
    }

    /// Events dropped so far to honor the cap (0 for unbounded journals).
    pub fn dropped(&self) -> u64 {
        if !self.recording {
            return 0;
        }
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).dropped
    }

    /// Mirrors every future drop onto `counter` (the
    /// `qpo_trace_events_dropped_total` metric, when wired through
    /// [`crate::Obs::with_trace_capacity`]). Drops that already happened
    /// are back-filled so the counter and [`dropped`](Self::dropped)
    /// agree from the moment of wiring.
    pub fn set_dropped_counter(&self, counter: Counter) {
        if !self.recording {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        counter.add(inner.dropped);
        inner.dropped_counter = Some(counter);
    }

    /// Whether [`record`](Self::record) stores anything. Checking this is
    /// free — callers use it to skip building field vectors entirely.
    pub fn is_enabled(&self) -> bool {
        self.recording
    }

    /// Sets the virtual clock used by subsequent [`record`](Self::record)
    /// calls.
    pub fn set_clock(&self, t: f64) {
        if !self.recording {
            return;
        }
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).clock = t;
    }

    /// Current virtual clock (0 when disabled).
    pub fn clock(&self) -> f64 {
        if !self.recording {
            return 0.0;
        }
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).clock
    }

    /// Appends an event at the current virtual clock.
    pub fn record(&self, kind: &'static str, fields: Vec<(&'static str, Value)>) {
        if !self.recording {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let clock = inner.clock;
        inner.push(clock, kind, fields);
    }

    /// Appends an event at an explicit virtual time (does not move the
    /// clock).
    pub fn record_at(&self, clock: f64, kind: &'static str, fields: Vec<(&'static str, Value)>) {
        if !self.recording {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.push(clock, kind, fields);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        if !self.recording {
            return 0;
        }
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .events
            .len()
    }

    /// True when nothing has been recorded (always true when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies of all retained events, in order.
    pub fn events(&self) -> Vec<TraceEvent> {
        if !self.recording {
            return Vec::new();
        }
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Serializes the journal as JSON Lines: one object per event with
    /// reserved keys `seq`, `clock`, `kind`, then the event's own fields.
    /// Non-finite numbers render as `null`. The rendering is a pure
    /// function of the event list, so deterministic journals serialize to
    /// byte-identical text.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.events() {
            out.push('{');
            let _ = write!(out, "\"seq\":{}", ev.seq);
            out.push_str(",\"clock\":");
            push_f64(&mut out, ev.clock);
            let _ = write!(out, ",\"kind\":");
            push_str(&mut out, ev.kind);
            for (k, v) in &ev.fields {
                out.push(',');
                push_str(&mut out, k);
                out.push(':');
                match v {
                    Value::U64(n) => {
                        let _ = write!(out, "{n}");
                    }
                    Value::F64(x) => push_f64(&mut out, *x),
                    Value::Str(s) => push_str(&mut out, s),
                    Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                }
            }
            out.push_str("}\n");
        }
        out
    }
}

pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

pub(crate) fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// What [`validate_trace`] found in a structurally sound trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceReport {
    /// Total event lines.
    pub events: u64,
    /// Events per kind, sorted by kind.
    pub counts: BTreeMap<String, u64>,
    /// Plan-lifecycle spans opened (`plan_emitted`).
    pub spans_opened: u64,
    /// Plan-lifecycle spans closed (`plan_completed|plan_failed|plan_unsound`).
    pub spans_closed: u64,
}

impl TraceReport {
    /// Count for one event kind (0 when absent).
    pub fn count(&self, kind: &str) -> u64 {
        self.counts.get(kind).copied().unwrap_or(0)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpanState {
    Open,
    Closed,
}

/// Checks a JSONL trace for structural soundness: every line parses as an
/// object carrying `seq`/`clock`/`kind`, `seq` is contiguous from 0, the
/// virtual clock is non-decreasing in seq order *within each run* (each
/// `run_started` marker restarts the virtual clock; `null` clocks are
/// skipped), and plan-lifecycle spans open before they close (no
/// double-open, no double-close, no close without open). `plan_seq`
/// restarts at 0 on each `run_started` marker, so spans are keyed by
/// (run, plan); a journal may accumulate any number of runs. Returns
/// per-kind counts and the open/close tally; callers asserting balance
/// compare [`TraceReport::spans_opened`] with
/// [`TraceReport::spans_closed`].
///
/// Tuple-stream events are checked too: `stream_attached` must land
/// while its plan's span is open, `tuple_emitted` and `stream_evicted`
/// after the plan's `plan_emitted` in the same run (the cross-plan merge
/// may legitimately hold a plan's tuples back past its terminal event,
/// so "span exists" rather than "span open" is the sound requirement),
/// and `tuple_emitted` scores must be non-increasing within each run —
/// the global any-k ranking guarantee, checked on the wire format.
///
/// Shared-execution memo events (`memo_hit`, `memo_store`,
/// `subplan_reused`) must fall inside an *open* plan span — the
/// coordinator journals them between a plan's emission and its terminal
/// event. A `memo_hit` must additionally follow a `memo_store` for the
/// same `source` earlier in the same run, unless it carries
/// `"warm":true` (the entry survives from a prior run sharing the memo).
///
/// Remote spans (`remote_*` fields on `source_attempt`) are checked for
/// soundness: they may only appear in runs whose `run_started` declares
/// `"backend":"tcp"`, the five fields travel together
/// (`remote_total`/`remote_recv`/`remote_lookup`/`remote_encode`
/// numeric, `remote_seq` present), the server total never exceeds the
/// attempt's client-observed `latency`, and the phase sum
/// `remote_recv + remote_lookup + remote_encode` never exceeds
/// `remote_total` — the clamp-by-construction invariants the runtime's
/// decoder enforces, re-checked on the wire format.
pub fn validate_trace(jsonl: &str) -> Result<TraceReport, String> {
    let mut report = TraceReport::default();
    let mut spans: BTreeMap<(u64, u64), SpanState> = BTreeMap::new();
    let mut run: u64 = 0;
    let mut last_clock = f64::NEG_INFINITY;
    let mut last_tuple_score: Option<f64> = None;
    let mut stored_sources: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut run_finished_seen = false;
    let mut run_backend: Option<String> = None;
    for (lineno, line) in jsonl.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let obj = match parse_json(line) {
            Ok(Json::Object(pairs)) => pairs,
            Ok(other) => {
                return Err(format!(
                    "line {}: expected object, got {other:?}",
                    lineno + 1
                ))
            }
            Err(e) => return Err(format!("line {}: {e}", lineno + 1)),
        };
        let get = |key: &str| obj.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let seq = match get("seq") {
            Some(Json::Number(n)) => *n as u64,
            _ => return Err(format!("line {}: missing numeric \"seq\"", lineno + 1)),
        };
        if seq != report.events {
            return Err(format!(
                "line {}: seq {} breaks contiguity (expected {})",
                lineno + 1,
                seq,
                report.events
            ));
        }
        let clock = match get("clock") {
            Some(Json::Number(n)) => Some(*n),
            Some(Json::Null) => None,
            _ => return Err(format!("line {}: missing numeric \"clock\"", lineno + 1)),
        };
        let kind = match get("kind") {
            Some(Json::String(s)) => s.clone(),
            _ => return Err(format!("line {}: missing string \"kind\"", lineno + 1)),
        };
        report.events += 1;
        *report.counts.entry(kind.clone()).or_insert(0) += 1;
        if kind == "run_started" {
            run += 1;
            // A new run restarts the virtual clock; its own timestamp
            // opens the new monotone window, and the ranked tuple stream
            // starts over, and memo stores no longer vouch for hits.
            last_clock = f64::NEG_INFINITY;
            last_tuple_score = None;
            stored_sources.clear();
            run_finished_seen = false;
            run_backend = match get("backend") {
                Some(Json::String(s)) => Some(s.clone()),
                _ => None,
            };
        }
        if let Some(t) = clock {
            if t < last_clock {
                return Err(format!(
                    "seq {}: clock {t} decreases within run {run} (previous clock {last_clock})",
                    seq
                ));
            }
            last_clock = t;
        }

        let is_open = SPAN_OPEN_KINDS.contains(&kind.as_str());
        let is_close = SPAN_CLOSE_KINDS.contains(&kind.as_str());
        if is_open || is_close {
            let plan = match get("plan_seq") {
                Some(Json::Number(n)) => *n as u64,
                _ => {
                    return Err(format!(
                        "line {}: lifecycle event \"{kind}\" missing \"plan_seq\"",
                        lineno + 1
                    ))
                }
            };
            if is_open {
                match spans.entry((run, plan)) {
                    Entry::Vacant(slot) => {
                        slot.insert(SpanState::Open);
                        report.spans_opened += 1;
                    }
                    Entry::Occupied(_) => {
                        return Err(format!("line {}: plan {plan} emitted twice", lineno + 1))
                    }
                }
            } else {
                match spans.get_mut(&(run, plan)) {
                    Some(state @ SpanState::Open) => {
                        *state = SpanState::Closed;
                        report.spans_closed += 1;
                    }
                    Some(SpanState::Closed) => {
                        return Err(format!(
                            "line {}: plan {plan} closed twice (\"{kind}\")",
                            lineno + 1
                        ))
                    }
                    None => {
                        return Err(format!(
                            "line {}: \"{kind}\" for plan {plan} with no prior emission",
                            lineno + 1
                        ))
                    }
                }
            }
        }

        if matches!(
            kind.as_str(),
            "tuple_emitted" | "stream_attached" | "stream_evicted"
        ) {
            let plan = match get("plan_seq") {
                Some(Json::Number(n)) => *n as u64,
                _ => {
                    return Err(format!(
                        "line {}: stream event \"{kind}\" missing \"plan_seq\"",
                        lineno + 1
                    ))
                }
            };
            match spans.get(&(run, plan)) {
                Some(SpanState::Open) => {}
                Some(SpanState::Closed) if kind != "stream_attached" => {}
                Some(SpanState::Closed) => {
                    return Err(format!(
                        "line {}: \"stream_attached\" for plan {plan} after its terminal event",
                        lineno + 1
                    ))
                }
                None => {
                    return Err(format!(
                        "line {}: \"{kind}\" for plan {plan} with no prior emission",
                        lineno + 1
                    ))
                }
            }
            if kind == "tuple_emitted" {
                let score = match get("score") {
                    Some(Json::Number(n)) => *n + 0.0,
                    _ => {
                        return Err(format!(
                            "line {}: \"tuple_emitted\" missing numeric \"score\"",
                            lineno + 1
                        ))
                    }
                };
                if let Some(prev) = last_tuple_score {
                    if score.total_cmp(&prev) == std::cmp::Ordering::Greater {
                        return Err(format!(
                            "seq {seq}: tuple score {score} increases within run {run} \
                             (previous score {prev})"
                        ));
                    }
                }
                last_tuple_score = Some(score);
            }
        }

        if matches!(kind.as_str(), "memo_hit" | "memo_store" | "subplan_reused") {
            let plan = match get("plan_seq") {
                Some(Json::Number(n)) => *n as u64,
                _ => {
                    return Err(format!(
                        "line {}: memo event \"{kind}\" missing \"plan_seq\"",
                        lineno + 1
                    ))
                }
            };
            match spans.get(&(run, plan)) {
                Some(SpanState::Open) => {}
                Some(SpanState::Closed) => {
                    return Err(format!(
                        "line {}: \"{kind}\" for plan {plan} after its terminal event",
                        lineno + 1
                    ))
                }
                None => {
                    return Err(format!(
                        "line {}: \"{kind}\" for plan {plan} with no prior emission",
                        lineno + 1
                    ))
                }
            }
            if kind == "memo_hit" || kind == "memo_store" {
                let source = match get("source") {
                    Some(Json::String(s)) => s.clone(),
                    _ => {
                        return Err(format!(
                            "line {}: memo event \"{kind}\" missing string \"source\"",
                            lineno + 1
                        ))
                    }
                };
                if kind == "memo_store" {
                    stored_sources.insert(source);
                } else {
                    let warm = matches!(get("warm"), Some(Json::Bool(true)));
                    if !warm && !stored_sources.contains(&source) {
                        return Err(format!(
                            "line {}: cold \"memo_hit\" on \"{source}\" without a prior \
                             \"memo_store\" in run {run}",
                            lineno + 1
                        ));
                    }
                }
            }
        }

        // Profiling and drift events (PR 8): `run_finished` carries the
        // serial-clock makespan the profile's critical path must equal,
        // at most once per run; `source_declared` and `drift_detected`
        // carry the fields the offline divergence recomputation needs.
        if kind == "run_finished" {
            if run_finished_seen {
                return Err(format!(
                    "line {}: second \"run_finished\" in run {run}",
                    lineno + 1
                ));
            }
            run_finished_seen = true;
            if !matches!(get("makespan"), Some(Json::Number(_))) {
                return Err(format!(
                    "line {}: \"run_finished\" missing numeric \"makespan\"",
                    lineno + 1
                ));
            }
            if !matches!(get("plans"), Some(Json::Number(_))) {
                return Err(format!(
                    "line {}: \"run_finished\" missing numeric \"plans\"",
                    lineno + 1
                ));
            }
        }
        // Backend-labeled attempts (PR 9): a `source_attempt` behind a
        // typed backend error journals the classification; when present
        // it must be one of the two classes the runtime defines.
        if kind == "source_attempt" {
            if let Some(class) = get("error_class") {
                match class {
                    Json::String(s) if s == "transient" || s == "permanent" => {}
                    other => {
                        return Err(format!(
                            "line {}: \"source_attempt\" carries invalid \"error_class\" \
                             {other:?} (expected \"transient\" or \"permanent\")",
                            lineno + 1
                        ));
                    }
                }
            }
            // Remote-span soundness (PR 10): the clamp-by-construction
            // invariants the runtime's wire decoder enforces, re-checked
            // on the exported trace.
            let remote_present = obj.iter().any(|(k, _)| k.starts_with("remote_"));
            if remote_present {
                if run_backend.as_deref() != Some("tcp") {
                    return Err(format!(
                        "line {}: \"source_attempt\" carries remote-span fields but run {run} \
                         declares backend {:?} (remote spans only ride tcp-backend attempts)",
                        lineno + 1,
                        run_backend.as_deref().unwrap_or("<none>")
                    ));
                }
                let num = |field: &str| match get(field) {
                    Some(Json::Number(n)) => Ok(*n),
                    _ => Err(format!(
                        "line {}: remote span missing numeric \"{field}\" \
                         (the five remote_* fields travel together)",
                        lineno + 1
                    )),
                };
                let total = num("remote_total")?;
                let recv = num("remote_recv")?;
                let lookup = num("remote_lookup")?;
                let encode = num("remote_encode")?;
                num("remote_seq")?;
                let latency = num("latency")?;
                if total > latency {
                    return Err(format!(
                        "line {}: remote_total {total} exceeds the attempt's client \
                         latency {latency}",
                        lineno + 1
                    ));
                }
                if recv + lookup + encode > total {
                    return Err(format!(
                        "line {}: remote phase sum {} exceeds remote_total {total}",
                        lineno + 1,
                        recv + lookup + encode
                    ));
                }
            }
        }
        if kind == "source_declared" {
            if !matches!(get("source"), Some(Json::String(_))) {
                return Err(format!(
                    "line {}: \"source_declared\" missing string \"source\"",
                    lineno + 1
                ));
            }
            for field in ["latency", "transient_rate", "tuples"] {
                if !matches!(get(field), Some(Json::Number(_))) {
                    return Err(format!(
                        "line {}: \"source_declared\" missing numeric \"{field}\"",
                        lineno + 1
                    ));
                }
            }
        }
        if kind == "drift_detected" {
            for field in ["source", "stat"] {
                if !matches!(get(field), Some(Json::String(_))) {
                    return Err(format!(
                        "line {}: \"drift_detected\" missing string \"{field}\"",
                        lineno + 1
                    ));
                }
            }
            for field in ["value", "threshold"] {
                if !matches!(get(field), Some(Json::Number(_))) {
                    return Err(format!(
                        "line {}: \"drift_detected\" missing numeric \"{field}\"",
                        lineno + 1
                    ));
                }
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_journal_drops_everything_for_free() {
        let j = TraceJournal::default();
        assert!(!j.is_enabled());
        j.set_clock(5.0);
        j.record("plan_emitted", vec![("plan_seq", Value::U64(0))]);
        assert!(j.is_empty());
        assert_eq!(j.to_jsonl(), "");
        assert_eq!(j.clock(), 0.0);
    }

    #[test]
    fn clones_share_the_buffer_and_the_clock() {
        let a = TraceJournal::enabled();
        let b = a.clone();
        a.set_clock(2.0);
        b.record("kernel_refinement", vec![]);
        assert_eq!(a.len(), 1);
        assert_eq!(a.events()[0].clock, 2.0);
        assert_eq!(b.clock(), 2.0);
    }

    #[test]
    fn jsonl_rendering_is_exact() {
        let j = TraceJournal::enabled();
        j.set_clock(0.5);
        j.record(
            "source_attempt",
            vec![
                ("plan_seq", Value::U64(3)),
                ("source", Value::Str("review\"db".into())),
                ("latency", Value::F64(1.25)),
                ("ok", Value::Bool(true)),
                ("timeout", Value::F64(f64::INFINITY)),
            ],
        );
        j.record_at(0.75, "kernel_champion_change", vec![]);
        assert_eq!(
            j.to_jsonl(),
            concat!(
                "{\"seq\":0,\"clock\":0.5,\"kind\":\"source_attempt\",",
                "\"plan_seq\":3,\"source\":\"review\\\"db\",\"latency\":1.25,",
                "\"ok\":true,\"timeout\":null}\n",
                "{\"seq\":1,\"clock\":0.75,\"kind\":\"kernel_champion_change\"}\n",
            )
        );
        // record_at must not move the shared clock.
        assert_eq!(j.clock(), 0.5);
    }

    fn lifecycle_trace() -> String {
        let j = TraceJournal::enabled();
        for (kind, plan) in [
            ("plan_emitted", 0),
            ("plan_scheduled", 0),
            ("plan_emitted", 1),
            ("source_attempt", 1),
            ("plan_failed", 1),
            ("plan_retracted", 1),
            ("plan_completed", 0),
        ] {
            j.record(kind, vec![("plan_seq", Value::U64(plan))]);
        }
        j.to_jsonl()
    }

    #[test]
    fn validate_accepts_balanced_lifecycles() {
        let report = validate_trace(&lifecycle_trace()).expect("trace is sound");
        assert_eq!(report.events, 7);
        assert_eq!(report.spans_opened, 2);
        assert_eq!(report.spans_closed, 2);
        assert_eq!(report.count("plan_retracted"), 1);
        assert_eq!(report.count("no_such_kind"), 0);
    }

    #[test]
    fn validate_rejects_structural_violations() {
        let close_only = "{\"seq\":0,\"clock\":0,\"kind\":\"plan_completed\",\"plan_seq\":4}\n";
        assert!(validate_trace(close_only)
            .unwrap_err()
            .contains("no prior emission"));

        let double_open = concat!(
            "{\"seq\":0,\"clock\":0,\"kind\":\"plan_emitted\",\"plan_seq\":4}\n",
            "{\"seq\":1,\"clock\":0,\"kind\":\"plan_emitted\",\"plan_seq\":4}\n",
        );
        assert!(validate_trace(double_open)
            .unwrap_err()
            .contains("emitted twice"));

        let gap = concat!(
            "{\"seq\":0,\"clock\":0,\"kind\":\"a\"}\n",
            "{\"seq\":2,\"clock\":0,\"kind\":\"b\"}\n",
        );
        assert!(validate_trace(gap).unwrap_err().contains("contiguity"));

        assert!(validate_trace("not json\n").is_err());
        assert!(validate_trace("{\"seq\":0,\"clock\":0}\n")
            .unwrap_err()
            .contains("kind"));
    }

    #[test]
    fn validate_enforces_per_run_clock_monotonicity() {
        // Clocks may restart at each run_started marker, stall, or be
        // null — all fine as long as they never decrease within a run.
        let ok = concat!(
            "{\"seq\":0,\"clock\":0,\"kind\":\"run_started\"}\n",
            "{\"seq\":1,\"clock\":1.5,\"kind\":\"a\"}\n",
            "{\"seq\":2,\"clock\":null,\"kind\":\"b\"}\n",
            "{\"seq\":3,\"clock\":1.5,\"kind\":\"c\"}\n",
            "{\"seq\":4,\"clock\":0,\"kind\":\"run_started\"}\n",
            "{\"seq\":5,\"clock\":0.25,\"kind\":\"d\"}\n",
        );
        assert!(validate_trace(ok).is_ok());

        let backwards = concat!(
            "{\"seq\":0,\"clock\":0,\"kind\":\"run_started\"}\n",
            "{\"seq\":1,\"clock\":2,\"kind\":\"a\"}\n",
            "{\"seq\":2,\"clock\":1,\"kind\":\"b\"}\n",
        );
        let err = validate_trace(backwards).unwrap_err();
        assert!(err.contains("seq 2"), "names the violating seq: {err}");
        assert!(err.contains("decreases within run 1"), "{err}");

        // Without an intervening run_started, a clock reset is an error.
        let reset_without_marker = concat!(
            "{\"seq\":0,\"clock\":3,\"kind\":\"a\"}\n",
            "{\"seq\":1,\"clock\":0,\"kind\":\"b\"}\n",
        );
        assert!(validate_trace(reset_without_marker).is_err());
    }

    #[test]
    fn validate_checks_tuple_stream_events() {
        // A plan attaches while open, completes, and its held-back tuple
        // emits after the terminal event — legal under cross-plan gating.
        let ok = concat!(
            "{\"seq\":0,\"clock\":0,\"kind\":\"run_started\"}\n",
            "{\"seq\":1,\"clock\":0,\"kind\":\"plan_emitted\",\"plan_seq\":0}\n",
            "{\"seq\":2,\"clock\":0,\"kind\":\"stream_attached\",\"plan_seq\":0}\n",
            "{\"seq\":3,\"clock\":1,\"kind\":\"tuple_emitted\",\"plan_seq\":0,\"score\":2.5}\n",
            "{\"seq\":4,\"clock\":1,\"kind\":\"plan_completed\",\"plan_seq\":0}\n",
            "{\"seq\":5,\"clock\":2,\"kind\":\"tuple_emitted\",\"plan_seq\":0,\"score\":2.5}\n",
            "{\"seq\":6,\"clock\":3,\"kind\":\"tuple_emitted\",\"plan_seq\":0,\"score\":1}\n",
            "{\"seq\":7,\"clock\":3,\"kind\":\"stream_evicted\",\"plan_seq\":0}\n",
        );
        let report = validate_trace(ok).expect("tuple lifecycle is sound");
        assert_eq!(report.count("tuple_emitted"), 3);

        let no_plan =
            "{\"seq\":0,\"clock\":0,\"kind\":\"tuple_emitted\",\"plan_seq\":1,\"score\":1}\n";
        assert!(validate_trace(no_plan)
            .unwrap_err()
            .contains("no prior emission"));

        let late_attach = concat!(
            "{\"seq\":0,\"clock\":0,\"kind\":\"plan_emitted\",\"plan_seq\":0}\n",
            "{\"seq\":1,\"clock\":0,\"kind\":\"plan_completed\",\"plan_seq\":0}\n",
            "{\"seq\":2,\"clock\":1,\"kind\":\"stream_attached\",\"plan_seq\":0}\n",
        );
        assert!(validate_trace(late_attach)
            .unwrap_err()
            .contains("after its terminal event"));

        let increasing = concat!(
            "{\"seq\":0,\"clock\":0,\"kind\":\"plan_emitted\",\"plan_seq\":0}\n",
            "{\"seq\":1,\"clock\":0,\"kind\":\"tuple_emitted\",\"plan_seq\":0,\"score\":1}\n",
            "{\"seq\":2,\"clock\":0,\"kind\":\"tuple_emitted\",\"plan_seq\":0,\"score\":2}\n",
        );
        let err = validate_trace(increasing).unwrap_err();
        assert!(err.contains("increases within run"), "{err}");

        let no_score = concat!(
            "{\"seq\":0,\"clock\":0,\"kind\":\"plan_emitted\",\"plan_seq\":0}\n",
            "{\"seq\":1,\"clock\":0,\"kind\":\"tuple_emitted\",\"plan_seq\":0}\n",
        );
        assert!(validate_trace(no_score).unwrap_err().contains("score"));

        // run_started resets the tuple-score window like the clock's.
        let two_runs = concat!(
            "{\"seq\":0,\"clock\":0,\"kind\":\"run_started\"}\n",
            "{\"seq\":1,\"clock\":0,\"kind\":\"plan_emitted\",\"plan_seq\":0}\n",
            "{\"seq\":2,\"clock\":0,\"kind\":\"tuple_emitted\",\"plan_seq\":0,\"score\":1}\n",
            "{\"seq\":3,\"clock\":0,\"kind\":\"run_started\"}\n",
            "{\"seq\":4,\"clock\":0,\"kind\":\"plan_emitted\",\"plan_seq\":0}\n",
            "{\"seq\":5,\"clock\":0,\"kind\":\"tuple_emitted\",\"plan_seq\":0,\"score\":9}\n",
        );
        assert!(validate_trace(two_runs).is_ok());
    }

    #[test]
    fn validate_checks_source_attempt_error_class() {
        // Backend errors carry a typed classification; only the two
        // recognized labels validate (absent is fine — sim attempts
        // don't classify).
        let ok = concat!(
            "{\"seq\":0,\"clock\":0,\"kind\":\"plan_emitted\",\"plan_seq\":0}\n",
            "{\"seq\":1,\"clock\":0,\"kind\":\"source_attempt\",\"plan_seq\":0,\"source\":\"s0\",\"outcome\":\"transient\",\"error_class\":\"transient\",\"error\":\"connect refused\"}\n",
            "{\"seq\":2,\"clock\":1,\"kind\":\"source_attempt\",\"plan_seq\":0,\"source\":\"s0\",\"outcome\":\"permanent\",\"error_class\":\"permanent\",\"error\":\"unknown source\"}\n",
            "{\"seq\":3,\"clock\":1,\"kind\":\"source_attempt\",\"plan_seq\":0,\"source\":\"s1\",\"outcome\":\"ok\"}\n",
            "{\"seq\":4,\"clock\":2,\"kind\":\"plan_completed\",\"plan_seq\":0}\n",
        );
        let report = validate_trace(ok).expect("classified attempts validate");
        assert_eq!(report.count("source_attempt"), 3);

        let bad_label = concat!(
            "{\"seq\":0,\"clock\":0,\"kind\":\"plan_emitted\",\"plan_seq\":0}\n",
            "{\"seq\":1,\"clock\":0,\"kind\":\"source_attempt\",\"plan_seq\":0,\"source\":\"s0\",\"outcome\":\"transient\",\"error_class\":\"flaky\"}\n",
        );
        let err = validate_trace(bad_label).unwrap_err();
        assert!(err.contains("error_class"), "{err}");
        assert!(err.contains("line 2"), "{err}");

        let wrong_type = concat!(
            "{\"seq\":0,\"clock\":0,\"kind\":\"plan_emitted\",\"plan_seq\":0}\n",
            "{\"seq\":1,\"clock\":0,\"kind\":\"source_attempt\",\"plan_seq\":0,\"source\":\"s0\",\"outcome\":\"transient\",\"error_class\":3}\n",
        );
        assert!(validate_trace(wrong_type)
            .unwrap_err()
            .contains("error_class"));
    }

    #[test]
    fn validate_checks_memo_events() {
        // A store inside one plan's span vouches for a later cold hit in
        // another plan of the same run; subplan reuse rides inside spans.
        let ok = concat!(
            "{\"seq\":0,\"clock\":0,\"kind\":\"run_started\"}\n",
            "{\"seq\":1,\"clock\":0,\"kind\":\"plan_emitted\",\"plan_seq\":0}\n",
            "{\"seq\":2,\"clock\":1,\"kind\":\"memo_store\",\"plan_seq\":0,\"source\":\"s0\"}\n",
            "{\"seq\":3,\"clock\":1,\"kind\":\"plan_completed\",\"plan_seq\":0}\n",
            "{\"seq\":4,\"clock\":1,\"kind\":\"plan_emitted\",\"plan_seq\":1}\n",
            "{\"seq\":5,\"clock\":1,\"kind\":\"memo_hit\",\"plan_seq\":1,\"source\":\"s0\"}\n",
            "{\"seq\":6,\"clock\":1,\"kind\":\"subplan_reused\",\"plan_seq\":1,\"prefix_len\":2}\n",
            "{\"seq\":7,\"clock\":2,\"kind\":\"plan_completed\",\"plan_seq\":1}\n",
        );
        let report = validate_trace(ok).expect("memo lifecycle is sound");
        assert_eq!(report.count("memo_hit"), 1);
        assert_eq!(report.count("memo_store"), 1);
        assert_eq!(report.count("subplan_reused"), 1);

        // A cold hit with no prior store in this run is a lie.
        let unvouched = concat!(
            "{\"seq\":0,\"clock\":0,\"kind\":\"run_started\"}\n",
            "{\"seq\":1,\"clock\":0,\"kind\":\"plan_emitted\",\"plan_seq\":0}\n",
            "{\"seq\":2,\"clock\":0,\"kind\":\"memo_hit\",\"plan_seq\":0,\"source\":\"s0\"}\n",
        );
        let err = validate_trace(unvouched).unwrap_err();
        assert!(err.contains("without a prior \"memo_store\""), "{err}");

        // ...unless the hit is warm: the entry came from an earlier run.
        let warm = concat!(
            "{\"seq\":0,\"clock\":0,\"kind\":\"run_started\"}\n",
            "{\"seq\":1,\"clock\":0,\"kind\":\"plan_emitted\",\"plan_seq\":0}\n",
            "{\"seq\":2,\"clock\":0,\"kind\":\"memo_hit\",\"plan_seq\":0,",
            "\"source\":\"s0\",\"warm\":true}\n",
        );
        assert!(validate_trace(warm).is_ok());

        // run_started clears the vouching set.
        let stale_store = concat!(
            "{\"seq\":0,\"clock\":0,\"kind\":\"run_started\"}\n",
            "{\"seq\":1,\"clock\":0,\"kind\":\"plan_emitted\",\"plan_seq\":0}\n",
            "{\"seq\":2,\"clock\":0,\"kind\":\"memo_store\",\"plan_seq\":0,\"source\":\"s0\"}\n",
            "{\"seq\":3,\"clock\":0,\"kind\":\"plan_completed\",\"plan_seq\":0}\n",
            "{\"seq\":4,\"clock\":0,\"kind\":\"run_started\"}\n",
            "{\"seq\":5,\"clock\":0,\"kind\":\"plan_emitted\",\"plan_seq\":0}\n",
            "{\"seq\":6,\"clock\":0,\"kind\":\"memo_hit\",\"plan_seq\":0,\"source\":\"s0\"}\n",
        );
        assert!(validate_trace(stale_store).is_err());

        // Memo events must land inside an open span.
        let orphan =
            "{\"seq\":0,\"clock\":0,\"kind\":\"memo_store\",\"plan_seq\":0,\"source\":\"s\"}\n";
        assert!(validate_trace(orphan)
            .unwrap_err()
            .contains("no prior emission"));

        let after_close = concat!(
            "{\"seq\":0,\"clock\":0,\"kind\":\"plan_emitted\",\"plan_seq\":0}\n",
            "{\"seq\":1,\"clock\":0,\"kind\":\"plan_completed\",\"plan_seq\":0}\n",
            "{\"seq\":2,\"clock\":0,\"kind\":\"subplan_reused\",\"plan_seq\":0,\"prefix_len\":1}\n",
        );
        assert!(validate_trace(after_close)
            .unwrap_err()
            .contains("after its terminal event"));

        let no_source = concat!(
            "{\"seq\":0,\"clock\":0,\"kind\":\"plan_emitted\",\"plan_seq\":0}\n",
            "{\"seq\":1,\"clock\":0,\"kind\":\"memo_store\",\"plan_seq\":0}\n",
        );
        assert!(validate_trace(no_source).unwrap_err().contains("source"));
    }

    #[test]
    fn capped_journal_drops_oldest_and_keeps_counting() {
        let j = TraceJournal::enabled_with_capacity(3);
        assert_eq!(j.capacity(), Some(3));
        for i in 0..5u64 {
            j.record("tick", vec![("i", Value::U64(i))]);
        }
        assert_eq!(j.len(), 3, "ring buffer holds the cap");
        assert_eq!(j.dropped(), 2);
        let seqs: Vec<u64> = j.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest dropped, seqs never reused");
        // A truncated export no longer starts at seq 0, so the
        // contiguity check catches it — profile reconstruction must not
        // silently run on partial history.
        let err = validate_trace(&j.to_jsonl()).unwrap_err();
        assert!(err.contains("contiguity"), "{err}");
        // An un-truncated capped journal still validates.
        let fresh = TraceJournal::enabled_with_capacity(8);
        fresh.record("plan_emitted", vec![("plan_seq", Value::U64(0))]);
        fresh.record("plan_completed", vec![("plan_seq", Value::U64(0))]);
        assert!(validate_trace(&fresh.to_jsonl()).is_ok());
        assert_eq!(fresh.dropped(), 0);
    }

    #[test]
    fn dropped_counter_mirrors_the_tally() {
        let j = TraceJournal::enabled_with_capacity(1);
        j.record("a", vec![]);
        j.record("b", vec![]); // drops "a" before the counter is wired
        let counter = Counter::detached();
        j.set_dropped_counter(counter.clone());
        assert_eq!(counter.get(), 1, "wiring back-fills earlier drops");
        j.record("c", vec![]);
        j.record("d", vec![]);
        assert_eq!(counter.get(), 3);
        assert_eq!(j.dropped(), 3);
        let obs = crate::Obs::with_trace_capacity(1);
        obs.journal.record("a", vec![]);
        obs.journal.record("b", vec![]);
        assert_eq!(
            obs.registry
                .counter("qpo_trace_events_dropped_total", &[])
                .get(),
            1
        );
    }

    #[test]
    fn validate_checks_remote_span_soundness() {
        let tcp_run = |attempt_line: &str| {
            format!(
                concat!(
                    "{{\"seq\":0,\"clock\":0,\"kind\":\"run_started\",\"backend\":\"tcp\"}}\n",
                    "{{\"seq\":1,\"clock\":0,\"kind\":\"plan_emitted\",\"plan_seq\":0}}\n",
                    "{}\n",
                    "{{\"seq\":3,\"clock\":2,\"kind\":\"plan_completed\",\"plan_seq\":0}}\n",
                ),
                attempt_line
            )
        };
        let ok = tcp_run(
            "{\"seq\":2,\"clock\":1,\"kind\":\"source_attempt\",\"plan_seq\":0,\
             \"source\":\"s0\",\"attempt\":1,\"backoff\":0,\"latency\":2.0,\"outcome\":\"ok\",\
             \"remote_total\":1.5,\"remote_recv\":0.25,\"remote_lookup\":1.0,\
             \"remote_encode\":0.25,\"remote_seq\":7}",
        );
        assert!(validate_trace(&ok).is_ok());

        // Server total larger than the client-observed latency is a lie.
        let inflated = tcp_run(
            "{\"seq\":2,\"clock\":1,\"kind\":\"source_attempt\",\"plan_seq\":0,\
             \"source\":\"s0\",\"attempt\":1,\"backoff\":0,\"latency\":1.0,\"outcome\":\"ok\",\
             \"remote_total\":1.5,\"remote_recv\":0.25,\"remote_lookup\":1.0,\
             \"remote_encode\":0.25,\"remote_seq\":7}",
        );
        let err = validate_trace(&inflated).unwrap_err();
        assert!(
            err.contains("exceeds the attempt's client latency"),
            "{err}"
        );

        // Phases summing beyond the total violate the decoder's clamp.
        let overfull = tcp_run(
            "{\"seq\":2,\"clock\":1,\"kind\":\"source_attempt\",\"plan_seq\":0,\
             \"source\":\"s0\",\"attempt\":1,\"backoff\":0,\"latency\":2.0,\"outcome\":\"ok\",\
             \"remote_total\":1.0,\"remote_recv\":0.5,\"remote_lookup\":0.5,\
             \"remote_encode\":0.5,\"remote_seq\":7}",
        );
        assert!(validate_trace(&overfull).unwrap_err().contains("phase sum"));

        // The five fields travel together.
        let partial = tcp_run(
            "{\"seq\":2,\"clock\":1,\"kind\":\"source_attempt\",\"plan_seq\":0,\
             \"source\":\"s0\",\"attempt\":1,\"backoff\":0,\"latency\":2.0,\"outcome\":\"ok\",\
             \"remote_total\":1.0}",
        );
        assert!(validate_trace(&partial)
            .unwrap_err()
            .contains("travel together"));

        // Remote spans only ride tcp-backend runs.
        let sim = concat!(
            "{\"seq\":0,\"clock\":0,\"kind\":\"run_started\",\"backend\":\"sim\"}\n",
            "{\"seq\":1,\"clock\":0,\"kind\":\"plan_emitted\",\"plan_seq\":0}\n",
            "{\"seq\":2,\"clock\":1,\"kind\":\"source_attempt\",\"plan_seq\":0,\
             \"source\":\"s0\",\"attempt\":1,\"backoff\":0,\"latency\":2.0,\"outcome\":\"ok\",\
             \"remote_total\":1.5,\"remote_recv\":0.25,\"remote_lookup\":1.0,\
             \"remote_encode\":0.25,\"remote_seq\":7}\n",
        );
        assert!(validate_trace(sim)
            .unwrap_err()
            .contains("only ride tcp-backend attempts"));
    }

    #[test]
    fn poisoned_lock_still_records_and_exports() {
        let j = TraceJournal::enabled();
        j.set_clock(1.0);
        j.record("plan_emitted", vec![("plan_seq", Value::U64(0))]);
        let poisoner = j.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.inner.lock().unwrap();
            panic!("worker dies mid-record");
        })
        .join();
        assert!(j.inner.is_poisoned(), "the panic must poison the lock");
        j.record("plan_completed", vec![("plan_seq", Value::U64(0))]);
        assert_eq!(j.len(), 2);
        assert_eq!(j.clock(), 1.0);
        let report = validate_trace(&j.to_jsonl()).expect("export survives poison");
        assert_eq!(report.events, 2);
        assert_eq!(report.spans_opened, report.spans_closed);
    }

    #[test]
    fn validate_round_trips_an_enabled_journal() {
        let j = TraceJournal::enabled();
        j.set_clock(1.0);
        j.record(
            "plan_emitted",
            vec![("plan_seq", Value::U64(0)), ("utility", Value::F64(0.75))],
        );
        j.record(
            "plan_unsound",
            vec![
                ("plan_seq", Value::U64(0)),
                ("source", Value::Str("s".into())),
            ],
        );
        let report = validate_trace(&j.to_jsonl()).expect("round trip");
        assert_eq!(report.events, j.len() as u64);
        assert_eq!(report.spans_opened, report.spans_closed);
    }
}
