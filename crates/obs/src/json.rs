//! A minimal JSON reader, just large enough to validate the trace files
//! this workspace writes. The offline build has no serde; the exporters
//! hand-roll their output, and this module closes the loop so tests and
//! the CI gate can parse it back.
//!
//! Intentional simplifications: numbers are `f64`, objects are ordered
//! `(key, value)` vectors (duplicate keys are preserved, first match
//! wins in [`Json::get`]), and `\uXXXX` escapes outside the BMP must be
//! paired surrogates.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (lossy: i64/u64 beyond 2⁵³ round).
    Number(f64),
    /// A string with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in source order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// First value for `key` when this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, when this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, when this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse_json(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') if self.eat("null") => Ok(Json::Null),
            Some(b't') if self.eat("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // The scanned range is ASCII by construction, but malformed input
        // must surface as a parse error, never a panic.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("malformed number"))?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                if !self.eat("\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code).ok_or_else(|| self.err("bad code point"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar; the input is a &str so the
                    // boundary math is safe.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ascii \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("non-hex \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse_json("null").unwrap(), Json::Null);
        assert_eq!(parse_json(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse_json("false").unwrap(), Json::Bool(false));
        assert_eq!(parse_json("-2.5e2").unwrap(), Json::Number(-250.0));
        assert_eq!(parse_json("0").unwrap(), Json::Number(0.0));
        assert_eq!(
            parse_json("\"a\\n\\\"b\\\\\"").unwrap(),
            Json::String("a\n\"b\\".into())
        );
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse_json("\"\\u00e9\"").unwrap(), Json::String("é".into()));
        assert_eq!(
            parse_json("\"\\ud83d\\ude00\"").unwrap(),
            Json::String("😀".into())
        );
        assert!(parse_json("\"\\ud83d\"").is_err(), "lone surrogate");
        assert_eq!(
            parse_json("\"héllo\"").unwrap(),
            Json::String("héllo".into())
        );
    }

    #[test]
    fn containers_and_accessors() {
        let v = parse_json("{\"a\": [1, 2, {\"b\": \"c\"}], \"d\": null}").unwrap();
        assert_eq!(v.get("d"), Some(&Json::Null));
        let arr = match v.get("a") {
            Some(Json::Array(items)) => items,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[2].get("b").and_then(Json::as_str), Some("c"));
        assert_eq!(parse_json("[]").unwrap(), Json::Array(vec![]));
        assert_eq!(parse_json("{}").unwrap(), Json::Object(vec![]));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "{'a': 1}",
            "[1,]",
        ] {
            assert!(parse_json(bad).is_err(), "{bad:?} should fail");
        }
        let err = parse_json("[1, x]").unwrap_err();
        assert!(err.to_string().contains("byte 4"), "{err}");
    }
}
