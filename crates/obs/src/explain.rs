//! Dominance provenance: elimination certificates and the `explain(plan)`
//! query.
//!
//! When the ordering kernel prunes an abstract plan it now leaves behind
//! an [`EliminationCertificate`] — the eliminated candidate set, the
//! champion that dominated it, both utility intervals, and the context
//! epoch the comparison happened at. A certificate is *independently
//! checkable*: [`EliminationCertificate::comparison_holds`] replays the
//! interval comparison from the recorded numbers alone, and the kernel
//! side (`qpo_core::verify_certificates`) re-derives the intervals
//! themselves from the problem instance.
//!
//! [`ExplainIndex`] turns a recorded journal into an answerable query:
//! "why did plan p rank i" (it was emitted, here is its rank, utility,
//! and virtual time) and "why was q never emitted" (here is the
//! certificate of the dominance comparison that pruned the abstract
//! candidate set containing q). This module is dependency-free — plans
//! are bucket-index vectors and intervals are `(lo, hi)` pairs — so the
//! producing kernel stays the only crate that knows what a utility
//! measure is.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::journal::{push_f64, push_str, TraceEvent, TraceJournal, Value};

/// Renders a concrete plan (one source index per bucket) as the compact
/// journal/URL form `"1,0,2"`.
pub fn encode_plan(plan: &[usize]) -> String {
    let mut out = String::new();
    for (i, &s) in plan.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{s}");
    }
    out
}

/// Parses the `"1,0,2"` form back into a plan. `None` on empty or
/// malformed input.
pub fn parse_plan(s: &str) -> Option<Vec<usize>> {
    if s.is_empty() {
        return None;
    }
    s.split(',').map(|p| p.trim().parse().ok()).collect()
}

/// Renders an abstract plan (a candidate *set* per bucket) as
/// `"0,1|2|0,3"` — buckets joined by `|`, indices within a bucket by `,`.
/// Writes into one pre-sized buffer: the kernel journals two of these per
/// elimination, so this sits on the tracing hot path.
pub fn encode_candidates(cands: &[Vec<usize>]) -> String {
    let indices: usize = cands.iter().map(Vec::len).sum();
    let mut out = String::with_capacity(3 * indices + cands.len());
    for (b, bucket) in cands.iter().enumerate() {
        if b > 0 {
            out.push('|');
        }
        for (i, &s) in bucket.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{s}");
        }
    }
    out
}

/// Parses the `"0,1|2|0,3"` form back into per-bucket candidate sets.
pub fn parse_candidates(s: &str) -> Option<Vec<Vec<usize>>> {
    if s.is_empty() {
        return None;
    }
    s.split('|').map(parse_plan).collect()
}

/// A compact, independently checkable record of one dominance
/// elimination: the champion's utility interval sat strictly above the
/// victim's (or tied at the boundary with the smaller plan id winning),
/// so every concrete plan in the victim's candidate sets was pruned
/// without evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct EliminationCertificate {
    /// Pool id of the eliminated abstract plan.
    pub victim_id: u64,
    /// Pool id of the dominating champion.
    pub champion_id: u64,
    /// Per-bucket candidate sets of the eliminated abstract plan.
    pub victim: Vec<Vec<usize>>,
    /// Per-bucket candidate sets of the champion at comparison time.
    pub champion: Vec<Vec<usize>>,
    /// `(lo, hi)` utility interval of the victim.
    pub victim_interval: (f64, f64),
    /// `(lo, hi)` utility interval of the champion.
    pub champion_interval: (f64, f64),
    /// Execution-context epoch the comparison happened at (the number of
    /// plans recorded as executed before it).
    pub epoch: u64,
}

impl EliminationCertificate {
    /// Replays the dominance comparison from the recorded numbers alone:
    /// `champion.lo > victim.hi`, or a boundary tie broken toward the
    /// smaller pool id. This must mirror the kernel's `eliminates`
    /// predicate exactly — `qpo_core` pins the two together by test.
    pub fn comparison_holds(&self) -> bool {
        self.champion_interval.0 > self.victim_interval.1
            || (self.champion_interval.0 == self.victim_interval.1
                && self.champion_id < self.victim_id)
    }

    /// True when `plan` (one source per bucket) is contained in the
    /// eliminated candidate sets — i.e. this certificate is why `plan`
    /// was never emitted.
    pub fn covers(&self, plan: &[usize]) -> bool {
        plan.len() == self.victim.len()
            && plan
                .iter()
                .zip(&self.victim)
                .all(|(s, bucket)| bucket.contains(s))
    }

    /// Renders the certificate as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"victim_id\":{},\"champion_id\":{}",
            self.victim_id, self.champion_id
        );
        out.push_str(",\"victim\":");
        push_str(&mut out, &encode_candidates(&self.victim));
        out.push_str(",\"champion\":");
        push_str(&mut out, &encode_candidates(&self.champion));
        out.push_str(",\"victim_interval\":[");
        push_f64(&mut out, self.victim_interval.0);
        out.push(',');
        push_f64(&mut out, self.victim_interval.1);
        out.push_str("],\"champion_interval\":[");
        push_f64(&mut out, self.champion_interval.0);
        out.push(',');
        push_f64(&mut out, self.champion_interval.1);
        let _ = write!(out, "],\"epoch\":{}}}", self.epoch);
        out
    }
}

/// The answer to `explain(plan)` for one run of a journal.
#[derive(Debug, Clone, PartialEq)]
pub enum Explanation {
    /// The plan was emitted: its rank (0-based emission index), utility,
    /// and the virtual time it went out.
    Emitted {
        /// 0-based emission index within the run.
        rank: u64,
        /// The utility it was emitted with.
        utility: f64,
        /// Virtual time of the emission.
        clock: f64,
    },
    /// The plan was never emitted; `certificate` is the (last) dominance
    /// elimination whose candidate sets contain it.
    Eliminated {
        /// The covering certificate (the last one recorded).
        certificate: EliminationCertificate,
        /// How many recorded certificates cover the plan.
        matches: u64,
    },
    /// The journal has no emission and no covering certificate for the
    /// plan in that run (not part of the plan space, run truncated, or
    /// certificates not recorded).
    Unknown,
}

impl Explanation {
    /// Renders the explanation for (`run`, `plan`) as one JSON object.
    pub fn to_json(&self, run: u64, plan: &[usize]) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"run\":{run},\"plan\":");
        push_str(&mut out, &encode_plan(plan));
        match self {
            Explanation::Emitted {
                rank,
                utility,
                clock,
            } => {
                let _ = write!(out, ",\"status\":\"emitted\",\"rank\":{rank},\"utility\":");
                push_f64(&mut out, *utility);
                out.push_str(",\"clock\":");
                push_f64(&mut out, *clock);
                out.push('}');
            }
            Explanation::Eliminated {
                certificate,
                matches,
            } => {
                let _ = write!(
                    out,
                    ",\"status\":\"eliminated\",\"matches\":{matches},\"certificate\":{}}}",
                    certificate.to_json()
                );
            }
            Explanation::Unknown => out.push_str(",\"status\":\"unknown\"}"),
        }
        out
    }
}

/// An index over a recorded journal answering "why did plan p rank i /
/// why was q never emitted", per run. Runs are numbered the way
/// `validate_trace` numbers them: 0 before any `run_started` marker,
/// then incremented at each marker.
#[derive(Debug, Clone, Default)]
pub struct ExplainIndex {
    emissions: BTreeMap<(u64, String), (u64, f64, f64)>,
    certificates: Vec<(u64, EliminationCertificate)>,
    runs: u64,
}

fn field<'a>(ev: &'a TraceEvent, name: &str) -> Option<&'a Value> {
    ev.fields.iter().find(|(k, _)| *k == name).map(|(_, v)| v)
}

fn u64_field(ev: &TraceEvent, name: &str) -> Option<u64> {
    match field(ev, name) {
        Some(Value::U64(n)) => Some(*n),
        _ => None,
    }
}

fn f64_field(ev: &TraceEvent, name: &str) -> Option<f64> {
    match field(ev, name) {
        Some(Value::F64(x)) => Some(*x),
        _ => None,
    }
}

fn str_field<'a>(ev: &'a TraceEvent, name: &str) -> Option<&'a str> {
    match field(ev, name) {
        Some(Value::Str(s)) => Some(s),
        _ => None,
    }
}

impl ExplainIndex {
    /// Builds the index from recorded events (in seq order).
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut index = ExplainIndex::default();
        let mut run = 0u64;
        for ev in events {
            match ev.kind {
                "run_started" => {
                    run += 1;
                    index.runs = run;
                }
                "plan_emitted" => {
                    // Only emissions that carry the encoded plan are
                    // explainable; older producers omit it.
                    if let Some(plan) = str_field(ev, "plan") {
                        let rank = u64_field(ev, "plan_seq").unwrap_or(0);
                        let utility = f64_field(ev, "utility").unwrap_or(f64::NAN);
                        index
                            .emissions
                            .entry((run, plan.to_string()))
                            .or_insert((rank, utility, ev.clock));
                    }
                }
                "kernel_elimination" => {
                    let cert = (|| {
                        Some(EliminationCertificate {
                            victim_id: u64_field(ev, "plan_id")?,
                            champion_id: u64_field(ev, "champion_id")?,
                            victim: parse_candidates(str_field(ev, "victim")?)?,
                            champion: parse_candidates(str_field(ev, "champion")?)?,
                            victim_interval: (
                                f64_field(ev, "victim_lo")?,
                                f64_field(ev, "victim_hi")?,
                            ),
                            champion_interval: (
                                f64_field(ev, "champion_lo")?,
                                f64_field(ev, "champion_hi")?,
                            ),
                            epoch: u64_field(ev, "epoch")?,
                        })
                    })();
                    if let Some(cert) = cert {
                        index.certificates.push((run, cert));
                    }
                }
                _ => {}
            }
        }
        index
    }

    /// Builds the index straight from a journal.
    pub fn from_journal(journal: &TraceJournal) -> Self {
        ExplainIndex::from_events(&journal.events())
    }

    /// Number of `run_started` markers seen (the latest run id).
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Certificates recorded for `run`, in journal order.
    pub fn certificates(&self, run: u64) -> Vec<EliminationCertificate> {
        self.certificates
            .iter()
            .filter(|(r, _)| *r == run)
            .map(|(_, c)| c.clone())
            .collect()
    }

    /// Explains `plan` within `run`. An emission wins over a certificate:
    /// iDrips may prune an abstract candidate set in one round yet emit a
    /// refined plan from it later, and an emitted plan *was* ranked.
    pub fn explain(&self, run: u64, plan: &[usize]) -> Explanation {
        if let Some(&(rank, utility, clock)) = self.emissions.get(&(run, encode_plan(plan))) {
            return Explanation::Emitted {
                rank,
                utility,
                clock,
            };
        }
        let covering: Vec<&EliminationCertificate> = self
            .certificates
            .iter()
            .filter(|(r, c)| *r == run && c.covers(plan))
            .map(|(_, c)| c)
            .collect();
        match covering.last() {
            Some(cert) => Explanation::Eliminated {
                certificate: (*cert).clone(),
                matches: covering.len() as u64,
            },
            None => Explanation::Unknown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_and_candidate_encodings_round_trip() {
        assert_eq!(encode_plan(&[1, 0, 2]), "1,0,2");
        assert_eq!(parse_plan("1,0,2"), Some(vec![1, 0, 2]));
        assert_eq!(parse_plan(""), None);
        assert_eq!(parse_plan("1,x"), None);
        let cands = vec![vec![0, 1], vec![2], vec![0, 3]];
        assert_eq!(encode_candidates(&cands), "0,1|2|0,3");
        assert_eq!(parse_candidates("0,1|2|0,3"), Some(cands));
        assert_eq!(parse_candidates("0,|1"), None);
    }

    fn cert() -> EliminationCertificate {
        EliminationCertificate {
            victim_id: 7,
            champion_id: 2,
            victim: vec![vec![0, 1], vec![3]],
            champion: vec![vec![2], vec![0, 1]],
            victim_interval: (0.1, 0.4),
            champion_interval: (0.5, 0.9),
            epoch: 3,
        }
    }

    #[test]
    fn certificate_replay_and_coverage() {
        let c = cert();
        assert!(c.comparison_holds(), "0.5 > 0.4 dominates");
        assert!(c.covers(&[0, 3]));
        assert!(c.covers(&[1, 3]));
        assert!(!c.covers(&[2, 3]), "2 not in the first bucket set");
        assert!(!c.covers(&[0]), "arity mismatch");

        let mut tied = c.clone();
        tied.champion_interval.0 = tied.victim_interval.1;
        assert!(tied.comparison_holds(), "tie broken toward smaller id");
        tied.champion_id = 9;
        assert!(!tied.comparison_holds(), "tie with larger id is no win");

        let json = c.to_json();
        assert!(json.contains("\"victim\":\"0,1|3\""));
        assert!(json.contains("\"champion_interval\":[0.5,0.9]"));
        assert!(json.contains("\"epoch\":3"));
    }

    fn journal_with_runs() -> TraceJournal {
        let j = TraceJournal::enabled();
        j.set_clock(0.0);
        j.record("run_started", vec![("lookahead", Value::U64(1))]);
        j.record(
            "plan_emitted",
            vec![
                ("plan_seq", Value::U64(0)),
                ("plan", Value::Str("0,1".into())),
                ("utility", Value::F64(0.75)),
            ],
        );
        j.record(
            "kernel_elimination",
            vec![
                ("plan_id", Value::U64(7)),
                ("champion_id", Value::U64(2)),
                ("victim", Value::Str("0,1|3".into())),
                ("champion", Value::Str("2|0,1".into())),
                ("victim_lo", Value::F64(0.1)),
                ("victim_hi", Value::F64(0.4)),
                ("champion_lo", Value::F64(0.5)),
                ("champion_hi", Value::F64(0.9)),
                ("epoch", Value::U64(3)),
            ],
        );
        j
    }

    #[test]
    fn index_answers_emitted_eliminated_and_unknown() {
        let index = ExplainIndex::from_journal(&journal_with_runs());
        assert_eq!(index.runs(), 1);
        assert_eq!(index.certificates(1).len(), 1);

        match index.explain(1, &[0, 1]) {
            Explanation::Emitted { rank, utility, .. } => {
                assert_eq!(rank, 0);
                assert_eq!(utility, 0.75);
            }
            other => panic!("expected emitted, got {other:?}"),
        }
        match index.explain(1, &[1, 3]) {
            Explanation::Eliminated {
                certificate,
                matches,
            } => {
                assert_eq!(matches, 1);
                assert!(certificate.comparison_holds());
            }
            other => panic!("expected eliminated, got {other:?}"),
        }
        assert_eq!(index.explain(1, &[9, 9]), Explanation::Unknown);
        assert_eq!(index.explain(2, &[0, 1]), Explanation::Unknown);

        let json = index.explain(1, &[1, 3]).to_json(1, &[1, 3]);
        assert!(json.starts_with("{\"run\":1,\"plan\":\"1,3\""));
        assert!(json.contains("\"status\":\"eliminated\""));
        assert!(json.contains("\"certificate\":{"));
    }
}
