//! Ordering-quality telemetry: online anytime curves and oracle regret.
//!
//! The paper's Definition 2.1 judges an ordering by how much utility its
//! *prefix* captures — "run the best plans first" is a statement about
//! the cumulative curve, not any single emission. A [`QualityTracker`]
//! maintains that curve live, one point per emitted plan: cumulative
//! emitted utility mass against both the emission index and the virtual
//! cost spent, plus a regret gauge against an exact-oracle ordering the
//! caller feeds in (sessions evaluate the brute-force Def. 2.1 orderer
//! lazily over the same plan space).
//!
//! Regret is accumulated strictly left-to-right — `mass += utility` per
//! emission, `oracle_mass += oracle_utility` per emission, `regret =
//! oracle_mass - mass` — so an offline recomputation that walks the same
//! utilities in the same order reproduces the gauge to f64 bit-equality.
//!
//! [`SessionBoard`] is the live-session directory behind the
//! introspection server's `/sessions` endpoint: a shared registry of
//! open (and recently closed) query sessions with their progress and
//! quality snapshots.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::journal::{push_f64, push_str};
use crate::registry::{Gauge, Registry};

/// One point of a session's anytime curve: after the `k`-th emission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityPoint {
    /// 1-based emission index.
    pub k: u64,
    /// Utility of the `k`-th emitted plan.
    pub utility: f64,
    /// Cumulative emitted utility mass after `k` plans.
    pub mass: f64,
    /// Cumulative virtual cost spent after `k` plans (sound plans only).
    pub cost: f64,
}

/// A point-in-time copy of one session's quality state.
#[derive(Debug, Clone, PartialEq)]
pub struct QualitySnapshot {
    /// The anytime curve so far, one point per emission.
    pub points: Vec<QualityPoint>,
    /// Cumulative emitted utility mass.
    pub mass: f64,
    /// Cumulative utility mass of the exact-oracle prefix of equal length.
    pub oracle_mass: f64,
    /// `oracle_mass - mass`: how far the live ordering trails the exact
    /// Def. 2.1 oracle after the same number of emissions.
    pub regret: f64,
}

/// Live ordering-quality state for one session: the anytime curve plus
/// registered `qpo_session_utility_mass` / `qpo_session_regret` gauges.
#[derive(Debug, Clone, Default)]
pub struct QualityTracker {
    points: Vec<QualityPoint>,
    mass: f64,
    oracle_mass: f64,
    mass_gauge: Gauge,
    regret_gauge: Gauge,
}

impl QualityTracker {
    /// A tracker whose gauges are not registered anywhere.
    pub fn detached() -> Self {
        QualityTracker::default()
    }

    /// A tracker whose gauges live in `registry` under `labels`.
    pub fn registered(registry: &Registry, labels: &[(&str, &str)]) -> Self {
        QualityTracker::registered_as(
            registry,
            labels,
            "qpo_session_utility_mass",
            "qpo_session_regret",
        )
    }

    /// A tracker with caller-chosen gauge names — the same curve/regret
    /// mechanics at a different granularity (sessions use this for the
    /// tuple-level stream: `qpo_session_tuple_mass` /
    /// `qpo_session_tuple_regret` against the offline exact sort).
    pub fn registered_as(
        registry: &Registry,
        labels: &[(&str, &str)],
        mass_metric: &'static str,
        regret_metric: &'static str,
    ) -> Self {
        QualityTracker {
            mass_gauge: registry.gauge(mass_metric, labels),
            regret_gauge: registry.gauge(regret_metric, labels),
            ..QualityTracker::default()
        }
    }

    /// Records one emission: the emitted plan's `utility`, the
    /// session-cumulative `cost` spent after it, and the utility the
    /// exact oracle would have emitted at the same position. Returns the
    /// updated regret.
    pub fn observe(&mut self, utility: f64, cost: f64, oracle_utility: f64) -> f64 {
        self.mass += utility;
        self.oracle_mass += oracle_utility;
        self.points.push(QualityPoint {
            k: self.points.len() as u64 + 1,
            utility,
            mass: self.mass,
            cost,
        });
        let regret = self.oracle_mass - self.mass;
        self.mass_gauge.set(self.mass);
        self.regret_gauge.set(regret);
        regret
    }

    /// Cumulative emitted utility mass.
    pub fn mass(&self) -> f64 {
        self.mass
    }

    /// `oracle_mass - mass` (0 before any emission).
    pub fn regret(&self) -> f64 {
        self.oracle_mass - self.mass
    }

    /// Copy of the current state.
    pub fn snapshot(&self) -> QualitySnapshot {
        QualitySnapshot {
            points: self.points.clone(),
            mass: self.mass,
            oracle_mass: self.oracle_mass,
            regret: self.oracle_mass - self.mass,
        }
    }
}

/// One session's row on the [`SessionBoard`].
#[derive(Debug, Clone, PartialEq)]
pub struct SessionEntry {
    /// Board-assigned session id (1-based, monotone per board).
    pub id: u64,
    /// Ordering-strategy label (`"idrips"`, `"pi"`, …).
    pub strategy: String,
    /// Size of the prepared plan space the session serves.
    pub plan_space: u64,
    /// Plans emitted so far (sound or not).
    pub plans_emitted: u64,
    /// Distinct answers accumulated so far.
    pub answers: u64,
    /// Virtual cost spent so far.
    pub spent: f64,
    /// Wall-clock milliseconds from open to first plan report.
    pub time_to_first_plan_ms: Option<f64>,
    /// Cumulative emitted utility mass (quality tracking enabled only).
    pub utility_mass: Option<f64>,
    /// Oracle regret (quality tracking enabled only).
    pub regret: Option<f64>,
    /// Ranked answer tuples delivered by the any-k stream (0 unless the
    /// session serves tuples).
    pub tuples_emitted: u64,
    /// Cumulative delivered tuple-score mass (tuple quality enabled only).
    pub tuple_mass: Option<f64>,
    /// Tuple-level regret against the offline exact sort of the full
    /// answer set (tuple quality enabled only).
    pub tuple_regret: Option<f64>,
    /// The live tuple-quality curve, one point per delivered tuple.
    pub tuple_curve: Vec<QualityPoint>,
    /// Execution-memo lookups served from cache for this session (source
    /// accesses and subplan prefixes; 0 unless a memo is attached).
    pub memo_hits: u64,
    /// Plans whose join was seeded from a memoized subplan prefix.
    pub subplans_reused: u64,
    /// Profile snapshot: the session's critical-path length so far (the
    /// left-to-right sum of executed plan costs, the same fold the trace
    /// profile reconstructs).
    pub critical_path: f64,
    /// Profile snapshot: the costliest executed plan so far (encoded
    /// bucket-index form), `None` before the first sound plan.
    pub bounding_plan: Option<String>,
    /// Whether the session has been dropped.
    pub closed: bool,
}

#[derive(Debug, Default)]
struct BoardInner {
    next_id: u64,
    entries: BTreeMap<u64, SessionEntry>,
}

/// Retention cap for closed sessions: the board keeps at most this many
/// closed entries (oldest evicted first) so long-lived mediators don't
/// grow without bound.
pub const CLOSED_SESSIONS_RETAINED: usize = 64;

/// A shared directory of live (and recently closed) query sessions —
/// the data behind the introspection server's `/sessions` endpoint.
/// Cloning shares the board.
#[derive(Debug, Clone, Default)]
pub struct SessionBoard {
    inner: Arc<Mutex<BoardInner>>,
}

impl SessionBoard {
    /// An empty board.
    pub fn new() -> Self {
        SessionBoard::default()
    }

    /// Registers a session and returns its board id.
    pub fn open(&self, strategy: &str, plan_space: u64) -> u64 {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.next_id += 1;
        let id = inner.next_id;
        inner.entries.insert(
            id,
            SessionEntry {
                id,
                strategy: strategy.to_string(),
                plan_space,
                plans_emitted: 0,
                answers: 0,
                spent: 0.0,
                time_to_first_plan_ms: None,
                utility_mass: None,
                regret: None,
                tuples_emitted: 0,
                tuple_mass: None,
                tuple_regret: None,
                tuple_curve: Vec::new(),
                memo_hits: 0,
                subplans_reused: 0,
                critical_path: 0.0,
                bounding_plan: None,
                closed: false,
            },
        );
        id
    }

    /// Applies `update` to the entry for `id` (no-op when evicted).
    pub fn update<F: FnOnce(&mut SessionEntry)>(&self, id: u64, update: F) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(entry) = inner.entries.get_mut(&id) {
            update(entry);
        }
    }

    /// Marks the entry closed and evicts the oldest closed entries past
    /// [`CLOSED_SESSIONS_RETAINED`].
    pub fn close(&self, id: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(entry) = inner.entries.get_mut(&id) {
            entry.closed = true;
        }
        let closed: Vec<u64> = inner
            .entries
            .values()
            .filter(|e| e.closed)
            .map(|e| e.id)
            .collect();
        if closed.len() > CLOSED_SESSIONS_RETAINED {
            for id in &closed[..closed.len() - CLOSED_SESSIONS_RETAINED] {
                inner.entries.remove(id);
            }
        }
    }

    /// Copies of all retained entries, in id order.
    pub fn entries(&self) -> Vec<SessionEntry> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.entries.values().cloned().collect()
    }

    /// Renders the retained entries as one JSON object:
    /// `{"sessions":[{...},...]}` (a pure function of board state).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"sessions\":[");
        for (i, e) in self.entries().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"id\":{}", e.id);
            out.push_str(",\"strategy\":");
            push_str(&mut out, &e.strategy);
            let _ = write!(
                out,
                ",\"plan_space\":{},\"plans_emitted\":{},\"answers\":{}",
                e.plan_space, e.plans_emitted, e.answers
            );
            out.push_str(",\"spent\":");
            push_f64(&mut out, e.spent);
            push_opt(&mut out, "time_to_first_plan_ms", e.time_to_first_plan_ms);
            push_opt(&mut out, "utility_mass", e.utility_mass);
            push_opt(&mut out, "regret", e.regret);
            let _ = write!(out, ",\"tuples_emitted\":{}", e.tuples_emitted);
            push_opt(&mut out, "tuple_mass", e.tuple_mass);
            push_opt(&mut out, "tuple_regret", e.tuple_regret);
            // The curve renders compactly as [k, utility, mass, cost]
            // rows — identical bytes from the live server and the offline
            // exporter, both funneling through this function.
            out.push_str(",\"tuple_curve\":[");
            for (i, p) in e.tuple_curve.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{}", p.k);
                for v in [p.utility, p.mass, p.cost] {
                    out.push(',');
                    push_f64(&mut out, v);
                }
                out.push(']');
            }
            out.push(']');
            let _ = write!(
                out,
                ",\"memo_hits\":{},\"subplans_reused\":{}",
                e.memo_hits, e.subplans_reused
            );
            out.push_str(",\"critical_path\":");
            push_f64(&mut out, e.critical_path);
            out.push_str(",\"bounding_plan\":");
            match &e.bounding_plan {
                Some(p) => push_str(&mut out, p),
                None => out.push_str("null"),
            }
            let _ = write!(out, ",\"closed\":{}}}", e.closed);
        }
        out.push_str("]}");
        out
    }
}

fn push_opt(out: &mut String, key: &str, v: Option<f64>) {
    out.push(',');
    push_str(out, key);
    out.push(':');
    match v {
        Some(x) => push_f64(out, x),
        None => out.push_str("null"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_accumulates_mass_and_regret_left_to_right() {
        let reg = Registry::new();
        let mut t = QualityTracker::registered(&reg, &[("strategy", "idrips")]);
        assert_eq!(t.regret(), 0.0);
        let r1 = t.observe(3.0, 1.0, 3.0);
        assert_eq!(r1, 0.0, "matching the oracle means zero regret");
        let r2 = t.observe(1.0, 2.0, 2.0);
        assert_eq!(r2, 1.0, "trailing the oracle by one utility unit");
        let snap = t.snapshot();
        assert_eq!(snap.points.len(), 2);
        assert_eq!(
            snap.points[1],
            QualityPoint {
                k: 2,
                utility: 1.0,
                mass: 4.0,
                cost: 2.0
            }
        );
        assert_eq!(snap.mass, 4.0);
        assert_eq!(snap.oracle_mass, 5.0);
        assert_eq!(snap.regret, 1.0);
        // The gauges mirror the tracker.
        let labels = [("strategy", "idrips")];
        assert_eq!(reg.gauge("qpo_session_utility_mass", &labels).get(), 4.0);
        assert_eq!(reg.gauge("qpo_session_regret", &labels).get(), 1.0);
    }

    #[test]
    fn board_tracks_open_update_close() {
        let board = SessionBoard::new();
        let a = board.open("pi", 9);
        let b = board.open("idrips", 16);
        assert_eq!((a, b), (1, 2));
        board.update(a, |e| {
            e.plans_emitted = 3;
            e.answers = 5;
            e.spent = 2.5;
            e.time_to_first_plan_ms = Some(0.25);
        });
        board.close(b);
        let entries = board.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].plans_emitted, 3);
        assert!(!entries[0].closed);
        assert!(entries[1].closed);
        let json = board.to_json();
        assert!(json.starts_with("{\"sessions\":["));
        assert!(json.contains("\"strategy\":\"pi\""));
        assert!(json.contains("\"time_to_first_plan_ms\":0.25"));
        assert!(json.contains("\"regret\":null"));
        assert!(json.contains("\"tuples_emitted\":0"));
        assert!(json.contains("\"tuple_curve\":[]"));
        assert!(json.contains("\"memo_hits\":0"));
        assert!(json.contains("\"subplans_reused\":0"));
        assert!(json.contains("\"closed\":true"));
    }

    #[test]
    fn board_renders_the_tuple_quality_curve() {
        let board = SessionBoard::new();
        let id = board.open("idrips", 4);
        board.update(id, |e| {
            e.tuples_emitted = 2;
            e.tuple_mass = Some(3.5);
            e.tuple_regret = Some(0.0);
            e.tuple_curve = vec![
                QualityPoint {
                    k: 1,
                    utility: 2.0,
                    mass: 2.0,
                    cost: 0.5,
                },
                QualityPoint {
                    k: 2,
                    utility: 1.5,
                    mass: 3.5,
                    cost: 0.5,
                },
            ];
        });
        let json = board.to_json();
        assert!(json.contains("\"tuples_emitted\":2"));
        assert!(json.contains("\"tuple_mass\":3.5"));
        assert!(json.contains("\"tuple_curve\":[[1,2,2,0.5],[2,1.5,3.5,0.5]]"));
    }

    #[test]
    fn registered_as_names_the_gauges() {
        let reg = Registry::new();
        let labels = [("strategy", "pi")];
        let mut t = QualityTracker::registered_as(
            &reg,
            &labels,
            "qpo_session_tuple_mass",
            "qpo_session_tuple_regret",
        );
        t.observe(2.0, 0.0, 2.5);
        assert_eq!(reg.gauge("qpo_session_tuple_mass", &labels).get(), 2.0);
        assert_eq!(reg.gauge("qpo_session_tuple_regret", &labels).get(), 0.5);
    }

    #[test]
    fn board_evicts_oldest_closed_entries_past_the_cap() {
        let board = SessionBoard::new();
        for _ in 0..(CLOSED_SESSIONS_RETAINED as u64 + 10) {
            let id = board.open("pi", 1);
            board.close(id);
        }
        let open = board.open("pi", 1);
        let entries = board.entries();
        assert_eq!(entries.len(), CLOSED_SESSIONS_RETAINED + 1);
        assert_eq!(entries.iter().filter(|e| !e.closed).count(), 1);
        assert!(entries.iter().any(|e| e.id == open));
        // The oldest closed sessions are the ones evicted.
        assert!(entries.iter().all(|e| e.id > 10 || !e.closed));
    }
}
