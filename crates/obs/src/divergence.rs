//! Source drift detection: online per-source estimators confronted with
//! the catalog's declared behavior.
//!
//! The paper's utility model trusts the catalog — extents, latencies,
//! failure probabilities are taken as ground truth at ordering time.
//! This module watches what the runtime *actually observes* per source
//! (EWMA latency, transient/permanent failure rates, answer counts) and
//! exports the divergence from the declared [`SourceExpectation`] as
//! `qpo_source_divergence{source,stat}` gauges, journalling a
//! `drift_detected` event whenever a stat first crosses the configured
//! threshold. ROADMAP item 5's re-planning triggers consume exactly
//! these signals.
//!
//! ## Determinism discipline
//!
//! Like PR 5's regret gauge, every gauge value must be *recomputable
//! from the trace alone, bit for bit*. Two properties make that hold:
//!
//! 1. the executor journals each run's catalog expectations
//!    (`source_declared`) and each access chain's exact charges
//!    (`source_attempt` with `backoff`/`latency` fields), so
//!    [`DivergenceMonitor::from_jsonl`] / [`from_events`] can replay the
//!    identical observation sequence offline with no catalog in hand;
//! 2. estimators accumulate strictly left-to-right in observation order
//!    — same fold live and offline, hence `to_bits`-equal gauges.
//!
//! [`from_events`]: DivergenceMonitor::from_events

use crate::journal::{push_f64, push_str, TraceEvent, Value};
use crate::json::{parse_json, Json};
use crate::Obs;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Catalog-declared behavior of one source, reduced to the three stats
/// the monitor checks (the runtime derives these from `SourceBehavior`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SourceExpectation {
    /// Expected access latency (base plus per-tuple transmission).
    pub latency: f64,
    /// Declared per-attempt transient failure rate.
    pub transient_rate: f64,
    /// Declared extent size (expected tuples behind the source).
    pub tuples: f64,
}

/// Tuning knobs of the monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DivergenceConfig {
    /// EWMA weight of the newest observation (0 < alpha ≤ 1).
    pub alpha: f64,
    /// Absolute divergence at which `drift_detected` fires per
    /// `(source, stat)` (each pair fires once per crossing episode).
    pub threshold: f64,
}

impl Default for DivergenceConfig {
    fn default() -> Self {
        DivergenceConfig {
            alpha: 0.2,
            threshold: 0.5,
        }
    }
}

/// One completed access chain, as observed by the runtime (or replayed
/// from its `source_attempt` events — the two are constructed from the
/// same charges, in the same order).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessObservation {
    /// Attempts made.
    pub attempts: u64,
    /// Attempts that failed transiently (timeouts included).
    pub transient_failures: u64,
    /// Whether the chain ultimately succeeded.
    pub ok: bool,
    /// Whether the source answered permanently down.
    pub permanently_down: bool,
    /// Total virtual latency charged (backoffs included).
    pub latency: f64,
    /// Answers of the enclosing plan, when it completed (a coarse
    /// per-source extent signal: each participating source's extent
    /// bounds the join from above).
    pub tuples: Option<f64>,
    /// Network residual of the successful attempt (client latency minus
    /// server-reported total), when the backend returned a remote span.
    pub network: Option<f64>,
    /// Server-reported total of the successful attempt, when the backend
    /// returned a remote span.
    pub server: Option<f64>,
}

/// Running estimator state for one source.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SourceDrift {
    /// Declared expectations this source is measured against.
    pub expected: SourceExpectation,
    /// Completed access chains observed (memo replays excluded).
    pub accesses: u64,
    /// Attempts across all chains.
    pub attempts: u64,
    /// Transient failures across all chains.
    pub transient_failures: u64,
    /// Chains that succeeded.
    pub successes: u64,
    /// Chains that found the source permanently down.
    pub permanent_failures: u64,
    /// EWMA of chain latency, `None` before the first observation.
    pub ewma_latency: Option<f64>,
    /// EWMA of observed plan answers behind this source.
    pub ewma_tuples: Option<f64>,
    /// EWMA of the network residual on traced accesses, `None` until a
    /// remote span has been observed. Together with `ewma_server` this
    /// localizes latency drift: a rising `ewma_latency` with a flat
    /// `ewma_server` points at the network, and vice versa.
    pub ewma_network: Option<f64>,
    /// EWMA of the server-reported total on traced accesses.
    pub ewma_server: Option<f64>,
}

/// The stats a [`SourceDrift`] exports, in gauge-label order.
pub const DIVERGENCE_STATS: &[&str] = &["latency", "permanent_rate", "transient_rate", "tuples"];

impl SourceDrift {
    /// Relative latency divergence: `(ewma − expected) / expected`
    /// (absolute when the expectation is zero).
    pub fn latency_divergence(&self) -> Option<f64> {
        let ewma = self.ewma_latency?;
        Some(relative(ewma, self.expected.latency))
    }

    /// Observed minus declared per-attempt transient failure rate.
    pub fn transient_divergence(&self) -> Option<f64> {
        (self.attempts > 0).then(|| {
            self.transient_failures as f64 / self.attempts as f64 - self.expected.transient_rate
        })
    }

    /// Observed permanent-failure rate per chain (the catalog declares
    /// none, so the observation is the divergence).
    pub fn permanent_divergence(&self) -> Option<f64> {
        (self.accesses > 0).then(|| self.permanent_failures as f64 / self.accesses as f64)
    }

    /// Relative divergence of observed answer counts from the declared
    /// extent size.
    pub fn tuples_divergence(&self) -> Option<f64> {
        let ewma = self.ewma_tuples?;
        Some(relative(ewma, self.expected.tuples))
    }

    /// `(stat, divergence)` for every stat with an observation, in
    /// [`DIVERGENCE_STATS`] order.
    pub fn divergences(&self) -> Vec<(&'static str, f64)> {
        [
            ("latency", self.latency_divergence()),
            ("permanent_rate", self.permanent_divergence()),
            ("transient_rate", self.transient_divergence()),
            ("tuples", self.tuples_divergence()),
        ]
        .into_iter()
        .filter_map(|(stat, v)| v.map(|v| (stat, v)))
        .collect()
    }
}

fn relative(observed: f64, expected: f64) -> f64 {
    if expected > 0.0 {
        (observed - expected) / expected
    } else {
        observed - expected
    }
}

/// The drift monitor: per-source estimators, divergence gauges, and the
/// `drift_detected` journal hook. Feed it live from the runtime's
/// feedback path, or replay a trace through [`DivergenceMonitor::from_events`] /
/// [`DivergenceMonitor::from_jsonl`] — both produce bit-equal state.
#[derive(Debug, Clone)]
pub struct DivergenceMonitor {
    config: DivergenceConfig,
    obs: Obs,
    sources: BTreeMap<String, SourceDrift>,
    /// `(source, stat)` pairs currently beyond the threshold; an event
    /// fires only on the below→beyond transition.
    flagged: BTreeSet<(String, &'static str)>,
}

impl DivergenceMonitor {
    /// A monitor exporting gauges (and drift events, when the journal
    /// records) onto `obs`.
    pub fn new(obs: &Obs) -> Self {
        DivergenceMonitor::with_config(obs, DivergenceConfig::default())
    }

    /// [`DivergenceMonitor::new`] with explicit tuning.
    pub fn with_config(obs: &Obs, config: DivergenceConfig) -> Self {
        DivergenceMonitor {
            config,
            obs: obs.clone(),
            sources: BTreeMap::new(),
            flagged: BTreeSet::new(),
        }
    }

    /// A monitor on a private bundle (offline recomputation).
    pub fn detached() -> Self {
        DivergenceMonitor::new(&Obs::new())
    }

    /// The configuration in effect.
    pub fn config(&self) -> DivergenceConfig {
        self.config
    }

    /// Declares (or re-declares) a source's catalog expectations.
    /// Estimator state survives re-declaration: drift is measured
    /// against the *latest* declaration.
    pub fn declare(&mut self, source: &str, expected: SourceExpectation) {
        self.sources.entry(source.to_string()).or_default().expected = expected;
    }

    /// Folds one completed access chain in, updating the estimators
    /// left-to-right, refreshing the `qpo_source_divergence` gauges, and
    /// journalling `drift_detected` on threshold crossings.
    pub fn observe(&mut self, source: &str, obs: AccessObservation) {
        let alpha = self.config.alpha;
        let drift = self.sources.entry(source.to_string()).or_default();
        drift.accesses += 1;
        drift.attempts += obs.attempts;
        drift.transient_failures += obs.transient_failures;
        drift.successes += u64::from(obs.ok);
        drift.permanent_failures += u64::from(obs.permanently_down);
        drift.ewma_latency = Some(match drift.ewma_latency {
            None => obs.latency,
            Some(prev) => prev + alpha * (obs.latency - prev),
        });
        if let Some(tuples) = obs.tuples {
            drift.ewma_tuples = Some(match drift.ewma_tuples {
                None => tuples,
                Some(prev) => prev + alpha * (tuples - prev),
            });
        }
        if let Some(network) = obs.network {
            drift.ewma_network = Some(match drift.ewma_network {
                None => network,
                Some(prev) => prev + alpha * (network - prev),
            });
        }
        if let Some(server) = obs.server {
            drift.ewma_server = Some(match drift.ewma_server {
                None => server,
                Some(prev) => prev + alpha * (server - prev),
            });
        }
        let divergences = drift.divergences();
        for (stat, value) in divergences {
            self.obs
                .registry
                .gauge(
                    "qpo_source_divergence",
                    &[("source", source), ("stat", stat)],
                )
                .set(value);
            let key = (source.to_string(), stat);
            if value.abs() > self.config.threshold {
                if self.flagged.insert(key) && self.obs.journal.is_enabled() {
                    self.obs.journal.record(
                        "drift_detected",
                        vec![
                            ("source", Value::Str(source.to_string().into())),
                            ("stat", Value::Str(stat.into())),
                            ("value", Value::F64(value)),
                            ("threshold", Value::F64(self.config.threshold)),
                        ],
                    );
                }
            } else {
                self.flagged.remove(&key);
            }
        }
    }

    /// The estimator of one source, if it was ever declared or observed.
    pub fn source(&self, name: &str) -> Option<&SourceDrift> {
        self.sources.get(name)
    }

    /// Iterates `(source, estimator)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &SourceDrift)> {
        self.sources.iter()
    }

    /// `(source, stat, divergence)` for every pair currently beyond the
    /// threshold, in name then stat order.
    pub fn drifting(&self) -> Vec<(String, &'static str, f64)> {
        let mut out = Vec::new();
        for (name, drift) in &self.sources {
            for (stat, value) in drift.divergences() {
                if value.abs() > self.config.threshold {
                    out.push((name.clone(), stat, value));
                }
            }
        }
        out
    }

    /// Replays a trace's observation sequence through a fresh detached
    /// monitor: `source_declared` events re-declare expectations, and
    /// each plan terminal replays its access chains (reconstructed from
    /// the `source_attempt` charges, which re-sum bit-exactly to the
    /// runtime's own accumulation). The resulting estimator state — and
    /// therefore every divergence value — bit-equals the live monitor
    /// fed from the same run sequence with the same config.
    pub fn from_events(events: &[TraceEvent], config: DivergenceConfig) -> Self {
        let mut replay = Replay::new(config);
        for ev in events {
            replay.observe(ev.kind, &EventFields(ev));
        }
        replay.monitor
    }

    /// [`DivergenceMonitor::from_events`] over a JSONL trace file.
    pub fn from_jsonl(jsonl: &str, config: DivergenceConfig) -> Result<Self, String> {
        let mut replay = Replay::new(config);
        for (i, line) in jsonl.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            let obj = parse_json(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            let kind = obj
                .get("kind")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("line {}: missing kind", i + 1))?
                .to_string();
            replay.observe(&kind, &LineFields(&obj));
        }
        Ok(replay.monitor)
    }

    /// The monitor state as one JSON document (the `/divergence`
    /// endpoint serves these bytes): per-source estimators with their
    /// expectations and current divergences, plus the drifting set.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"sources\":[");
        for (i, (name, d)) in self.sources.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"source\":");
            push_str(&mut out, name);
            out.push_str(",\"expected\":{\"latency\":");
            push_f64(&mut out, d.expected.latency);
            out.push_str(",\"transient_rate\":");
            push_f64(&mut out, d.expected.transient_rate);
            out.push_str(",\"tuples\":");
            push_f64(&mut out, d.expected.tuples);
            let _ = write!(
                out,
                "}},\"accesses\":{},\"attempts\":{},\"transient_failures\":{},\"successes\":{},\"permanent_failures\":{}",
                d.accesses, d.attempts, d.transient_failures, d.successes, d.permanent_failures
            );
            out.push_str(",\"ewma_latency\":");
            push_opt_f64(&mut out, d.ewma_latency);
            out.push_str(",\"ewma_tuples\":");
            push_opt_f64(&mut out, d.ewma_tuples);
            out.push_str(",\"ewma_network\":");
            push_opt_f64(&mut out, d.ewma_network);
            out.push_str(",\"ewma_server\":");
            push_opt_f64(&mut out, d.ewma_server);
            out.push_str(",\"divergence\":{");
            for (j, (stat, value)) in d.divergences().into_iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_str(&mut out, stat);
                out.push(':');
                push_f64(&mut out, value);
            }
            out.push_str("}}");
        }
        out.push_str("],\"drifting\":[");
        for (i, (name, stat, value)) in self.drifting().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"source\":");
            push_str(&mut out, &name);
            out.push_str(",\"stat\":");
            push_str(&mut out, stat);
            out.push_str(",\"value\":");
            push_f64(&mut out, value);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn push_opt_f64(out: &mut String, v: Option<f64>) {
    match v {
        Some(v) => push_f64(out, v),
        None => out.push_str("null"),
    }
}

/// Field access for the two replay inputs.
trait ReplayFields {
    fn u64(&self, name: &str) -> Option<u64>;
    fn f64(&self, name: &str) -> Option<f64>;
    fn str(&self, name: &str) -> Option<&str>;
}

struct EventFields<'a>(&'a TraceEvent);

impl ReplayFields for EventFields<'_> {
    fn u64(&self, name: &str) -> Option<u64> {
        match self.0.fields.iter().find(|(k, _)| *k == name)? {
            (_, Value::U64(n)) => Some(*n),
            _ => None,
        }
    }
    fn f64(&self, name: &str) -> Option<f64> {
        match self.0.fields.iter().find(|(k, _)| *k == name)? {
            (_, Value::F64(x)) => Some(*x),
            _ => None,
        }
    }
    fn str(&self, name: &str) -> Option<&str> {
        match self.0.fields.iter().find(|(k, _)| *k == name)? {
            (_, Value::Str(s)) => Some(s),
            _ => None,
        }
    }
}

struct LineFields<'a>(&'a Json);

impl ReplayFields for LineFields<'_> {
    fn u64(&self, name: &str) -> Option<u64> {
        self.0.get(name)?.as_f64().map(|v| v as u64)
    }
    fn f64(&self, name: &str) -> Option<f64> {
        self.0.get(name)?.as_f64()
    }
    fn str(&self, name: &str) -> Option<&str> {
        self.0.get(name)?.as_str()
    }
}

/// Reconstructed per-source chain state for the plan currently being
/// replayed.
#[derive(Default)]
struct ChainState {
    attempts: u64,
    transient: u64,
    latency: f64,
    last_outcome: String,
    /// Remote-span split of the attempt that carried one (at most one
    /// per chain — the successful attempt): `(network, server)`,
    /// recomputed from the journalled fields exactly as the live path
    /// computed them, so the EWMA folds bit-equal.
    remote: Option<(f64, f64)>,
}

/// Offline replay: rebuilds the exact observation sequence the live
/// feedback path produced.
struct Replay {
    monitor: DivergenceMonitor,
    /// Source chains of the plan under replay, keyed by `plan_seq`,
    /// preserving first-attempt order within a plan.
    pending: BTreeMap<u64, Vec<(String, ChainState)>>,
}

impl Replay {
    fn new(config: DivergenceConfig) -> Self {
        Replay {
            monitor: DivergenceMonitor::with_config(&Obs::new(), config),
            pending: BTreeMap::new(),
        }
    }

    fn observe(&mut self, kind: &str, fields: &dyn ReplayFields) {
        match kind {
            "run_started" => {
                // Estimators are per-run: the live feedback path binds a
                // fresh monitor to each run, so a multi-run journal
                // replays to the state (and gauge values) of its last
                // run — exactly what the shared registry holds live,
                // since later runs overwrite the gauges.
                self.pending.clear();
                self.monitor.sources.clear();
                self.monitor.flagged.clear();
            }
            "source_declared" => {
                if let Some(source) = fields.str("source") {
                    self.monitor.declare(
                        source,
                        SourceExpectation {
                            latency: fields.f64("latency").unwrap_or(0.0),
                            transient_rate: fields.f64("transient_rate").unwrap_or(0.0),
                            tuples: fields.f64("tuples").unwrap_or(0.0),
                        },
                    );
                }
            }
            "source_attempt" => {
                let (Some(seq), Some(source)) = (fields.u64("plan_seq"), fields.str("source"))
                else {
                    return;
                };
                let chains = self.pending.entry(seq).or_default();
                let chain = match chains.iter_mut().find(|(n, _)| n == source) {
                    Some((_, c)) => c,
                    None => {
                        chains.push((source.to_string(), ChainState::default()));
                        &mut chains.last_mut().expect("just pushed").1
                    }
                };
                let outcome = fields.str("outcome").unwrap_or("");
                chain.attempts = chain.attempts.max(fields.u64("attempt").unwrap_or(0));
                chain.transient += u64::from(outcome == "timeout" || outcome == "transient");
                // Same charge order as the runtime's accumulation.
                chain.latency += fields.f64("backoff").unwrap_or(0.0);
                chain.latency += fields.f64("latency").unwrap_or(0.0);
                if let Some(total) = fields.f64("remote_total") {
                    // `network = attempt latency − server total`: the same
                    // subtraction, over the same journalled f64s, that the
                    // executor performed live.
                    let charge = fields.f64("latency").unwrap_or(0.0);
                    chain.remote = Some((charge - total, total));
                }
                chain.last_outcome = outcome.to_string();
            }
            "plan_completed" | "plan_failed" | "plan_unsound" => {
                let Some(seq) = fields.u64("plan_seq") else {
                    return;
                };
                let tuples = (kind == "plan_completed")
                    .then(|| fields.u64("tuples").map(|t| t as f64))
                    .flatten();
                for (source, chain) in self.pending.remove(&seq).unwrap_or_default() {
                    self.monitor.observe(
                        &source,
                        AccessObservation {
                            attempts: chain.attempts,
                            transient_failures: chain.transient,
                            ok: chain.last_outcome == "ok",
                            permanently_down: chain.last_outcome == "permanent",
                            latency: chain.latency,
                            tuples,
                            network: chain.remote.map(|(network, _)| network),
                            server: chain.remote.map(|(_, server)| server),
                        },
                    );
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse_json, Json};

    fn chain_ok(latency: f64) -> AccessObservation {
        AccessObservation {
            attempts: 1,
            transient_failures: 0,
            ok: true,
            permanently_down: false,
            latency,
            tuples: None,
            network: None,
            server: None,
        }
    }

    #[test]
    fn estimators_fold_left_to_right() {
        let mut m = DivergenceMonitor::detached();
        m.declare(
            "s",
            SourceExpectation {
                latency: 2.0,
                transient_rate: 0.1,
                tuples: 10.0,
            },
        );
        m.observe(
            "s",
            AccessObservation {
                attempts: 2,
                transient_failures: 1,
                ok: true,
                permanently_down: false,
                latency: 4.0,
                tuples: Some(6.0),
                network: None,
                server: None,
            },
        );
        m.observe(
            "s",
            AccessObservation {
                attempts: 1,
                transient_failures: 0,
                ok: false,
                permanently_down: true,
                latency: 0.0,
                tuples: None,
                network: None,
                server: None,
            },
        );
        let d = m.source("s").unwrap();
        assert_eq!((d.accesses, d.attempts, d.transient_failures), (2, 3, 1));
        assert_eq!((d.successes, d.permanent_failures), (1, 1));
        // First observation seeds the EWMA; the second folds with α=0.2.
        assert_eq!(d.ewma_latency, Some(4.0 + 0.2 * (0.0 - 4.0)));
        assert_eq!(d.ewma_tuples, Some(6.0));
        assert_eq!(d.latency_divergence(), Some((3.2 - 2.0) / 2.0));
        assert_eq!(d.transient_divergence(), Some(1.0 / 3.0 - 0.1));
        assert_eq!(d.permanent_divergence(), Some(0.5));
        assert_eq!(d.tuples_divergence(), Some((6.0 - 10.0) / 10.0));
        assert_eq!(d.divergences().len(), DIVERGENCE_STATS.len());
    }

    #[test]
    fn zero_expectations_fall_back_to_absolute_divergence() {
        let mut m = DivergenceMonitor::detached();
        m.declare("s", SourceExpectation::default());
        m.observe("s", chain_ok(0.7));
        let d = m.source("s").unwrap();
        assert_eq!(d.latency_divergence(), Some(0.7));
    }

    #[test]
    fn declared_but_never_observed_sources_export_nothing() {
        let mut m = DivergenceMonitor::detached();
        m.declare(
            "quiet",
            SourceExpectation {
                latency: 1.0,
                ..SourceExpectation::default()
            },
        );
        let d = m.source("quiet").unwrap();
        assert!(d.divergences().is_empty());
        assert!(m.drifting().is_empty());
    }

    #[test]
    fn drift_events_fire_once_per_crossing_episode() {
        let obs = crate::Obs::with_trace();
        let mut m = DivergenceMonitor::new(&obs);
        m.declare(
            "s",
            SourceExpectation {
                latency: 1.0,
                ..SourceExpectation::default()
            },
        );
        let events_named = |kind: &str| {
            obs.journal
                .events()
                .iter()
                .filter(|e| e.kind == kind)
                .count()
        };
        m.observe("s", chain_ok(10.0)); // divergence 9 — crosses
        assert_eq!(events_named("drift_detected"), 1);
        assert_eq!(m.drifting().len(), 1);
        // Decay below the threshold: no new events, flag clears.
        for _ in 0..16 {
            m.observe("s", chain_ok(1.0));
        }
        assert!(m.drifting().is_empty());
        assert_eq!(events_named("drift_detected"), 1);
        // A second crossing is a new episode.
        m.observe("s", chain_ok(10.0));
        assert_eq!(events_named("drift_detected"), 2);
        // And the gauge tracks the latest divergence, bit for bit.
        let d = m.source("s").unwrap();
        let gauge = obs.registry.gauge(
            "qpo_source_divergence",
            &[("source", "s"), ("stat", "latency")],
        );
        assert_eq!(
            gauge.get().to_bits(),
            d.latency_divergence().unwrap().to_bits()
        );
    }

    #[test]
    fn json_export_is_parseable_and_lists_drifting_pairs() {
        let mut m = DivergenceMonitor::detached();
        m.declare(
            "s",
            SourceExpectation {
                latency: 1.0,
                ..SourceExpectation::default()
            },
        );
        m.observe("s", chain_ok(10.0));
        let json = m.to_json();
        let doc = parse_json(&json).expect("well-formed");
        let drifting = doc.get("drifting").expect("drifting array");
        assert!(matches!(drifting, Json::Array(items) if !items.is_empty()));
        assert!(json.contains("\"stat\":\"latency\""));
    }

    #[test]
    fn remote_spans_fold_into_network_and_server_ewmas() {
        let mut m = DivergenceMonitor::detached();
        m.declare(
            "s",
            SourceExpectation {
                latency: 1.0,
                ..SourceExpectation::default()
            },
        );
        let traced = |latency: f64, server: f64| AccessObservation {
            network: Some(latency - server),
            server: Some(server),
            ..chain_ok(latency)
        };
        m.observe("s", traced(2.0, 1.5));
        // An untraced chain in between must not disturb the remote EWMAs.
        m.observe("s", chain_ok(3.0));
        m.observe("s", traced(4.0, 1.0));
        let d = m.source("s").unwrap();
        assert_eq!(d.ewma_server, Some(1.5 + 0.2 * (1.0 - 1.5)));
        assert_eq!(d.ewma_network, Some(0.5 + 0.2 * (3.0 - 0.5)));
        let json = m.to_json();
        assert!(json.contains("\"ewma_network\":"));
        assert!(json.contains("\"ewma_server\":"));
    }

    #[test]
    fn replay_recomputes_remote_ewmas_bit_for_bit() {
        let obs = crate::Obs::with_trace();
        obs.journal.record("run_started", vec![]);
        let mut live = DivergenceMonitor::detached();
        for (latency, total) in [(2.5f64, 1.75f64), (3.25, 2.0)] {
            obs.journal.record(
                "source_attempt",
                vec![
                    ("plan_seq", Value::U64(0)),
                    ("source", Value::Str("s".into())),
                    ("attempt", Value::U64(1)),
                    ("backoff", Value::F64(0.0)),
                    ("latency", Value::F64(latency)),
                    ("outcome", Value::Str("ok".into())),
                    ("remote_total", Value::F64(total)),
                    ("remote_recv", Value::F64(total * 0.25)),
                    ("remote_lookup", Value::F64(total * 0.5)),
                    ("remote_encode", Value::F64(total * 0.25)),
                    ("remote_seq", Value::U64(7)),
                ],
            );
            obs.journal.record(
                "plan_completed",
                vec![
                    ("plan_seq", Value::U64(0)),
                    ("latency", Value::F64(latency)),
                    ("tuples", Value::U64(2)),
                ],
            );
            live.observe(
                "s",
                AccessObservation {
                    tuples: Some(2.0),
                    network: Some(latency - total),
                    server: Some(total),
                    ..chain_ok(latency)
                },
            );
        }
        let replayed =
            DivergenceMonitor::from_events(&obs.journal.events(), DivergenceConfig::default());
        let (r, l) = (replayed.source("s").unwrap(), live.source("s").unwrap());
        assert_eq!(
            r.ewma_network.unwrap().to_bits(),
            l.ewma_network.unwrap().to_bits()
        );
        assert_eq!(
            r.ewma_server.unwrap().to_bits(),
            l.ewma_server.unwrap().to_bits()
        );
    }

    #[test]
    fn replay_resets_at_run_boundaries() {
        // Two runs in one journal: the replayed state is the second
        // run's, because live gauges are overwritten by the later run.
        let obs = crate::Obs::with_trace();
        for latency in [7.0f64, 3.0] {
            obs.journal.record("run_started", vec![]);
            obs.journal.record(
                "source_declared",
                vec![
                    ("source", Value::Str("s".into())),
                    ("latency", Value::F64(1.0)),
                    ("transient_rate", Value::F64(0.0)),
                    ("tuples", Value::F64(5.0)),
                ],
            );
            obs.journal.record(
                "source_attempt",
                vec![
                    ("plan_seq", Value::U64(0)),
                    ("source", Value::Str("s".into())),
                    ("attempt", Value::U64(1)),
                    ("backoff", Value::F64(0.0)),
                    ("latency", Value::F64(latency)),
                    ("outcome", Value::Str("ok".into())),
                ],
            );
            obs.journal.record(
                "plan_completed",
                vec![
                    ("plan_seq", Value::U64(0)),
                    ("latency", Value::F64(latency)),
                    ("tuples", Value::U64(4)),
                ],
            );
        }
        let replayed =
            DivergenceMonitor::from_events(&obs.journal.events(), DivergenceConfig::default());
        let d = replayed.source("s").unwrap();
        assert_eq!(d.accesses, 1, "first run's estimators were reset");
        assert_eq!(d.ewma_latency, Some(3.0));
        let from_jsonl =
            DivergenceMonitor::from_jsonl(&obs.journal.to_jsonl(), DivergenceConfig::default())
                .unwrap();
        assert_eq!(
            d,
            from_jsonl.source("s").unwrap(),
            "both replay paths agree"
        );
    }
}
