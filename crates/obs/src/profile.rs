//! Post-hoc query profiling: a hierarchical span tree reconstructed from
//! the trace journal alone.
//!
//! The executor journals every run on a **serial virtual clock** (plan
//! latencies summed in emission order), so the JSONL trace — and
//! therefore everything this module derives from it — is byte-identical
//! across worker counts. [`ProfileIndex`] replays a journal (live
//! [`TraceEvent`]s or a JSONL file) into one [`RunProfile`] per
//! `run_started` scope:
//!
//! ```text
//! run
//! ├── prepare   (kernel events before the first emission)
//! ├── ordering  (kernel events interleaved with emissions)
//! └── plan* — schedule wait · per-source {backoff, attempt}* · join · self
//!                              └ remote: network + server {recv, lookup, encode}
//! ```
//!
//! When a source chain's successful attempt carried a server span block
//! over the wire (tcp backends against a tracing `qpo-source-server`),
//! the executor journals it as `remote_*` fields and this module
//! stitches a [`RemoteSpan`] child under the attempt: the charged
//! latency decomposes into a server portion (with its receive/parse,
//! provider-lookup, and row-encode phases) and a `network` residual that
//! bit-equals `charge − server_total`. Legacy servers send no block and
//! the chain degrades to the single-span attribution above.
//!
//! Per-plan attribution is **exact, not differenced**: the runtime
//! journals each attempt's `backoff` and `latency` charges and each
//! terminal event's plan `latency` explicitly, and this module re-sums
//! them in the same left-to-right order the executor used. The run's
//! critical path (the sum of plan latencies in emission order) therefore
//! bit-equals the serial makespan the executor reports in its
//! `run_finished` event — [`RunProfile::check`] and the differential
//! tests pin that down to `f64::to_bits`.
//!
//! Session traces (emission-count clock) profile through the same code:
//! their terminal events carry the plan's *cost* as the latency analog,
//! so a session's critical path equals its cumulative spent cost.
//!
//! Renderers: [`RunProfile::render_text`] is the `EXPLAIN ANALYZE`-style
//! aligned view answering "which plan chain bounded the run and which
//! source dominated it"; [`RunProfile::to_json`] and
//! [`ProfileIndex::to_json`] are the machine form the introspection
//! server's `/profile` endpoint serves byte-identically.

use crate::journal::{push_f64, push_str, TraceEvent, TraceJournal, Value};
use crate::json::{parse_json, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The server-side span block stitched under a source chain's successful
/// attempt, journalled by the executor as `remote_*` fields when the
/// backend's wire reply carried one (tcp backends against a tracing
/// server). All times are in the run's virtual units; `network` is the
/// client-observed residual `charge − total`, reproduced here with the
/// same single f64 subtraction the executor performed live so the
/// attribution is exact to the bit.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteSpan {
    /// Server time from frame receipt to request parse.
    pub recv_parse: f64,
    /// Server time resolving the provider for the requested source.
    pub lookup: f64,
    /// Server time encoding the result rows.
    pub encode: f64,
    /// Total server-side time for the request (≥ the phase sum).
    pub total: f64,
    /// The attempt latency the executor charged for this access — the
    /// parent the remote span nests inside.
    pub charge: f64,
    /// Network + framing residual: `charge − total`.
    pub network: f64,
    /// The server's monotonically increasing request counter.
    pub server_seq: u64,
}

/// One source's sub-span within a plan: the retry chain with its two
/// charge kinds (backoff wait, attempt latency) re-summed in the order
/// the runtime charged them.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceSpan {
    /// Source name.
    pub name: String,
    /// Attempts observed (highest `attempt` field).
    pub attempts: u64,
    /// Attempts that failed transiently (timeouts included).
    pub transient: u64,
    /// Total backoff wait before attempts.
    pub backoff: f64,
    /// Total attempt latency charged.
    pub attempt_time: f64,
    /// Total time on this source, accumulated in charge order
    /// (backoff, attempt, backoff, attempt, …) so it bit-equals the
    /// runtime's own accumulation for the access.
    pub total: f64,
    /// Outcome of the final attempt (`ok`/`timeout`/`transient`/`permanent`).
    pub outcome: String,
    /// The server span block from the successful attempt, when the wire
    /// reply carried one. At most one per chain: only an `ok` attempt
    /// ends the chain, and only `ok` replies carry a span block.
    pub remote: Option<RemoteSpan>,
}

/// Terminal status of a profiled plan span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanStatus {
    /// Executed and merged (`plan_completed`).
    Completed,
    /// Marked failed (`plan_failed`).
    Failed,
    /// Rejected by the soundness test (`plan_unsound`).
    Unsound,
    /// No terminal event in the trace (truncated journal).
    Open,
}

impl SpanStatus {
    /// Stable lowercase label used by both renderers.
    pub fn label(&self) -> &'static str {
        match self {
            SpanStatus::Completed => "completed",
            SpanStatus::Failed => "failed",
            SpanStatus::Unsound => "unsound",
            SpanStatus::Open => "open",
        }
    }
}

/// One plan's span: schedule wait, per-source sub-spans, join and self
/// time, with the exact latency the executor charged.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSpan {
    /// Emission sequence number within the run.
    pub seq: u64,
    /// The plan, encoded as by [`crate::encode_plan`].
    pub plan: String,
    /// Utility at emission time.
    pub utility: f64,
    /// Serial clock of the `plan_emitted` event.
    pub start: f64,
    /// Serial clock of the terminal event (equals `start` while open).
    pub end: f64,
    /// The plan's charged latency (terminal event's `latency` field;
    /// session traces carry the plan's cost here).
    pub latency: f64,
    /// Schedule wait: time between emission and execution start, i.e.
    /// `(end - start) - latency`, clamped at zero.
    pub wait: f64,
    /// Join time: latency not attributable to the critical source.
    pub join: f64,
    /// Self time: latency with no child span to carry it (plans without
    /// source sub-spans keep their whole latency here).
    pub self_time: f64,
    /// Terminal status.
    pub status: SpanStatus,
    /// Source accesses served from the memo (zero-duration shortcuts).
    pub memo_hits: u64,
    /// Prefix length seeded from the subplan memo, if journalled.
    pub reused_prefix: Option<u64>,
    /// Tuples the plan returned (`plan_completed` only).
    pub tuples: Option<u64>,
    /// Per-source sub-spans, in first-attempt order.
    pub sources: Vec<SourceSpan>,
    /// Index into `sources` of the critical (slowest) source.
    pub critical_source: Option<usize>,
}

impl PlanSpan {
    /// Total span time: schedule wait plus charged latency.
    pub fn total(&self) -> f64 {
        self.wait + self.latency
    }
}

/// The reconstructed profile of one `run_started` scope.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunProfile {
    /// Zero-based run index within the journal.
    pub run: u64,
    /// The session strategy, when the run was a serving session.
    pub strategy: Option<String>,
    /// The executor lookahead, when the run was a concurrent run.
    pub lookahead: Option<u64>,
    /// Kernel events before the first plan emission (orderer build).
    pub prepare_events: u64,
    /// Kernel events interleaved with emissions (incremental ordering).
    pub ordering_events: u64,
    /// Plan spans in emission order.
    pub plans: Vec<PlanSpan>,
    /// The serial makespan the run reported in `run_finished`, if any.
    pub makespan: Option<f64>,
    /// Distinct answers reported in `run_finished`, if any.
    pub answers: Option<u64>,
    /// Critical-path length: plan latencies summed in emission order —
    /// the same fold the executor's serial clock performs, so it
    /// bit-equals `makespan` on executor traces.
    pub critical_path: f64,
}

impl RunProfile {
    /// The plan that bounded the run: largest latency, earliest on ties.
    pub fn critical_plan(&self) -> Option<&PlanSpan> {
        self.plans
            .iter()
            .filter(|p| p.latency > 0.0)
            .max_by(|a, b| match a.latency.total_cmp(&b.latency) {
                std::cmp::Ordering::Equal => b.seq.cmp(&a.seq),
                other => other,
            })
    }

    /// The source that dominated the run: largest summed span time
    /// across all plans, alphabetically first on ties.
    pub fn dominant_source(&self) -> Option<(String, f64)> {
        let mut totals: BTreeMap<&str, f64> = BTreeMap::new();
        for p in &self.plans {
            for s in &p.sources {
                *totals.entry(&s.name).or_insert(0.0) += s.total;
            }
        }
        let mut best: Option<(&str, f64)> = None;
        for (name, total) in &totals {
            if best.is_none_or(|(_, t)| *total > t) {
                best = Some((name, *total));
            }
        }
        best.map(|(n, t)| (n.to_string(), t))
    }

    /// Structural invariants of the span tree, used by the CI
    /// `trace-validate` gate and the property tests:
    ///
    /// 1. children nest within their parent (plan spans are ordered and
    ///    non-negative; every source total is bounded by the plan
    ///    latency);
    /// 2. self times are non-negative and the critical decomposition
    ///    (critical source + join + self) sums exactly to the latency;
    /// 3. the critical path never exceeds the reported makespan;
    /// 4. stitched remote spans nest within their attempt charge, their
    ///    phases sum within the server total, and the network residual
    ///    bit-equals `charge − total` (the executor's own subtraction).
    pub fn check(&self) -> Result<(), String> {
        let fail = |msg: String| Err(format!("run {}: {msg}", self.run));
        let mut cursor = f64::NEG_INFINITY;
        for p in &self.plans {
            if p.end < p.start {
                return fail(format!(
                    "plan {} span inverted ({}..{})",
                    p.seq, p.start, p.end
                ));
            }
            if p.start < cursor {
                return fail(format!("plan {} emitted before its predecessor's", p.seq));
            }
            cursor = p.start;
            if !(p.wait >= 0.0 && p.join >= 0.0 && p.self_time >= 0.0 && p.latency >= 0.0) {
                return fail(format!("plan {} has a negative time", p.seq));
            }
            let mut critical = 0.0f64;
            for s in &p.sources {
                if s.total < 0.0 || s.backoff < 0.0 || s.attempt_time < 0.0 {
                    return fail(format!("plan {} source {} negative time", p.seq, s.name));
                }
                if p.status != SpanStatus::Open && s.total > p.latency {
                    return fail(format!(
                        "plan {} source {} escapes its parent span ({} > {})",
                        p.seq, s.name, s.total, p.latency
                    ));
                }
                if let Some(r) = &s.remote {
                    if !(r.recv_parse >= 0.0
                        && r.lookup >= 0.0
                        && r.encode >= 0.0
                        && r.total >= 0.0)
                    {
                        return fail(format!(
                            "plan {} source {} remote span has a negative phase",
                            p.seq, s.name
                        ));
                    }
                    if r.total > r.charge {
                        return fail(format!(
                            "plan {} source {} remote span escapes its attempt ({} > {})",
                            p.seq, s.name, r.total, r.charge
                        ));
                    }
                    if r.recv_parse + r.lookup + r.encode > r.total {
                        return fail(format!(
                            "plan {} source {} remote phases exceed the server total",
                            p.seq, s.name
                        ));
                    }
                    if r.network.to_bits() != (r.charge - r.total).to_bits() {
                        return fail(format!(
                            "plan {} source {} network residual is not exact ({} != {} - {})",
                            p.seq, s.name, r.network, r.charge, r.total
                        ));
                    }
                }
                critical = critical.max(s.total);
            }
            if !p.sources.is_empty() && p.status != SpanStatus::Open {
                let sum = critical + p.join + p.self_time;
                if sum != p.latency {
                    return fail(format!(
                        "plan {} attribution leaks: {} + {} + {} != {}",
                        p.seq, critical, p.join, p.self_time, p.latency
                    ));
                }
            }
        }
        if let Some(makespan) = self.makespan {
            if self.critical_path > makespan {
                return fail(format!(
                    "critical path {} exceeds makespan {makespan}",
                    self.critical_path
                ));
            }
        }
        Ok(())
    }

    /// The machine-readable profile, hand-rolled like every exporter in
    /// this crate (the `/profile?run=…` endpoint serves these bytes).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"run\":{}", self.run);
        out.push_str(",\"strategy\":");
        match &self.strategy {
            Some(s) => push_str(&mut out, s),
            None => out.push_str("null"),
        }
        out.push_str(",\"lookahead\":");
        match self.lookahead {
            Some(n) => {
                let _ = write!(out, "{n}");
            }
            None => out.push_str("null"),
        }
        let _ = write!(
            out,
            ",\"prepare_events\":{},\"ordering_events\":{}",
            self.prepare_events, self.ordering_events
        );
        out.push_str(",\"makespan\":");
        match self.makespan {
            Some(m) => push_f64(&mut out, m),
            None => out.push_str("null"),
        }
        out.push_str(",\"answers\":");
        match self.answers {
            Some(a) => {
                let _ = write!(out, "{a}");
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"critical_path\":");
        push_f64(&mut out, self.critical_path);
        out.push_str(",\"bounding_plan\":");
        match self.critical_plan() {
            Some(p) => push_str(&mut out, &p.plan),
            None => out.push_str("null"),
        }
        out.push_str(",\"dominant_source\":");
        match self.dominant_source() {
            Some((name, total)) => {
                out.push_str("{\"source\":");
                push_str(&mut out, &name);
                out.push_str(",\"total\":");
                push_f64(&mut out, total);
                out.push('}');
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"plans\":[");
        for (i, p) in self.plans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"seq\":{},\"plan\":", p.seq);
            push_str(&mut out, &p.plan);
            out.push_str(",\"utility\":");
            push_f64(&mut out, p.utility);
            let _ = write!(out, ",\"status\":\"{}\"", p.status.label());
            out.push_str(",\"start\":");
            push_f64(&mut out, p.start);
            out.push_str(",\"end\":");
            push_f64(&mut out, p.end);
            out.push_str(",\"wait\":");
            push_f64(&mut out, p.wait);
            out.push_str(",\"latency\":");
            push_f64(&mut out, p.latency);
            out.push_str(",\"join\":");
            push_f64(&mut out, p.join);
            out.push_str(",\"self\":");
            push_f64(&mut out, p.self_time);
            let _ = write!(out, ",\"memo_hits\":{}", p.memo_hits);
            out.push_str(",\"reused_prefix\":");
            match p.reused_prefix {
                Some(n) => {
                    let _ = write!(out, "{n}");
                }
                None => out.push_str("null"),
            }
            out.push_str(",\"tuples\":");
            match p.tuples {
                Some(n) => {
                    let _ = write!(out, "{n}");
                }
                None => out.push_str("null"),
            }
            out.push_str(",\"sources\":[");
            for (j, s) in p.sources.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("{\"source\":");
                push_str(&mut out, &s.name);
                let _ = write!(
                    out,
                    ",\"attempts\":{},\"transient\":{}",
                    s.attempts, s.transient
                );
                out.push_str(",\"backoff\":");
                push_f64(&mut out, s.backoff);
                out.push_str(",\"attempt_time\":");
                push_f64(&mut out, s.attempt_time);
                out.push_str(",\"total\":");
                push_f64(&mut out, s.total);
                out.push_str(",\"outcome\":");
                push_str(&mut out, &s.outcome);
                if let Some(r) = &s.remote {
                    out.push_str(",\"remote\":{\"total\":");
                    push_f64(&mut out, r.total);
                    out.push_str(",\"recv_parse\":");
                    push_f64(&mut out, r.recv_parse);
                    out.push_str(",\"lookup\":");
                    push_f64(&mut out, r.lookup);
                    out.push_str(",\"encode\":");
                    push_f64(&mut out, r.encode);
                    out.push_str(",\"network\":");
                    push_f64(&mut out, r.network);
                    let _ = write!(out, ",\"server_seq\":{}}}", r.server_seq);
                }
                let _ = write!(out, ",\"critical\":{}}}", p.critical_source == Some(j));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// The `EXPLAIN ANALYZE`-style aligned text view: run header, the
    /// plan chain that bounded the run, the source that dominated it,
    /// then one aligned row per plan with its source sub-spans.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "run {}", self.run);
        if let Some(s) = &self.strategy {
            let _ = write!(out, " · strategy={s}");
        }
        if let Some(n) = self.lookahead {
            let _ = write!(out, " · lookahead={n}");
        }
        let _ = write!(out, " · plans={}", self.plans.len());
        if let Some(a) = self.answers {
            let _ = write!(out, " · answers={a}");
        }
        out.push_str(" · critical-path=");
        push_num(&mut out, self.critical_path);
        if let Some(m) = self.makespan {
            out.push_str(" · makespan=");
            push_num(&mut out, m);
        }
        out.push('\n');
        let _ = writeln!(
            out,
            "prepare: {} kernel events · ordering: {} kernel events",
            self.prepare_events, self.ordering_events
        );
        match self.critical_plan() {
            Some(p) => {
                let _ = write!(out, "bounded by plan {} [{}] (latency ", p.seq, p.plan);
                push_num(&mut out, p.latency);
                out.push(')');
            }
            None => out.push_str("bounded by no plan (zero-latency run)"),
        }
        match self.dominant_source() {
            Some((name, total)) => {
                let _ = write!(out, " · dominated by source {name} (total ");
                push_num(&mut out, total);
                out.push_str(")\n");
            }
            None => out.push_str(" · no source accesses\n"),
        }
        // Aligned plan table: compute column widths over shortest-form
        // numbers so the layout is deterministic for byte-identity tests.
        let rows: Vec<[String; 8]> = self
            .plans
            .iter()
            .map(|p| {
                [
                    p.seq.to_string(),
                    p.plan.clone(),
                    p.status.label().to_string(),
                    num(p.wait),
                    num(p.latency),
                    num(p.join),
                    num(p.self_time),
                    match p.critical_source {
                        Some(i) => p.sources[i].name.clone(),
                        None => "-".to_string(),
                    },
                ]
            })
            .collect();
        let header = [
            "seq",
            "plan",
            "status",
            "wait",
            "latency",
            "join",
            "self",
            "crit-source",
        ];
        let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        out.push_str("  ");
        for (i, h) in header.iter().enumerate() {
            let _ = write!(out, "{:<width$}  ", h, width = widths[i]);
        }
        out.push('\n');
        for (p, row) in self.plans.iter().zip(rows.iter()) {
            out.push_str("  ");
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(out, "{:<width$}  ", cell, width = widths[i]);
            }
            out.push('\n');
            for (j, s) in p.sources.iter().enumerate() {
                let _ = write!(out, "      └ {}: attempts={} backoff=", s.name, s.attempts);
                push_num(&mut out, s.backoff);
                out.push_str(" attempt=");
                push_num(&mut out, s.attempt_time);
                out.push_str(" total=");
                push_num(&mut out, s.total);
                let _ = write!(out, " outcome={}", s.outcome);
                if let Some(r) = &s.remote {
                    out.push_str(" server=");
                    push_num(&mut out, r.total);
                    out.push_str(" network=");
                    push_num(&mut out, r.network);
                }
                if p.critical_source == Some(j) {
                    out.push_str(" «critical»");
                }
                out.push('\n');
            }
            if p.memo_hits > 0 {
                let _ = writeln!(
                    out,
                    "      └ memo: {} shortcut(s) at plan start",
                    p.memo_hits
                );
            }
        }
        out
    }
}

/// Shortest-roundtrip number rendering shared by the text renderer (the
/// JSON side uses the journal's `push_f64`, which renders identically
/// for finite values).
fn num(v: f64) -> String {
    let mut s = String::new();
    push_num(&mut s, v);
    s
}

fn push_num(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("nan");
    }
}

/// All run profiles reconstructed from one journal.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileIndex {
    runs: Vec<RunProfile>,
}

/// Field access shared by the two replay paths: live [`TraceEvent`]s and
/// JSONL lines parsed back through [`parse_json`]. F64 fields round-trip
/// bit-exactly (the exporter writes shortest-roundtrip forms), which is
/// what keeps the offline reconstruction equal to the live one.
enum Fields<'a> {
    Event(&'a TraceEvent),
    Line(&'a Json),
}

impl Fields<'_> {
    fn u64(&self, name: &str) -> Option<u64> {
        match self {
            Fields::Event(ev) => match ev.fields.iter().find(|(k, _)| *k == name)? {
                (_, Value::U64(n)) => Some(*n),
                _ => None,
            },
            Fields::Line(obj) => obj.get(name)?.as_f64().map(|v| v as u64),
        }
    }

    fn f64(&self, name: &str) -> Option<f64> {
        match self {
            Fields::Event(ev) => match ev.fields.iter().find(|(k, _)| *k == name)? {
                (_, Value::F64(x)) => Some(*x),
                _ => None,
            },
            Fields::Line(obj) => obj.get(name)?.as_f64(),
        }
    }

    fn str(&self, name: &str) -> Option<&str> {
        match self {
            Fields::Event(ev) => match ev.fields.iter().find(|(k, _)| *k == name)? {
                (_, Value::Str(s)) => Some(s),
                _ => None,
            },
            Fields::Line(obj) => obj.get(name)?.as_str(),
        }
    }
}

impl ProfileIndex {
    /// Replays recorded events (in journal order) into run profiles.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut b = Builder::default();
        for ev in events {
            b.observe(ev.kind, ev.clock, &Fields::Event(ev));
        }
        b.finish()
    }

    /// Replays a live journal.
    pub fn from_journal(journal: &TraceJournal) -> Self {
        ProfileIndex::from_events(&journal.events())
    }

    /// Replays a JSONL trace file (the `/traces` format). Malformed
    /// lines or missing reserved keys are errors — run `validate_trace`
    /// first for the full structural diagnosis.
    pub fn from_jsonl(jsonl: &str) -> Result<Self, String> {
        let mut b = Builder::default();
        for (i, line) in jsonl.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            let obj = parse_json(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            let kind = obj
                .get("kind")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("line {}: missing kind", i + 1))?
                .to_string();
            let clock = obj
                .get("clock")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("line {}: missing clock", i + 1))?;
            b.observe(&kind, clock, &Fields::Line(&obj));
        }
        Ok(b.finish())
    }

    /// The reconstructed runs, in journal order.
    pub fn runs(&self) -> &[RunProfile] {
        &self.runs
    }

    /// One run by its zero-based index.
    pub fn run(&self, run: u64) -> Option<&RunProfile> {
        self.runs.get(run as usize)
    }

    /// The most recent run.
    pub fn latest(&self) -> Option<&RunProfile> {
        self.runs.last()
    }

    /// All runs as one JSON document: `{"runs":[…]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"runs\":[");
        for (i, r) in self.runs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&r.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// Incremental profile reconstruction over one journal.
#[derive(Default)]
struct Builder {
    runs: Vec<RunProfile>,
    current: Option<RunProfile>,
    /// plan_seq → index into the current run's `plans`.
    index: BTreeMap<u64, usize>,
    /// Kernel events seen before any `run_started` (orderer build work
    /// journalled ahead of the run scope); absorbed by the next run.
    pending_prepare: u64,
}

impl Builder {
    fn observe(&mut self, kind: &str, clock: f64, fields: &Fields<'_>) {
        if kind == "run_started" {
            self.flush();
            let mut run = RunProfile {
                run: self.runs.len() as u64,
                strategy: fields.str("strategy").map(str::to_string),
                lookahead: fields.u64("lookahead"),
                ..RunProfile::default()
            };
            run.prepare_events = self.pending_prepare;
            self.pending_prepare = 0;
            self.current = Some(run);
            return;
        }
        if kind.starts_with("kernel_") {
            match &mut self.current {
                Some(run) if run.plans.is_empty() => run.prepare_events += 1,
                Some(run) => run.ordering_events += 1,
                None => self.pending_prepare += 1,
            }
            return;
        }
        let Some(run) = &mut self.current else {
            return;
        };
        match kind {
            "plan_emitted" => {
                let seq = fields.u64("plan_seq").unwrap_or(run.plans.len() as u64);
                self.index.insert(seq, run.plans.len());
                run.plans.push(PlanSpan {
                    seq,
                    plan: fields.str("plan").unwrap_or_default().to_string(),
                    utility: fields.f64("utility").unwrap_or(0.0),
                    start: clock,
                    end: clock,
                    latency: 0.0,
                    wait: 0.0,
                    join: 0.0,
                    self_time: 0.0,
                    status: SpanStatus::Open,
                    memo_hits: 0,
                    reused_prefix: None,
                    tuples: None,
                    sources: Vec::new(),
                    critical_source: None,
                });
            }
            "memo_hit" => {
                if let Some(p) = self.plan_mut(fields) {
                    p.memo_hits += 1;
                }
            }
            "subplan_reused" => {
                let prefix = fields.u64("prefix_len");
                if let Some(p) = self.plan_mut(fields) {
                    p.reused_prefix = prefix.or(Some(0));
                }
            }
            "source_attempt" => {
                let attempt = fields.u64("attempt").unwrap_or(0);
                let backoff = fields.f64("backoff").unwrap_or(0.0);
                let charge = fields.f64("latency").unwrap_or(0.0);
                let outcome = fields.str("outcome").unwrap_or("").to_string();
                let name = fields.str("source").unwrap_or("").to_string();
                // The network residual repeats the executor's live
                // subtraction (charge − server total) on the journalled
                // f64s, so the stitched attribution is bit-exact.
                let remote = fields.f64("remote_total").map(|total| RemoteSpan {
                    recv_parse: fields.f64("remote_recv").unwrap_or(0.0),
                    lookup: fields.f64("remote_lookup").unwrap_or(0.0),
                    encode: fields.f64("remote_encode").unwrap_or(0.0),
                    total,
                    charge,
                    network: charge - total,
                    server_seq: fields.u64("remote_seq").unwrap_or(0),
                });
                if let Some(p) = self.plan_mut(fields) {
                    let s = match p.sources.iter_mut().find(|s| s.name == name) {
                        Some(s) => s,
                        None => {
                            p.sources.push(SourceSpan {
                                name,
                                attempts: 0,
                                transient: 0,
                                backoff: 0.0,
                                attempt_time: 0.0,
                                total: 0.0,
                                outcome: String::new(),
                                remote: None,
                            });
                            p.sources.last_mut().expect("just pushed")
                        }
                    };
                    s.attempts = s.attempts.max(attempt);
                    s.transient += u64::from(outcome == "timeout" || outcome == "transient");
                    s.backoff += backoff;
                    s.attempt_time += charge;
                    // Charge order matters for bit-equality with the
                    // runtime's own per-access accumulation.
                    s.total += backoff;
                    s.total += charge;
                    s.outcome = outcome;
                    if let Some(r) = remote {
                        s.remote = Some(r);
                    }
                }
            }
            "plan_completed" | "plan_failed" | "plan_unsound" => {
                let latency = fields.f64("latency").unwrap_or(0.0);
                let tuples = fields.u64("tuples");
                let status = match kind {
                    "plan_completed" => SpanStatus::Completed,
                    "plan_failed" => SpanStatus::Failed,
                    _ => SpanStatus::Unsound,
                };
                if let Some(p) = self.plan_mut(fields) {
                    p.end = clock;
                    p.latency = latency;
                    p.status = status;
                    p.tuples = tuples;
                    close_plan(p);
                }
            }
            // First seal wins. A session abandoned mid-stream seals its
            // trace on drop, which can land *after* a newer run already
            // started and sealed (e.g. `drop(session)` late in an
            // example); that stray event must not overwrite the current
            // run's own makespan and answer count.
            "run_finished" if run.makespan.is_none() && run.answers.is_none() => {
                run.makespan = fields.f64("makespan");
                run.answers = fields.u64("answers");
            }
            _ => {}
        }
    }

    fn plan_mut(&mut self, fields: &Fields<'_>) -> Option<&mut PlanSpan> {
        let run = self.current.as_mut()?;
        let seq = fields.u64("plan_seq")?;
        run.plans.get_mut(*self.index.get(&seq)?)
    }

    fn flush(&mut self) {
        if let Some(mut run) = self.current.take() {
            // The same left-to-right fold the executor's serial clock
            // performs, hence bit-equal to its reported makespan.
            let mut cp = 0.0f64;
            for p in &run.plans {
                cp += p.latency;
            }
            run.critical_path = cp;
            self.runs.push(run);
        }
        self.index.clear();
    }

    fn finish(mut self) -> ProfileIndex {
        self.flush();
        // run_finished fields were parked on the builder via plan-less
        // events; nothing further to do here.
        ProfileIndex { runs: self.runs }
    }
}

/// Final attribution for a closed plan span: schedule wait from the
/// clock delta, then the critical decomposition of the charged latency
/// into critical source, join, and self. Plans without source sub-spans
/// keep their whole latency as self time (session traces: the plan's
/// cost).
fn close_plan(p: &mut PlanSpan) {
    p.wait = ((p.end - p.start) - p.latency).max(0.0);
    if p.sources.is_empty() {
        p.critical_source = None;
        p.join = 0.0;
        p.self_time = p.latency;
        return;
    }
    let mut best = 0usize;
    for (i, s) in p.sources.iter().enumerate() {
        if s.total > p.sources[best].total {
            best = i;
        }
    }
    p.critical_source = Some(best);
    let critical = p.sources[best].total;
    p.join = (p.latency - critical).max(0.0);
    p.self_time = (p.latency - critical - p.join).max(0.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-plan run journalled the way the executor does: plan 0 has a
    /// retried source and a fast one, plan 1 hits the memo and runs
    /// source-free (charged latency 0).
    fn fixture() -> TraceJournal {
        let j = TraceJournal::enabled();
        j.record("kernel_seeded", vec![("buckets", Value::U64(3))]);
        j.record("run_started", vec![("lookahead", Value::U64(2))]);
        j.record("kernel_refinement", vec![("frontier", Value::U64(1))]);
        j.record(
            "plan_emitted",
            vec![
                ("plan_seq", Value::U64(0)),
                ("plan", Value::Str("v2.v3".into())),
                ("utility", Value::F64(0.8)),
            ],
        );
        j.record(
            "plan_emitted",
            vec![
                ("plan_seq", Value::U64(1)),
                ("plan", Value::Str("v2.v4".into())),
                ("utility", Value::F64(0.5)),
            ],
        );
        for (attempt, backoff, charge, outcome) in
            [(1u64, 0.0, 2.0, "timeout"), (2, 0.5, 2.5, "ok")]
        {
            j.record(
                "source_attempt",
                vec![
                    ("plan_seq", Value::U64(0)),
                    ("source", Value::Str("v2".into())),
                    ("attempt", Value::U64(attempt)),
                    ("backoff", Value::F64(backoff)),
                    ("latency", Value::F64(charge)),
                    ("outcome", Value::Str(outcome.into())),
                ],
            );
        }
        j.record(
            "source_attempt",
            vec![
                ("plan_seq", Value::U64(0)),
                ("source", Value::Str("v3".into())),
                ("attempt", Value::U64(1)),
                ("backoff", Value::F64(0.0)),
                ("latency", Value::F64(1.0)),
                ("outcome", Value::Str("ok".into())),
            ],
        );
        j.record(
            "plan_completed",
            vec![
                ("plan_seq", Value::U64(0)),
                ("latency", Value::F64(5.0)),
                ("tuples", Value::U64(7)),
            ],
        );
        j.set_clock(5.0);
        j.record(
            "memo_hit",
            vec![
                ("plan_seq", Value::U64(1)),
                ("source", Value::Str("v2".into())),
                ("warm", Value::Bool(true)),
            ],
        );
        j.record(
            "plan_completed",
            vec![
                ("plan_seq", Value::U64(1)),
                ("latency", Value::F64(0.0)),
                ("tuples", Value::U64(7)),
            ],
        );
        j.record(
            "run_finished",
            vec![
                ("plans", Value::U64(2)),
                ("answers", Value::U64(7)),
                ("makespan", Value::F64(5.0)),
            ],
        );
        j
    }

    #[test]
    fn reconstructs_the_span_tree_with_exact_attribution() {
        let index = ProfileIndex::from_journal(&fixture());
        assert_eq!(index.runs().len(), 1);
        let run = index.latest().unwrap();
        run.check().expect("invariants");
        // Kernel event before run_started counts as prepare work, the
        // one after (pre-emission) too.
        assert_eq!(run.prepare_events, 2);
        assert_eq!(run.lookahead, Some(2));
        assert_eq!(run.makespan, Some(5.0));
        assert_eq!(run.critical_path.to_bits(), 5.0f64.to_bits());

        let p0 = &run.plans[0];
        assert_eq!(p0.status, SpanStatus::Completed);
        // v2's chain: 0 + 2, then 0.5 + 2.5 — total 5, the critical
        // source; v3 contributes 1. Wait is the clock delta minus the
        // charged latency (both clocks are 0 here, so it clamps to 0).
        assert_eq!(p0.sources.len(), 2);
        let v2 = &p0.sources[0];
        assert_eq!((v2.attempts, v2.transient), (2, 1));
        assert_eq!(v2.total, 5.0);
        assert_eq!(v2.backoff, 0.5);
        assert_eq!(v2.attempt_time, 4.5);
        assert_eq!(v2.outcome, "ok");
        assert_eq!(p0.critical_source, Some(0));
        assert_eq!((p0.wait, p0.join, p0.self_time), (0.0, 0.0, 0.0));

        let p1 = &run.plans[1];
        assert_eq!(p1.memo_hits, 1);
        assert_eq!(p1.latency, 0.0);
        assert_eq!(p1.wait, 5.0, "emitted at 0, merged at clock 5");

        assert_eq!(run.critical_plan().unwrap().seq, 0);
        assert_eq!(run.dominant_source(), Some(("v2".to_string(), 5.0)));
    }

    #[test]
    fn renderers_agree_with_the_reconstruction() {
        let index = ProfileIndex::from_journal(&fixture());
        let run = index.latest().unwrap();
        let text = run.render_text();
        assert!(text.contains("critical-path=5"), "{text}");
        assert!(text.contains("bounded by plan 0 [v2.v3]"), "{text}");
        assert!(text.contains("dominated by source v2"), "{text}");
        assert!(text.contains("«critical»"), "{text}");
        assert!(text.contains("memo: 1 shortcut(s)"), "{text}");
        let json = run.to_json();
        crate::json::parse_json(&json).expect("well-formed");
        assert!(json.contains("\"bounding_plan\":\"v2.v3\""));
        // The JSONL path rebuilds the identical index.
        let jsonl = fixture().to_jsonl();
        assert_eq!(ProfileIndex::from_jsonl(&jsonl).unwrap(), index);
    }

    #[test]
    fn truncated_traces_leave_spans_open() {
        let j = TraceJournal::enabled();
        j.record("run_started", vec![]);
        j.record(
            "plan_emitted",
            vec![
                ("plan_seq", Value::U64(0)),
                ("plan", Value::Str("v1".into())),
                ("utility", Value::F64(0.1)),
            ],
        );
        let index = ProfileIndex::from_journal(&j);
        let run = index.latest().unwrap();
        run.check().expect("open spans are valid");
        assert_eq!(run.plans[0].status, SpanStatus::Open);
        assert_eq!(run.plans[0].latency, 0.0);
        assert_eq!(run.makespan, None);
    }

    #[test]
    fn a_stray_late_seal_does_not_overwrite_the_first() {
        // An abandoned session seals its trace on drop, which can land
        // after a newer run's own run_finished (no run_started between
        // them). The first seal must win.
        let j = fixture();
        j.record(
            "run_finished",
            vec![
                ("plans", Value::U64(1)),
                ("answers", Value::U64(450)),
                ("makespan", Value::F64(0.0)),
            ],
        );
        let index = ProfileIndex::from_journal(&j);
        assert_eq!(index.runs().len(), 1);
        let run = index.latest().unwrap();
        run.check().expect("invariants survive the stray seal");
        assert_eq!(run.makespan, Some(5.0));
        assert_eq!(run.answers, Some(7));
    }

    #[test]
    fn check_rejects_escaping_children_and_leaky_attribution() {
        let mut run = RunProfile::default();
        run.plans.push(PlanSpan {
            seq: 0,
            plan: "p".into(),
            utility: 0.0,
            start: 0.0,
            end: 1.0,
            latency: 1.0,
            wait: 0.0,
            join: 0.0,
            self_time: 0.0,
            status: SpanStatus::Completed,
            memo_hits: 0,
            reused_prefix: None,
            tuples: None,
            sources: vec![SourceSpan {
                name: "s".into(),
                attempts: 1,
                transient: 0,
                backoff: 0.0,
                attempt_time: 2.0,
                total: 2.0,
                outcome: "ok".into(),
                remote: None,
            }],
            critical_source: Some(0),
        });
        let err = run.check().unwrap_err();
        assert!(err.contains("escapes its parent span"), "{err}");
        // Contain the child but break the decomposition sum instead.
        run.plans[0].sources[0].total = 1.0;
        run.plans[0].join = 0.5;
        let err = run.check().unwrap_err();
        assert!(err.contains("attribution leaks"), "{err}");
        // A makespan below the critical path is also rejected.
        run.plans.clear();
        run.critical_path = 2.0;
        run.makespan = Some(1.0);
        let err = run.check().unwrap_err();
        assert!(err.contains("exceeds makespan"), "{err}");
    }

    /// A single-plan run whose one source attempt carries the journalled
    /// remote span fields the executor emits for traced tcp backends.
    fn remote_fixture(total: f64) -> TraceJournal {
        let j = TraceJournal::enabled();
        j.record(
            "run_started",
            vec![
                ("lookahead", Value::U64(1)),
                ("backend", Value::Str("tcp".into())),
            ],
        );
        j.record(
            "plan_emitted",
            vec![
                ("plan_seq", Value::U64(0)),
                ("plan", Value::Str("v1".into())),
                ("utility", Value::F64(0.9)),
            ],
        );
        j.record(
            "source_attempt",
            vec![
                ("plan_seq", Value::U64(0)),
                ("source", Value::Str("v1".into())),
                ("attempt", Value::U64(1)),
                ("backoff", Value::F64(0.0)),
                ("latency", Value::F64(3.0)),
                ("outcome", Value::Str("ok".into())),
                ("remote_total", Value::F64(total)),
                ("remote_recv", Value::F64(0.25)),
                ("remote_lookup", Value::F64(0.5)),
                ("remote_encode", Value::F64(0.75)),
                ("remote_seq", Value::U64(42)),
            ],
        );
        j.set_clock(3.0);
        j.record(
            "plan_completed",
            vec![
                ("plan_seq", Value::U64(0)),
                ("latency", Value::F64(3.0)),
                ("tuples", Value::U64(1)),
            ],
        );
        j.record(
            "run_finished",
            vec![
                ("plans", Value::U64(1)),
                ("answers", Value::U64(1)),
                ("makespan", Value::F64(3.0)),
            ],
        );
        j
    }

    #[test]
    fn remote_spans_stitch_under_the_attempt_exactly() {
        let j = remote_fixture(1.75);
        let index = ProfileIndex::from_journal(&j);
        let run = index.latest().unwrap();
        run.check().expect("remote invariants");
        let r = run.plans[0].sources[0].remote.as_ref().expect("stitched");
        assert_eq!(
            r,
            &RemoteSpan {
                recv_parse: 0.25,
                lookup: 0.5,
                encode: 0.75,
                total: 1.75,
                charge: 3.0,
                network: 3.0 - 1.75,
                server_seq: 42,
            }
        );
        // The decomposition is exact: the network residual is the same
        // f64 subtraction the executor performed live.
        assert_eq!(r.network.to_bits(), (r.charge - r.total).to_bits());
        let json = run.to_json();
        assert!(json.contains("\"remote\":{\"total\":1.75"), "{json}");
        assert!(json.contains("\"server_seq\":42"), "{json}");
        let text = run.render_text();
        assert!(text.contains("server=1.75 network=1.25"), "{text}");
        // The JSONL path rebuilds the identical stitched index.
        let offline = ProfileIndex::from_jsonl(&j.to_jsonl()).unwrap();
        assert_eq!(offline, index);
        assert_eq!(offline.latest().unwrap().to_json(), json);
    }

    #[test]
    fn check_rejects_unsound_remote_spans() {
        // A server total larger than the attempt charge cannot nest.
        let index = ProfileIndex::from_journal(&remote_fixture(3.5));
        let err = index.latest().unwrap().check().unwrap_err();
        assert!(err.contains("remote span escapes its attempt"), "{err}");
        // Phase sum above the server total is rejected too.
        let index = ProfileIndex::from_journal(&remote_fixture(1.0));
        let err = index.latest().unwrap().check().unwrap_err();
        assert!(err.contains("remote phases exceed"), "{err}");
        // And a tampered network residual fails the bit-exactness rule.
        let mut run = ProfileIndex::from_journal(&remote_fixture(1.75))
            .latest()
            .unwrap()
            .clone();
        run.plans[0].sources[0].remote.as_mut().unwrap().network += 1e-9;
        let err = run.check().unwrap_err();
        assert!(err.contains("network residual is not exact"), "{err}");
    }

    #[test]
    fn chains_without_remote_fields_stay_single_span() {
        // The legacy degradation: no remote_* fields, no stitched child.
        let index = ProfileIndex::from_journal(&fixture());
        let run = index.latest().unwrap();
        for p in run.plans.iter() {
            for s in &p.sources {
                assert_eq!(s.remote, None);
            }
        }
        assert!(!run.to_json().contains("\"remote\""));
        assert!(!run.render_text().contains(" server="));
    }

    #[test]
    fn malformed_jsonl_is_an_error_not_a_panic() {
        assert!(ProfileIndex::from_jsonl("{\"seq\":0").is_err());
        assert!(ProfileIndex::from_jsonl("{\"seq\":0}").is_err());
        assert!(ProfileIndex::from_jsonl("").unwrap().runs().is_empty());
    }
}
