//! The metrics registry: atomic counters, gauges, and fixed-bucket log₂
//! histograms, keyed by metric name plus a small label set.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones
//! of shared atomics; recording never takes the registry lock, only
//! handle *creation* does. All updates use relaxed atomics — the registry
//! carries statistics, not synchronization — and every reader sees a
//! value that some interleaving of the updates could have produced.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotone event counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A counter not registered anywhere (still counts; useful as a
    /// default before [`Registry::counter`] re-homes the metric).
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point gauge (also supports accumulation).
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }
}

impl Gauge {
    /// Replaces the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `v` (compare-and-swap loop; contention here is negligible).
    pub fn add(&self, v: f64) {
        let _ = self
            .bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + v).to_bits())
            });
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Exponent of the smallest finite bucket edge: values `≤ 2⁻¹⁰` land in
/// the underflow bucket (index 0).
pub const BUCKET_MIN_EXP: i32 = -10;
/// Exponent of the largest finite bucket edge: values `> 2²⁰` land in the
/// overflow bucket (the last index, upper edge `+∞`).
pub const BUCKET_MAX_EXP: i32 = 20;
/// Finite bucket count: one per edge `2ᵉ`, `e ∈ [−10, 20]`.
pub const FINITE_BUCKETS: usize = (BUCKET_MAX_EXP - BUCKET_MIN_EXP + 1) as usize;
/// Total bucket count, overflow included.
pub const TOTAL_BUCKETS: usize = FINITE_BUCKETS + 1;

/// Upper edge of finite bucket `i` (a power of two; le-semantics: a value
/// equal to an edge belongs to that edge's bucket).
pub fn bucket_edge(i: usize) -> f64 {
    debug_assert!(i < FINITE_BUCKETS);
    2f64.powi(BUCKET_MIN_EXP + i as i32)
}

fn bucket_index(v: f64) -> usize {
    if v.is_nan() {
        return FINITE_BUCKETS; // degenerate input: count it, in overflow
    }
    if v <= bucket_edge(0) {
        return 0; // underflow bucket (zero and negatives included)
    }
    // Powers of two are exact in IEEE, so `v <= edge` places `v == 2ᵏ`
    // precisely in the bucket whose edge is 2ᵏ.
    let mut lo = 1usize;
    let mut hi = FINITE_BUCKETS; // == overflow when no finite edge fits
    while lo < hi {
        let mid = (lo + hi) / 2;
        if v <= bucket_edge(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

#[derive(Debug, Default)]
struct HistogramInner {
    buckets: [AtomicU64; TOTAL_BUCKETS],
    count: AtomicU64,
    sum_bits: AtomicU64,
}

/// A fixed-bucket base-2 logarithmic histogram: 31 finite buckets with
/// upper edges `2⁻¹⁰ … 2²⁰` plus an overflow bucket. The fixed layout
/// keeps recording allocation-free and lets exporters merge snapshots
/// without negotiating bucket boundaries.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    /// A histogram not registered anywhere.
    pub fn detached() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, v: f64) {
        self.inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .inner
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + v).to_bits())
            });
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.inner.sum_bits.load(Ordering::Relaxed))
    }

    /// Point-in-time copy of the bucket counts (non-cumulative, overflow
    /// last).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            buckets,
            count: self.count(),
            sum: self.sum(),
        }
    }

    /// Upper edge of the bucket containing the `q`-quantile observation
    /// (`q ∈ [0, 1]`), `None` when empty. Overflow reports `+∞`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.snapshot().quantile(q)
    }
}

/// A point-in-time copy of one histogram's state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts, overflow last (length [`TOTAL_BUCKETS`]).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Upper edge of the bucket containing the `q`-quantile observation.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based: ceil(q·n), at least 1.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(if i < FINITE_BUCKETS {
                    bucket_edge(i)
                } else {
                    f64::INFINITY
                });
            }
        }
        Some(f64::INFINITY)
    }
}

/// Metric identity: name plus sorted labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricId {
    /// Metric family name (`qpo_kernel_rounds_total`, …).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricId {
            name: name.to_string(),
            labels,
        }
    }

    /// `name{k="v",…}` (bare name when unlabelled).
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let pairs: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", crate::export::escape_label_value(v)))
            .collect();
        format!("{}{{{}}}", self.name, pairs.join(","))
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<MetricId, Counter>,
    gauges: BTreeMap<MetricId, Gauge>,
    histograms: BTreeMap<MetricId, Histogram>,
}

/// Shared metric storage. Cloning shares the store; the `BTreeMap` keys
/// give exporters a deterministic iteration order.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter for `(name, labels)`, creating it on first use.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let id = MetricId::new(name, labels);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.counters.entry(id).or_default().clone()
    }

    /// Returns the gauge for `(name, labels)`, creating it on first use.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let id = MetricId::new(name, labels);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.gauges.entry(id).or_default().clone()
    }

    /// Returns the histogram for `(name, labels)`, creating it on first
    /// use.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let id = MetricId::new(name, labels);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.histograms.entry(id).or_default().clone()
    }

    /// Current value of one counter (0 when absent).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let id = MetricId::new(name, labels);
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.counters.get(&id).map_or(0, Counter::get)
    }

    /// Sum of a counter family over all label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .counters
            .iter()
            .filter(|(id, _)| id.name == name)
            .map(|(_, c)| c.get())
            .sum()
    }

    /// Deterministically ordered copies of every metric, for exporters.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        RegistrySnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(id, c)| (id.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(id, g)| (id.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(id, h)| (id.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// Everything a registry held at one instant, in sorted key order.
#[derive(Debug, Clone)]
pub struct RegistrySnapshot {
    /// Counter values.
    pub counters: Vec<(MetricId, u64)>,
    /// Gauge values.
    pub gauges: Vec<(MetricId, f64)>,
    /// Histogram snapshots.
    pub histograms: Vec<(MetricId, HistogramSnapshot)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_storage() {
        let reg = Registry::new();
        let a = reg.counter("hits", &[("orderer", "idrips")]);
        let b = reg.counter("hits", &[("orderer", "idrips")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same (name, labels) → same cell");
        assert_eq!(reg.counter_value("hits", &[("orderer", "idrips")]), 3);
        assert_eq!(reg.counter_value("hits", &[]), 0, "different label set");
        reg.counter("hits", &[]).add(4);
        assert_eq!(reg.counter_total("hits"), 7);
    }

    #[test]
    fn label_order_does_not_matter() {
        let reg = Registry::new();
        reg.counter("c", &[("a", "1"), ("b", "2")]).inc();
        assert_eq!(reg.counter_value("c", &[("b", "2"), ("a", "1")]), 1);
    }

    #[test]
    fn gauges_set_and_add() {
        let g = Registry::new().gauge("vt", &[]);
        g.set(2.5);
        g.add(1.5);
        assert_eq!(g.get(), 4.0);
    }

    #[test]
    fn exact_powers_of_two_land_on_their_own_edge() {
        for e in BUCKET_MIN_EXP..=BUCKET_MAX_EXP {
            let h = Histogram::detached();
            h.record(2f64.powi(e));
            let snap = h.snapshot();
            let idx = (e - BUCKET_MIN_EXP) as usize;
            assert_eq!(snap.buckets[idx], 1, "2^{e} belongs to its edge bucket");
            assert_eq!(snap.count, 1);
        }
        // … and a nudge above an edge falls into the next bucket.
        let h = Histogram::detached();
        h.record(1.0 + 1e-9);
        assert_eq!(h.snapshot().buckets[(0 - BUCKET_MIN_EXP) as usize + 1], 1);
    }

    #[test]
    fn underflow_and_overflow_buckets() {
        let h = Histogram::detached();
        h.record(0.0);
        h.record(-3.0);
        h.record(2f64.powi(BUCKET_MIN_EXP)); // the smallest edge itself
        h.record(1e-12);
        assert_eq!(h.snapshot().buckets[0], 4, "≤ 2⁻¹⁰ underflows");
        h.record(2f64.powi(BUCKET_MAX_EXP) * 1.01);
        h.record(f64::INFINITY);
        h.record(f64::NAN);
        let snap = h.snapshot();
        assert_eq!(snap.buckets[FINITE_BUCKETS], 3, "> 2²⁰ overflows");
        assert_eq!(snap.count, 7);
    }

    #[test]
    fn quantiles_walk_the_cumulative_counts() {
        let h = Histogram::detached();
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantiles");
        for v in [0.5, 0.5, 0.5, 6.0] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), Some(0.5), "p50 edge is 2⁻¹ = 0.5");
        assert_eq!(h.quantile(0.0), Some(0.5), "p0 clamps to the first bucket");
        assert_eq!(h.quantile(1.0), Some(8.0), "6.0 sits under the 2³ edge");
        h.record(f64::INFINITY);
        assert_eq!(h.quantile(1.0), Some(f64::INFINITY));
        assert_eq!(h.sum(), f64::INFINITY);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn snapshot_is_deterministically_ordered() {
        let reg = Registry::new();
        reg.counter("z", &[]).inc();
        reg.counter("a", &[("l", "2")]).inc();
        reg.counter("a", &[("l", "1")]).inc();
        let names: Vec<String> = reg
            .snapshot()
            .counters
            .iter()
            .map(|(id, _)| id.render())
            .collect();
        assert_eq!(names, vec!["a{l=\"1\"}", "a{l=\"2\"}", "z"]);
    }

    #[test]
    fn metric_id_renders_prometheus_style() {
        let id = MetricId::new("m", &[("b", "2"), ("a", "1")]);
        assert_eq!(id.render(), "m{a=\"1\",b=\"2\"}");
        assert_eq!(MetricId::new("bare", &[]).render(), "bare");
    }

    #[test]
    fn metric_id_escapes_label_values() {
        let id = MetricId::new("m", &[("q", "a\"b\\c\nd")]);
        assert_eq!(id.render(), "m{q=\"a\\\"b\\\\c\\nd\"}");
    }

    #[test]
    fn poisoned_lock_still_registers_and_exports() {
        let reg = Registry::new();
        reg.counter("qpo_survivors_total", &[]).add(2);
        // Poison the registry mutex: a thread panics while holding it.
        let poisoner = reg.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.inner.lock().unwrap();
            panic!("worker dies mid-registration");
        })
        .join();
        assert!(reg.inner.is_poisoned(), "the panic must poison the lock");
        // Telemetry keeps working: registration, reads, and export all
        // recover the inner state instead of cascading the panic.
        reg.counter("qpo_survivors_total", &[]).inc();
        assert_eq!(reg.counter_value("qpo_survivors_total", &[]), 3);
        assert_eq!(reg.counter_total("qpo_survivors_total"), 3);
        reg.gauge("qpo_after_poison", &[]).set(1.5);
        reg.histogram("qpo_after_poison_hist", &[]).record(0.5);
        let text = crate::export::prometheus_text(&reg);
        assert!(text.contains("qpo_survivors_total 3\n"));
        assert!(text.contains("qpo_after_poison 1.5\n"));
    }
}
