//! Scale smoke test: the point of the abstraction algorithms is that the
//! first plans arrive without touching the Cartesian product. Here the
//! product has 125 000 plans; Streamer and Greedy must find the exact best
//! plan after evaluating a tiny fraction of it.

use qpo_catalog::GeneratorConfig;
use qpo_core::{ByExpectedTuples, Greedy, PlanOrderer, Streamer};
use qpo_utility::{CountingMeasure, Coverage, ExecutionContext, LinearCost, UtilityMeasure};

#[test]
fn streamer_finds_the_best_of_125k_plans_with_a_handful_of_evaluations() {
    let inst = GeneratorConfig::new(3, 50).with_seed(4).build();
    assert_eq!(inst.plan_count(), 125_000);
    let measure = CountingMeasure::new(Coverage);
    let mut streamer = Streamer::new(&inst, &measure, &ByExpectedTuples).unwrap();
    let first = streamer.next_plan().expect("non-empty space");

    let evals = measure.total_evals();
    assert!(
        evals < 500,
        "expected a tiny fraction of 125k evaluations, got {evals}"
    );

    // Exactness: with an empty context, coverage is just box volume, so a
    // direct sweep over all plans is cheap enough to serve as the oracle.
    let ctx = ExecutionContext::new();
    let best = inst
        .all_plans()
        .into_iter()
        .map(|p| Coverage.utility(&inst, &p, &ctx))
        .fold(f64::MIN, f64::max);
    assert!(
        (first.utility - best).abs() < 1e-12,
        "streamer {} vs brute force {best}",
        first.utility
    );
}

#[test]
fn greedy_emits_ten_of_a_million_plans_instantly() {
    let inst = GeneratorConfig::new(3, 100).with_seed(9).build();
    assert_eq!(inst.plan_count(), 1_000_000);
    let measure = CountingMeasure::new(LinearCost);
    let mut greedy = Greedy::new(&inst, &measure).unwrap();
    let plans = greedy.order_k(10);
    assert_eq!(plans.len(), 10);
    assert!(
        measure.concrete_evals() < 200,
        "greedy evaluated {} plans of a million",
        measure.concrete_evals()
    );
    // Non-increasing utilities (context-free measure).
    for w in plans.windows(2) {
        assert!(w[0].utility >= w[1].utility);
    }
    // The first plan matches the per-bucket argmin of the linear terms.
    let ctx = ExecutionContext::new();
    let expected: Vec<usize> = (0..inst.query_len())
        .map(|b| {
            (0..inst.buckets[b].len())
                .min_by(|&x, &y| {
                    let tx = inst.buckets[b][x].transmission_cost * inst.buckets[b][x].tuples;
                    let ty = inst.buckets[b][y].transmission_cost * inst.buckets[b][y].tuples;
                    tx.partial_cmp(&ty).unwrap()
                })
                .unwrap()
        })
        .collect();
    assert_eq!(
        LinearCost.utility(&inst, &plans[0].plan, &ctx),
        LinearCost.utility(&inst, &expected, &ctx)
    );
}
