//! Differential tests for the incremental ordering kernel.
//!
//! The optimized kernel (champion dominance, heap frontier, tree/interval
//! caches, parallel evaluation) must be *observationally identical* to the
//! pre-optimization textbook loop it replaced — same plans, same
//! utilities, same order, bit for bit. Three oracles pin that down:
//!
//! 1. `reference_find_best`, the preserved original kernel, via
//!    `IDrips::with_reference_kernel()` — exact `(plan, utility)` sequence
//!    equality, per emission.
//! 2. Exhaustive enumeration (`verify_ordering`) — the emitted sequence is
//!    a correct utility ordering in its own right.
//! 3. `CountingMeasure` — the caches actually *save* measure evaluations
//!    (otherwise the kernel is just complexity), and context-sensitive
//!    measures re-evaluate after every context change (otherwise it is
//!    just wrong).

use qpo_catalog::{GeneratorConfig, ProblemInstance};
use qpo_core::{
    verify_ordering, ByExpectedTuples, ByExtentMidpoint, IDrips, OrderedPlan, PlanOrderer,
    PlanOutcome, RandomKey,
};
use qpo_utility::{
    CountingMeasure, Coverage, FailureCost, FusionCost, MonetaryCost, UtilityMeasure,
};

/// The four measure families of §3, both caching variants where they
/// exist. Boxed so one loop covers them all.
fn all_measures() -> Vec<(&'static str, Box<dyn UtilityMeasure>)> {
    vec![
        ("coverage", Box::new(Coverage)),
        ("failure-nocache", Box::new(FailureCost::without_caching())),
        ("failure-cache", Box::new(FailureCost::with_caching())),
        (
            "monetary-nocache",
            Box::new(MonetaryCost::without_caching()),
        ),
        ("monetary-cache", Box::new(MonetaryCost::with_caching())),
        ("fusion", Box::new(FusionCost)),
    ]
}

fn assert_same_sequence(label: &str, fast: &[OrderedPlan], slow: &[OrderedPlan]) {
    assert_eq!(fast.len(), slow.len(), "{label}: emission counts diverge");
    for (step, (a, b)) in fast.iter().zip(slow).enumerate() {
        assert_eq!(a.plan, b.plan, "{label}: plans diverge at step {step}");
        assert!(
            a.utility.to_bits() == b.utility.to_bits(),
            "{label}: utilities diverge at step {step}: {} vs {}",
            a.utility,
            b.utility
        );
    }
}

#[test]
fn full_orderings_match_the_reference_kernel_for_every_measure() {
    for seed in [0u64, 7, 23] {
        let inst = GeneratorConfig::new(3, 4).with_seed(seed).build();
        for (name, m) in all_measures() {
            let label = format!("seed {seed}, measure {name}");
            let fast = IDrips::new(&inst, m.as_ref(), ByExpectedTuples).order_k(usize::MAX);
            let slow = IDrips::new(&inst, m.as_ref(), ByExpectedTuples)
                .with_reference_kernel()
                .order_k(usize::MAX);
            assert_eq!(fast.len(), inst.plan_count(), "{label}: incomplete");
            assert_same_sequence(&label, &fast, &slow);
        }
    }
}

#[test]
fn orderings_match_exhaustive_enumeration() {
    for seed in [1u64, 5] {
        let inst = GeneratorConfig::new(2, 5).with_seed(seed).build();
        for (name, m) in all_measures() {
            let ordering = IDrips::new(&inst, m.as_ref(), ByExpectedTuples).order_k(12);
            verify_ordering(&inst, m.as_ref(), &ordering, 1e-9)
                .unwrap_or_else(|e| panic!("seed {seed}, measure {name}: {e}"));
        }
    }
}

#[test]
fn equivalence_survives_alternative_heuristics() {
    // The heuristic changes the refinement order, not the emissions; both
    // kernels must track each other under every grouping.
    let inst = GeneratorConfig::new(3, 5).with_seed(42).build();
    let fast = IDrips::new(&inst, &Coverage, ByExtentMidpoint).order_k(20);
    let slow = IDrips::new(&inst, &Coverage, ByExtentMidpoint)
        .with_reference_kernel()
        .order_k(20);
    assert_same_sequence("by-extent-midpoint", &fast, &slow);
    let fast = IDrips::new(&inst, &Coverage, RandomKey { seed: 9 }).order_k(20);
    let slow = IDrips::new(&inst, &Coverage, RandomKey { seed: 9 })
        .with_reference_kernel()
        .order_k(20);
    assert_same_sequence("random-key", &fast, &slow);
}

#[test]
fn equivalence_survives_observed_failures() {
    // Failures retract from the context (bumping the epoch); the caching
    // measure makes later utilities depend on what actually survived, so
    // any stale cached interval would surface here.
    let inst = GeneratorConfig::new(3, 4).with_seed(17).build();
    let m = FailureCost::with_caching();
    let mut fast = IDrips::new(&inst, &m, ByExpectedTuples);
    let mut slow = IDrips::new(&inst, &m, ByExpectedTuples).with_reference_kernel();
    for step in 0..inst.plan_count() {
        let a = fast.next_plan().expect("fast kernel exhausted early");
        let b = slow.next_plan().expect("reference kernel exhausted early");
        assert_eq!(a.plan, b.plan, "step {step}");
        assert_eq!(a.utility.to_bits(), b.utility.to_bits(), "step {step}");
        if step % 2 == 0 {
            fast.observe(&PlanOutcome::failed(&a.plan));
            slow.observe(&PlanOutcome::failed(&b.plan));
        }
    }
    assert_eq!(fast.next_plan(), None);
    assert_eq!(slow.next_plan(), None);
}

#[test]
fn tie_heavy_instances_match_exactly() {
    // All-identical sources: every interval ties, so emission order is
    // decided purely by the deterministic tie-breaks — the part of the
    // kernel rewrite most likely to drift.
    use qpo_catalog::{Extent, SourceStats};
    let src = || SourceStats::new().with_extent(Extent::new(0, 5));
    let inst = ProblemInstance::new(
        0.0,
        vec![10, 10],
        vec![vec![src(), src(), src()], vec![src(), src(), src()]],
    )
    .unwrap();
    let fast = IDrips::new(&inst, &Coverage, ByExpectedTuples).order_k(usize::MAX);
    let slow = IDrips::new(&inst, &Coverage, ByExpectedTuples)
        .with_reference_kernel()
        .order_k(usize::MAX);
    assert_eq!(fast.len(), 9);
    assert_same_sequence("all-tied", &fast, &slow);
}

#[test]
fn caches_save_evaluations_without_changing_results() {
    // Context-free measure over a full ordering: the incremental kernel
    // must do the same job with at most half the `utility_interval` calls
    // (the ISSUE's ≥2× acceptance bar, asserted here at test scale).
    let inst = GeneratorConfig::new(3, 6).with_seed(3).build();
    let fast_m = CountingMeasure::new(FailureCost::without_caching());
    let slow_m = CountingMeasure::new(FailureCost::without_caching());
    let mut fast = IDrips::new(&inst, &fast_m, ByExpectedTuples);
    let a = fast.order_k(usize::MAX);
    let b = IDrips::new(&inst, &slow_m, ByExpectedTuples)
        .with_reference_kernel()
        .order_k(usize::MAX);
    assert_same_sequence("counting", &a, &b);
    let fast_evals = fast_m.interval_evals();
    let slow_evals = slow_m.interval_evals();
    assert!(
        fast_evals * 2 <= slow_evals,
        "expected ≥2× fewer interval evals: fast {fast_evals} vs reference {slow_evals}"
    );
    let stats = fast.kernel_stats();
    assert_eq!(stats.interval_evals, fast_evals, "counter agreement");
    assert_eq!(
        stats.interval_evals + stats.interval_cache_hits,
        slow_evals,
        "every reference eval is either recomputed or a cache hit"
    );
    assert_eq!(stats.evals_saved(), stats.interval_cache_hits);
    assert!(stats.tree_cache_hits > 0, "trees reused across emissions");
}

#[test]
fn instrumentation_does_not_change_emissions() {
    // Full qpo-obs instrumentation — shared registry *and* an enabled
    // trace journal — must be observationally invisible: bit-for-bit the
    // same emissions as an uninstrumented run, for every measure.
    let obs = qpo_obs::Obs::with_trace();
    for seed in [0u64, 23] {
        let inst = GeneratorConfig::new(3, 4).with_seed(seed).build();
        for (name, m) in all_measures() {
            let plain = IDrips::new(&inst, m.as_ref(), ByExpectedTuples).order_k(usize::MAX);
            let traced = IDrips::new(&inst, m.as_ref(), ByExpectedTuples)
                .with_obs(&obs)
                .order_k(usize::MAX);
            assert_same_sequence(
                &format!("seed {seed}, instrumented {name}"),
                &traced,
                &plain,
            );
        }
    }
    assert!(!obs.journal.is_empty(), "kernel events were journalled");
    assert!(
        obs.registry.counter_total("qpo_kernel_rounds_total") > 0,
        "kernel counters landed on the shared registry"
    );
}

#[test]
fn certificate_recording_does_not_change_emissions() {
    // Dominance provenance must be pure bookkeeping: with certificate
    // recording on, every measure still emits bit-for-bit the same
    // sequence, and each recorded certificate replays cleanly against the
    // emissions that preceded it.
    for seed in [0u64, 23] {
        let inst = GeneratorConfig::new(3, 4).with_seed(seed).build();
        for (name, m) in all_measures() {
            let label = format!("seed {seed}, certified {name}");
            let plain = IDrips::new(&inst, m.as_ref(), ByExpectedTuples).order_k(usize::MAX);
            let mut certified =
                IDrips::new(&inst, m.as_ref(), ByExpectedTuples).with_certificates(true);
            let emitted = certified.order_k(usize::MAX);
            assert_same_sequence(&label, &emitted, &plain);
            let certs = certified.take_certificates();
            assert!(!certs.is_empty(), "{label}: no eliminations recorded");
            let plans: Vec<Vec<usize>> = emitted.iter().map(|o| o.plan.clone()).collect();
            let checked = qpo_core::verify_certificates(&inst, m.as_ref(), &plans, &certs)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(
                checked,
                certs.len(),
                "{label}: not every certificate replayed"
            );
        }
    }
}

#[test]
fn fig6_coverage_run_verifies_every_certificate() {
    // The ISSUE's acceptance bar: a full fig6-scale coverage workload
    // (query length 3, 12 sources per bucket, overlap 0.3, top-100) with
    // zero certificate mismatches on replay.
    let inst = GeneratorConfig::new(3, 12)
        .with_overlap_rate(0.3)
        .with_seed(0)
        .build();
    let mut alg = IDrips::new(&inst, &Coverage, ByExpectedTuples).with_certificates(true);
    let emitted = alg.order_k(100);
    assert_eq!(emitted.len(), 100);
    let certs = alg.take_certificates();
    assert!(
        certs.len() > 100,
        "a 12³-plan space should eliminate far more than it emits (got {})",
        certs.len()
    );
    let plans: Vec<Vec<usize>> = emitted.iter().map(|o| o.plan.clone()).collect();
    let checked = qpo_core::verify_certificates(&inst, &Coverage, &plans, &certs)
        .expect("every elimination certificate must replay without mismatch");
    assert_eq!(checked, certs.len());
    // Each certificate is also independently checkable without the
    // measure: the recorded intervals themselves justify the kill.
    for (i, c) in certs.iter().enumerate() {
        assert!(
            c.comparison_holds(),
            "certificate {i} does not justify its kill"
        );
    }
}

#[test]
fn context_sensitive_measures_reevaluate_on_every_epoch() {
    // The caching FailureCost's intervals depend on the executed history;
    // after each emission records a plan, the memo table must be cold.
    let inst = GeneratorConfig::new(2, 3).with_seed(6).build();
    let m = CountingMeasure::new(FailureCost::with_caching());
    let mut alg = IDrips::new(&inst, &m, ByExpectedTuples);
    let first = alg.next_plan().expect("non-empty instance");
    let after_first = m.interval_evals();
    alg.next_plan().expect("more than one plan");
    assert!(
        m.interval_evals() > after_first,
        "second emission must re-evaluate under the new context"
    );
    // And retraction (failure) also invalidates: observing a failure then
    // re-running matches a fresh reference run over the same history.
    alg.observe(&PlanOutcome::failed(&first.plan));
    let rest = alg.order_k(usize::MAX);
    let mut oracle = IDrips::new(&inst, &m, ByExpectedTuples).with_reference_kernel();
    let o_first = oracle.next_plan().unwrap();
    oracle.next_plan().unwrap();
    oracle.observe(&PlanOutcome::failed(&o_first.plan));
    let o_rest = oracle.order_k(usize::MAX);
    assert_same_sequence("post-retract", &rest, &o_rest);
}
