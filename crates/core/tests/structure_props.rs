//! Property tests for the structural machinery of the ordering algorithms:
//! plan-space splitting (§4) and abstraction hierarchies (§5.1).

use proptest::prelude::*;
use qpo_catalog::{Extent, GeneratorConfig, ProblemInstance, SourceStats};
use qpo_core::{
    full_space, remove_plan, space_contains, space_size, AbstractionTree, ByExpectedTuples, Greedy,
    Pi, PlanOrderer, RandomKey,
};
use qpo_utility::LinearCost;
use std::collections::BTreeSet;

fn arb_space() -> impl Strategy<Value = Vec<Vec<usize>>> {
    proptest::collection::vec(1usize..5, 1..4).prop_map(|sizes| {
        sizes
            .into_iter()
            .map(|n| (0..n).collect::<Vec<usize>>())
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// §4's removal yields a partition: sub-spaces are disjoint, contain
    /// every plan but the removed one, and never the removed one.
    #[test]
    fn removal_partitions(space in arb_space(), pick in any::<u64>()) {
        // Pick a member plan deterministically.
        let plan: Vec<usize> = space
            .iter()
            .enumerate()
            .map(|(b, c)| c[(pick as usize + b) % c.len()])
            .collect();
        prop_assert!(space_contains(&space, &plan));
        let subs = remove_plan(&space, &plan);
        prop_assert!(subs.len() <= space.len(), "at most n sub-spaces");
        let total: usize = subs.iter().map(space_size).sum();
        prop_assert_eq!(total, space_size(&space) - 1);
        // Enumerate and check disjointness + exclusion.
        let mut seen: BTreeSet<Vec<usize>> = BTreeSet::new();
        for sub in &subs {
            let mut worklist = vec![Vec::new()];
            for cands in sub {
                let mut next = Vec::new();
                for w in &worklist {
                    for &c in cands {
                        let mut v = w.clone();
                        v.push(c);
                        next.push(v);
                    }
                }
                worklist = next;
            }
            for p in worklist {
                prop_assert!(p != plan, "removed plan reappeared");
                prop_assert!(seen.insert(p), "duplicate plan across sub-spaces");
            }
        }
    }

    /// Abstraction trees partition the candidate set at every level,
    /// whatever the heuristic.
    #[test]
    fn abstraction_tree_partitions(n in 1usize..12, seed in any::<u64>()) {
        let bucket: Vec<SourceStats> = (0..n)
            .map(|i| {
                SourceStats::new()
                    .with_extent(Extent::new(i as u64, 1))
                    .with_tuples((seed % (i as u64 + 7)) as f64)
            })
            .collect();
        let inst = ProblemInstance::new(0.0, vec![100], vec![bucket]).unwrap();
        let candidates: Vec<usize> = (0..n).collect();
        for tree in [
            AbstractionTree::build(&inst, 0, &candidates, &ByExpectedTuples),
            AbstractionTree::build(&inst, 0, &candidates, &RandomKey { seed }),
        ] {
            prop_assert_eq!(tree.indices(tree.root()), &candidates[..]);
            let mut stack = vec![tree.root()];
            while let Some(id) = stack.pop() {
                if tree.is_leaf(id) {
                    prop_assert_eq!(tree.width(id), 1);
                    continue;
                }
                let mut union: Vec<usize> = tree
                    .children(id)
                    .iter()
                    .flat_map(|&c| tree.indices(c).iter().copied())
                    .collect();
                union.sort_unstable();
                prop_assert_eq!(&union[..], tree.indices(id));
                stack.extend_from_slice(tree.children(id));
            }
        }
    }

    /// Greedy equals the brute-force baseline on every monotone instance.
    #[test]
    fn greedy_matches_pi(seed in 0u64..5000, m in 2usize..6, n in 1usize..4) {
        let inst = GeneratorConfig::new(n, m).with_seed(seed).build();
        let k = 12;
        let g: Vec<f64> = Greedy::new(&inst, &LinearCost)
            .expect("linear cost is monotone")
            .order_k(k)
            .into_iter()
            .map(|o| o.utility)
            .collect();
        let p: Vec<f64> = Pi::new(&inst, &LinearCost)
            .order_k(k)
            .into_iter()
            .map(|o| o.utility)
            .collect();
        prop_assert_eq!(g.len(), p.len());
        for (a, b) in g.iter().zip(&p) {
            prop_assert!((a - b).abs() < 1e-9, "greedy {g:?} vs pi {p:?}");
        }
    }

    /// Greedy's frontier never exceeds the k·n bound used in the paper's
    /// complexity argument.
    #[test]
    fn greedy_frontier_bound(seed in 0u64..5000, m in 2usize..7) {
        let inst = GeneratorConfig::new(3, m).with_seed(seed).build();
        let mut g = Greedy::new(&inst, &LinearCost).unwrap();
        for _ in 0..10 {
            if g.next_plan().is_none() {
                break;
            }
            prop_assert!(g.frontier_size() <= g.emitted() * inst.query_len() + 1);
        }
    }

    /// The full space of an instance contains exactly the instance's plans.
    #[test]
    fn full_space_is_exact(seed in 0u64..5000, m in 1usize..5, n in 1usize..4) {
        let inst = GeneratorConfig::new(n, m).with_seed(seed).build();
        let space = full_space(&inst);
        prop_assert_eq!(space_size(&space), inst.plan_count());
        for plan in inst.all_plans() {
            prop_assert!(space_contains(&space, &plan));
        }
    }
}
