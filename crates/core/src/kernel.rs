//! The incremental ordering kernel behind Drips and iDrips.
//!
//! The textbook Drips loop (kept verbatim as [`reference_find_best`], the
//! differential-testing oracle) redoes three kinds of work every round:
//!
//! 1. **O(n²) dominance sweeps** — every alive plan is compared against
//!    every other, although the only plan that can eliminate anything is
//!    the *champion* (the alive plan with the maximum utility lower bound,
//!    smallest id on ties). The kernel tracks the champion incrementally:
//!    freshly evaluated plans are checked against it, and a full sweep
//!    happens only in the rounds where the champion itself changes.
//! 2. **Linear refinement-target scans** — the most promising abstract
//!    plan (maximum upper bound, smallest id on ties) was found by
//!    rescanning the pool. The kernel keeps a lazy max-heap keyed on the
//!    upper bound, so target selection is `O(log n)` and the all-concrete
//!    termination test falls out of the heap running dry.
//! 3. **Cross-round recomputation** — iDrips re-runs Drips per emission
//!    over plan spaces that mostly did not change (§5.2 calls this out as
//!    deliberate redundancy). The kernel hash-conses abstraction trees
//!    keyed on `(bucket, candidate set)` and memoizes `utility_interval`
//!    results keyed on the candidate sets, with the interval cache pinned
//!    to the [`ExecutionContext::epoch`]: context-sensitive measures are
//!    invalidated on every `record`/`retract`, while
//!    [`context_free`](UtilityMeasure::context_free) measures cache across
//!    emissions.
//!
//! Wide evaluation rounds (many pending intervals, as in iDrips' first
//! round over a large space frontier) are fanned out over a bounded
//! scoped-thread pool with a deterministic merge, so the emitted order is
//! bit-for-bit identical to the serial kernel — and, by construction, to
//! [`reference_find_best`]: the champion rule eliminates *exactly* the
//! plans the pairwise sweep eliminates (see `eliminates`' invariants),
//! and caching only short-circuits recomputation of pure functions.

use crate::abstraction::{AbstractionHeuristic, AbstractionTree, NodeId};
use crate::drips::DripsOutcome;
use crate::planspace::PlanSpace;
use qpo_catalog::ProblemInstance;
use qpo_interval::Interval;
use qpo_obs::{
    encode_candidates, Counter, EliminationCertificate, Histogram, Obs, TraceJournal, Value,
};
use qpo_utility::{as_concrete, ExecutionContext, UtilityMeasure};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// Counters the kernel accumulates across [`OrderingKernel::find_best`]
/// calls. All counters are monotone; snapshot via [`OrderingKernel::stats`]
/// and diff to meter a single call.
///
/// Since the telemetry layer landed this is a *view*: the live cells are
/// `qpo_kernel_*_total` counters (on the kernel's own registry, or a
/// shared one after [`OrderingKernel::with_obs`]), and this struct is
/// materialized from them on demand.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Search rounds executed (evaluate → eliminate → refine).
    pub rounds: u64,
    /// Refinement steps (abstract plan replaced by its children).
    pub refinements: u64,
    /// Dominance checks actually performed (`eliminates` invocations).
    pub dominance_checks: u64,
    /// Plans eliminated by dominance.
    pub eliminations: u64,
    /// Rounds in which the champion changed and a full sweep ran.
    pub champion_sweeps: u64,
    /// `utility_interval` calls forwarded to the measure.
    pub interval_evals: u64,
    /// `utility_interval` calls answered from the memo table.
    pub interval_cache_hits: u64,
    /// Abstraction trees built from scratch.
    pub tree_builds: u64,
    /// Abstraction trees reused from the hash-cons table.
    pub tree_cache_hits: u64,
    /// Evaluation rounds that ran on the scoped-thread pool.
    pub parallel_batches: u64,
}

impl KernelStats {
    /// Interval evaluations avoided outright — the paper's "plans
    /// evaluated" metric is `interval_evals`; this is how much lower it is
    /// than it would have been without the memo table.
    pub fn evals_saved(&self) -> u64 {
        self.interval_cache_hits
    }
}

/// Live metric handles behind [`KernelStats`], plus the interval-width
/// histogram. Registered on a private registry by default so a bare
/// kernel still counts; [`OrderingKernel::with_obs`] re-homes them onto a
/// shared registry.
#[derive(Debug, Clone)]
struct KernelMetrics {
    rounds: Counter,
    refinements: Counter,
    dominance_checks: Counter,
    eliminations: Counter,
    champion_sweeps: Counter,
    interval_evals: Counter,
    interval_cache_hits: Counter,
    tree_builds: Counter,
    tree_cache_hits: Counter,
    parallel_batches: Counter,
    /// Width (`hi − lo`) of every freshly evaluated utility interval — how
    /// abstract the plans the kernel actually touches are.
    interval_width: Histogram,
}

impl KernelMetrics {
    fn registered(obs: &Obs) -> Self {
        let c = |name| obs.registry.counter(name, &[]);
        KernelMetrics {
            rounds: c("qpo_kernel_rounds_total"),
            refinements: c("qpo_kernel_refinements_total"),
            dominance_checks: c("qpo_kernel_dominance_checks_total"),
            eliminations: c("qpo_kernel_eliminations_total"),
            champion_sweeps: c("qpo_kernel_champion_sweeps_total"),
            interval_evals: c("qpo_kernel_interval_evals_total"),
            interval_cache_hits: c("qpo_kernel_interval_cache_hits_total"),
            tree_builds: c("qpo_kernel_tree_builds_total"),
            tree_cache_hits: c("qpo_kernel_tree_cache_hits_total"),
            parallel_batches: c("qpo_kernel_parallel_batches_total"),
            interval_width: obs.registry.histogram("qpo_kernel_interval_width", &[]),
        }
    }

    fn stats(&self) -> KernelStats {
        KernelStats {
            rounds: self.rounds.get(),
            refinements: self.refinements.get(),
            dominance_checks: self.dominance_checks.get(),
            eliminations: self.eliminations.get(),
            champion_sweeps: self.champion_sweeps.get(),
            interval_evals: self.interval_evals.get(),
            interval_cache_hits: self.interval_cache_hits.get(),
            tree_builds: self.tree_builds.get(),
            tree_cache_hits: self.tree_cache_hits.get(),
            parallel_batches: self.parallel_batches.get(),
        }
    }
}

/// A plan in the refinement pool: one abstraction-tree node per bucket.
#[derive(Debug, Clone)]
struct PoolPlan {
    /// Which plan space this plan belongs to (iDrips runs Drips over
    /// several spaces at once).
    space: usize,
    /// Node per bucket, into that space's trees.
    nodes: Vec<NodeId>,
    /// Candidate indices per bucket (materialized from the nodes).
    cands: Vec<Vec<usize>>,
    utility: Option<Interval>,
    alive: bool,
}

impl PoolPlan {
    fn is_concrete(&self) -> bool {
        self.cands.iter().all(|c| c.len() == 1)
    }
}

/// Decides whether `p` eliminates `q` (Drips' dominance with a
/// deterministic tie-break so two equal point-utilities eliminate exactly
/// one of the pair).
///
/// Champion-based elimination is exact, not approximate, because this
/// predicate is monotone in `(p.lo, -p.id)`: if *any* alive plan
/// eliminates `q`, then so does the champion — the alive plan maximizing
/// `lo` with the smallest id among ties. And the champion itself can never
/// be eliminated: an eliminator would need `lo > champion.hi ≥
/// champion.lo` (contradicting maximality) or an equal `lo` with a
/// smaller id (contradicting the tie-break).
fn eliminates(p: (Interval, usize), q: (Interval, usize)) -> bool {
    let (up, idp) = p;
    let (uq, idq) = q;
    up.lo() > uq.hi() || (up.lo() == uq.hi() && idp < idq)
}

/// `(lo, -id)` champion order: higher lower bound wins, smaller id on
/// ties. Uses IEEE comparison (so `-0.0 == 0.0` ties break on id, exactly
/// like the reference kernel); interval bounds are always finite.
fn champion_beats(a: (Interval, usize), b: (Interval, usize)) -> bool {
    let (ua, ida) = a;
    let (ub, idb) = b;
    ua.lo() > ub.lo() || (ua.lo() == ub.lo() && ida < idb)
}

/// Max-heap entry for refinement-target selection: maximum upper bound
/// first, smallest id on ties. The `hi` key is normalized (`-0.0 → +0.0`)
/// so `total_cmp` agrees with the IEEE comparisons of the reference
/// kernel; `total_cmp` keeps the order total (no panic) even if a
/// degenerate measure ever smuggled a NaN past [`Interval`]'s constructor.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    hi: f64,
    id: usize,
}

impl HeapEntry {
    fn new(hi: f64, id: usize) -> Self {
        // +0.0 normalizes -0.0 and leaves every other value unchanged.
        HeapEntry { hi: hi + 0.0, id }
    }
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.hi
            .total_cmp(&other.hi)
            .then_with(|| other.id.cmp(&self.id))
    }
}

/// The reusable state of the incremental kernel: hash-consed abstraction
/// trees, the interval memo table with its context epoch, the worker
/// budget, and the accumulated [`KernelStats`].
///
/// A kernel instance must be driven with a fixed `(instance, measure,
/// heuristic)` triple and a single [`ExecutionContext`] lineage (the one
/// an orderer owns and mutates) — the caches key on candidate sets and the
/// context epoch only. [`IDrips`](crate::IDrips) owns one kernel per
/// orderer, which satisfies both conditions by construction.
#[derive(Debug)]
pub struct OrderingKernel {
    trees: HashMap<(usize, Vec<usize>), Arc<AbstractionTree>>,
    intervals: HashMap<Vec<Vec<usize>>, Interval>,
    /// Epoch the interval memo table is valid for (context-dependent
    /// measures only; `None` until the first call).
    cache_epoch: Option<u64>,
    metrics: KernelMetrics,
    journal: TraceJournal,
    max_workers: usize,
    parallel_threshold: usize,
    record_certificates: bool,
    certificates: Vec<EliminationCertificate>,
}

impl Default for OrderingKernel {
    fn default() -> Self {
        OrderingKernel::new()
    }
}

impl OrderingKernel {
    /// A fresh kernel with empty caches and a hardware-sized worker cap.
    pub fn new() -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        OrderingKernel {
            trees: HashMap::new(),
            intervals: HashMap::new(),
            cache_epoch: None,
            metrics: KernelMetrics::registered(&Obs::new()),
            journal: TraceJournal::default(),
            max_workers: cores.min(8),
            parallel_threshold: 32,
            record_certificates: false,
            certificates: Vec::new(),
        }
    }

    /// Re-homes the kernel's counters onto a shared registry and adopts
    /// its trace journal. Call right after construction — previously
    /// accumulated counts stay behind on the private cells.
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.metrics = KernelMetrics::registered(obs);
        self.journal = obs.journal.clone();
        self
    }

    /// Caps the evaluation worker pool (1 disables parallel evaluation).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.max_workers = workers.max(1);
        self
    }

    /// Pending-evaluation count at which a round fans out to the pool.
    pub fn with_parallel_threshold(mut self, threshold: usize) -> Self {
        self.parallel_threshold = threshold.max(2);
        self
    }

    /// Record an [`EliminationCertificate`] for every dominance
    /// elimination (off by default — the recording itself never changes
    /// what is emitted, only whether provenance is kept). Retrieve with
    /// [`certificates`](Self::certificates) /
    /// [`take_certificates`](Self::take_certificates), check with
    /// [`verify_certificates`].
    pub fn with_certificates(mut self, record: bool) -> Self {
        self.record_certificates = record;
        self
    }

    /// Certificates accumulated so far (empty unless
    /// [`with_certificates`](Self::with_certificates) was enabled), in
    /// elimination order.
    pub fn certificates(&self) -> &[EliminationCertificate] {
        &self.certificates
    }

    /// Drains the accumulated certificates.
    pub fn take_certificates(&mut self) -> Vec<EliminationCertificate> {
        std::mem::take(&mut self.certificates)
    }

    /// Snapshot of the accumulated counters.
    pub fn stats(&self) -> KernelStats {
        self.metrics.stats()
    }

    /// Drops both caches (keeps the stats). Callers never *need* this for
    /// correctness — the epoch mechanism handles invalidation — but it
    /// bounds memory for very long runs.
    pub fn clear_caches(&mut self) {
        self.trees.clear();
        self.intervals.clear();
        self.cache_epoch = None;
    }

    /// Entries currently held by the (tree, interval) caches.
    pub fn cache_sizes(&self) -> (usize, usize) {
        (self.trees.len(), self.intervals.len())
    }

    fn tree<H: AbstractionHeuristic + ?Sized>(
        &mut self,
        inst: &ProblemInstance,
        bucket: usize,
        cands: &[usize],
        heuristic: &H,
    ) -> Arc<AbstractionTree> {
        if let Some(t) = self.trees.get(&(bucket, cands.to_vec())) {
            self.metrics.tree_cache_hits.inc();
            if self.journal.is_enabled() {
                self.journal.record(
                    "kernel_cache_hit",
                    vec![
                        ("cache", Value::Str("tree".into())),
                        ("bucket", Value::U64(bucket as u64)),
                    ],
                );
            }
            return Arc::clone(t);
        }
        self.metrics.tree_builds.inc();
        let t = Arc::new(AbstractionTree::build(inst, bucket, cands, heuristic));
        self.trees.insert((bucket, cands.to_vec()), Arc::clone(&t));
        t
    }

    /// Runs Drips over the given plan spaces under `ctx`, returning the
    /// best concrete plan across all of them (or `None` when there are no
    /// spaces). Emits exactly the `(space, plan, utility)` the reference
    /// kernel emits; only the work done to find it differs.
    pub fn find_best<M, H>(
        &mut self,
        inst: &ProblemInstance,
        measure: &M,
        ctx: &ExecutionContext,
        spaces: &[PlanSpace],
        heuristic: &H,
    ) -> Option<DripsOutcome>
    where
        M: UtilityMeasure + ?Sized,
        H: AbstractionHeuristic + ?Sized,
    {
        if spaces.is_empty() {
            return None;
        }
        // Interval memo validity: context-free measures cache forever;
        // context-sensitive ones only within one context epoch.
        if !measure.context_free() && self.cache_epoch != Some(ctx.epoch()) {
            self.intervals.clear();
            self.cache_epoch = Some(ctx.epoch());
        }
        // The context is fixed for the whole call; every certificate
        // recorded below replays against this epoch.
        let epoch = ctx.epoch();

        // One (hash-consed) tree per (space, bucket).
        let trees: Vec<Vec<Arc<AbstractionTree>>> = spaces
            .iter()
            .map(|space| {
                space
                    .iter()
                    .enumerate()
                    .map(|(b, cands)| self.tree(inst, b, cands, heuristic))
                    .collect()
            })
            .collect();

        let mut plans: Vec<PoolPlan> = Vec::with_capacity(spaces.len());
        for (s, space_trees) in trees.iter().enumerate() {
            let nodes: Vec<NodeId> = space_trees.iter().map(|t| t.root()).collect();
            let cands: Vec<Vec<usize>> = space_trees
                .iter()
                .zip(&nodes)
                .map(|(t, &n)| t.indices(n).to_vec())
                .collect();
            plans.push(PoolPlan {
                space: s,
                nodes,
                cands,
                utility: None,
                alive: true,
            });
        }

        let mut pending: Vec<usize> = (0..plans.len()).collect();
        let mut frontier: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(plans.len());
        let mut champion: Option<usize> = None;
        let mut refinements = 0usize;

        loop {
            self.metrics.rounds.inc();
            // (a) evaluate pending utilities (memoized, possibly parallel).
            self.evaluate(inst, measure, ctx, &mut plans, &pending);
            for &id in &pending {
                if !plans[id].is_concrete() {
                    frontier.push(HeapEntry::new(
                        plans[id].utility.expect("evaluated above").hi(),
                        id,
                    ));
                }
            }

            // (b) update the champion, then eliminate against it.
            let prev = champion;
            if !champion.is_some_and(|c| plans[c].alive) {
                // The previous champion was refined away (or this is the
                // first round): recompute from scratch.
                champion = (0..plans.len())
                    .filter(|&id| plans[id].alive)
                    .max_by(|&a, &b| {
                        let ua = plans[a].utility.expect("evaluated above");
                        let ub = plans[b].utility.expect("evaluated above");
                        if champion_beats((ua, a), (ub, b)) {
                            Ordering::Greater
                        } else {
                            Ordering::Less
                        }
                    });
            } else {
                // Alive plans never change, so the champion can only be
                // dethroned by one of the freshly evaluated plans.
                for &id in &pending {
                    let c = champion.expect("set above");
                    let uc = plans[c].utility.expect("champion is evaluated");
                    let uq = plans[id].utility.expect("evaluated above");
                    if champion_beats((uq, id), (uc, c)) {
                        champion = Some(id);
                    }
                }
            }
            let champ = champion.expect("non-empty pool has a champion");
            let champ_u = plans[champ].utility.expect("champion is evaluated");
            if prev != champion {
                // New champion: its reach is unknown, sweep everything.
                self.metrics.champion_sweeps.inc();
                if self.journal.is_enabled() {
                    self.journal.record(
                        "kernel_champion_change",
                        vec![
                            ("plan_id", Value::U64(champ as u64)),
                            ("lower_bound", Value::F64(champ_u.lo())),
                        ],
                    );
                }
                // The champion is fixed across the sweep: encode its
                // candidate sets once and let every elimination event
                // copy the bytes instead of re-formatting them.
                let champ_enc = self
                    .journal
                    .is_enabled()
                    .then(|| encode_candidates(&plans[champ].cands));
                for id in 0..plans.len() {
                    if id == champ || !plans[id].alive {
                        continue;
                    }
                    self.metrics.dominance_checks.inc();
                    let uq = plans[id].utility.expect("alive plans are evaluated");
                    if eliminates((champ_u, champ), (uq, id)) {
                        self.kill(&mut plans, id, champ, epoch, champ_enc.as_deref());
                    }
                }
            } else {
                // Same champion: every surviving plan already withstood
                // it; only the fresh plans need checking.
                let champ_enc = self
                    .journal
                    .is_enabled()
                    .then(|| encode_candidates(&plans[champ].cands));
                for &id in &pending {
                    if id == champ || !plans[id].alive {
                        continue;
                    }
                    self.metrics.dominance_checks.inc();
                    let uq = plans[id].utility.expect("evaluated above");
                    if eliminates((champ_u, champ), (uq, id)) {
                        self.kill(&mut plans, id, champ, epoch, champ_enc.as_deref());
                    }
                }
            }
            pending.clear();

            // (c) refine the most promising abstract survivor; when the
            // frontier runs dry every survivor is concrete and the
            // champion — max lower bound, smallest id — is the winner.
            let target = loop {
                match frontier.pop() {
                    Some(e) if plans[e.id].alive => break Some(e.id),
                    Some(_) => continue, // stale: eliminated or refined
                    None => break None,
                }
            };
            let Some(target_id) = target else {
                let winner = &plans[champ];
                let plan = as_concrete(&winner.cands).expect("survivors are concrete");
                return Some(DripsOutcome {
                    space: winner.space,
                    plan,
                    utility: winner.utility.expect("champion is evaluated").lo(),
                    refinements,
                });
            };
            refinements += 1;
            self.metrics.refinements.inc();
            if self.journal.is_enabled() {
                self.journal.record(
                    "kernel_refinement",
                    vec![
                        ("plan_id", Value::U64(target_id as u64)),
                        ("space", Value::U64(plans[target_id].space as u64)),
                    ],
                );
            }
            // Split the widest abstract bucket: replace its node by the
            // children, one child plan each.
            let parent = std::mem::replace(
                &mut plans[target_id],
                PoolPlan {
                    space: 0,
                    nodes: Vec::new(),
                    cands: Vec::new(),
                    utility: None,
                    alive: false,
                },
            );
            if champion == Some(target_id) {
                champion = None; // force a recompute next round
            }
            let bucket = (0..parent.nodes.len())
                .filter(|&b| parent.cands[b].len() > 1)
                .max_by_key(|&b| parent.cands[b].len())
                .expect("abstract plan has a non-singleton bucket");
            let tree = &trees[parent.space][bucket];
            for &child in tree.children(parent.nodes[bucket]) {
                let mut nodes = parent.nodes.clone();
                nodes[bucket] = child;
                let mut cands = parent.cands.clone();
                cands[bucket] = tree.indices(child).to_vec();
                pending.push(plans.len());
                plans.push(PoolPlan {
                    space: parent.space,
                    nodes,
                    cands,
                    utility: None,
                    alive: true,
                });
            }
        }
    }

    /// Eliminates plan `id`, dominated by `champ` at context `epoch`.
    /// Before the victim's candidate storage is freed, its provenance is
    /// captured: a full [`EliminationCertificate`] when certificate
    /// recording is on, and a journal event carrying the same fields when
    /// tracing is on — either is enough to replay the comparison.
    fn kill(
        &mut self,
        plans: &mut [PoolPlan],
        id: usize,
        champ: usize,
        epoch: u64,
        champ_enc: Option<&str>,
    ) {
        self.metrics.eliminations.inc();
        let champ_u = plans[champ].utility.expect("champion is evaluated");
        let victim_u = plans[id].utility.expect("victims are evaluated");
        if self.journal.is_enabled() {
            let champion_enc = match champ_enc {
                Some(s) => s.to_owned(),
                None => encode_candidates(&plans[champ].cands),
            };
            self.journal.record(
                "kernel_elimination",
                vec![
                    ("plan_id", Value::U64(id as u64)),
                    ("champion_id", Value::U64(champ as u64)),
                    (
                        "victim",
                        Value::Str(encode_candidates(&plans[id].cands).into()),
                    ),
                    ("champion", Value::Str(champion_enc.into())),
                    ("victim_lo", Value::F64(victim_u.lo())),
                    ("victim_hi", Value::F64(victim_u.hi())),
                    ("champion_lo", Value::F64(champ_u.lo())),
                    ("champion_hi", Value::F64(champ_u.hi())),
                    ("epoch", Value::U64(epoch)),
                ],
            );
        }
        if self.record_certificates {
            self.certificates.push(EliminationCertificate {
                victim_id: id as u64,
                champion_id: champ as u64,
                victim: plans[id].cands.clone(),
                champion: plans[champ].cands.clone(),
                victim_interval: (victim_u.lo(), victim_u.hi()),
                champion_interval: (champ_u.lo(), champ_u.hi()),
                epoch,
            });
        }
        let p = &mut plans[id];
        p.alive = false;
        // Dead plans are only ever read for their (utility, id) pair;
        // free the candidate storage eagerly.
        p.nodes = Vec::new();
        p.cands = Vec::new();
    }

    /// Resolves the pending plans' utility intervals: memo-table lookups
    /// first, then the misses — serially, or over a bounded scoped-thread
    /// pool when the batch is wide. Results merge in ascending id order,
    /// so the outcome is deterministic regardless of scheduling.
    fn evaluate<M: UtilityMeasure + ?Sized>(
        &mut self,
        inst: &ProblemInstance,
        measure: &M,
        ctx: &ExecutionContext,
        plans: &mut [PoolPlan],
        pending: &[usize],
    ) {
        let mut misses: Vec<usize> = Vec::with_capacity(pending.len());
        for &id in pending {
            if let Some(&iv) = self.intervals.get(&plans[id].cands) {
                self.metrics.interval_cache_hits.inc();
                if self.journal.is_enabled() {
                    self.journal.record(
                        "kernel_cache_hit",
                        vec![
                            ("cache", Value::Str("interval".into())),
                            ("plan_id", Value::U64(id as u64)),
                        ],
                    );
                }
                plans[id].utility = Some(iv);
            } else {
                misses.push(id);
            }
        }
        self.metrics.interval_evals.add(misses.len() as u64);

        // Fan out only for wide batches on a multi-worker budget; aim for
        // ≥8 evaluations per worker so thread setup amortizes, but never
        // fall back to a single worker once the batch crossed the
        // threshold (tests pin small thresholds to exercise this path).
        let results: Vec<(usize, Interval)> =
            if misses.len() >= self.parallel_threshold && self.max_workers > 1 {
                let workers = self.max_workers.min(misses.len().div_ceil(8)).max(2);
                self.metrics.parallel_batches.inc();
                let chunk = misses.len().div_ceil(workers);
                let shared: &[PoolPlan] = plans;
                crossbeam::thread::scope(|s| {
                    let handles: Vec<_> = misses
                        .chunks(chunk)
                        .map(|ids| {
                            s.spawn(move |_| {
                                ids.iter()
                                    .map(|&id| {
                                        (id, measure.utility_interval(inst, &shared[id].cands, ctx))
                                    })
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("evaluation workers never panic"))
                        .collect()
                })
                .expect("evaluation scope never panics")
            } else {
                misses
                    .iter()
                    .map(|&id| (id, measure.utility_interval(inst, &plans[id].cands, ctx)))
                    .collect()
            };

        for (id, iv) in results {
            self.metrics.interval_width.record(iv.hi() - iv.lo());
            plans[id].utility = Some(iv);
            self.intervals.insert(plans[id].cands.clone(), iv);
        }
    }
}

/// The pre-optimization kernel, kept as the differential-testing oracle:
/// a full O(n²) pairwise dominance sweep per round, fresh abstraction
/// trees per call, serial evaluation, no memoization. Its only change
/// from the original is `total_cmp` in the max-scans, so a degenerate
/// measure cannot panic the orderer mid-stream (the incremental kernel
/// uses the same total order in its heap).
pub fn reference_find_best<M, H>(
    inst: &ProblemInstance,
    measure: &M,
    ctx: &ExecutionContext,
    spaces: &[PlanSpace],
    heuristic: &H,
) -> Option<DripsOutcome>
where
    M: UtilityMeasure + ?Sized,
    H: AbstractionHeuristic + ?Sized,
{
    if spaces.is_empty() {
        return None;
    }
    struct RefPlan {
        space: usize,
        nodes: Vec<NodeId>,
        cands: Vec<Vec<usize>>,
        utility: Option<Interval>,
        alive: bool,
        id: usize,
    }
    impl RefPlan {
        fn is_concrete(&self) -> bool {
            self.cands.iter().all(|c| c.len() == 1)
        }
    }
    // One tree per (space, bucket), rebuilt fresh per call ("reabstracts
    // the sources in the new plan spaces", §5.2).
    let trees: Vec<Vec<AbstractionTree>> = spaces
        .iter()
        .map(|space| {
            space
                .iter()
                .enumerate()
                .map(|(b, cands)| AbstractionTree::build(inst, b, cands, heuristic))
                .collect()
        })
        .collect();

    let mut pool: Vec<RefPlan> = Vec::new();
    for (s, space_trees) in trees.iter().enumerate() {
        let nodes: Vec<NodeId> = space_trees.iter().map(AbstractionTree::root).collect();
        let cands: Vec<Vec<usize>> = space_trees
            .iter()
            .zip(&nodes)
            .map(|(t, &n)| t.indices(n).to_vec())
            .collect();
        pool.push(RefPlan {
            space: s,
            nodes,
            cands,
            utility: None,
            alive: true,
            id: pool.len(),
        });
    }

    let mut next_id = pool.len();
    let mut refinements = 0usize;
    loop {
        pool.retain(|p| p.alive);
        for p in pool.iter_mut().filter(|p| p.alive && p.utility.is_none()) {
            p.utility = Some(measure.utility_interval(inst, &p.cands, ctx));
        }
        let snapshot: Vec<(usize, Interval)> = pool
            .iter()
            .filter(|p| p.alive)
            .map(|p| (p.id, p.utility.expect("evaluated above")))
            .collect();
        for p in pool.iter_mut().filter(|p| p.alive) {
            let uq = p.utility.expect("evaluated above");
            if snapshot
                .iter()
                .any(|&(id, up)| id != p.id && eliminates((up, id), (uq, p.id)))
            {
                p.alive = false;
            }
        }
        let target = pool
            .iter()
            .filter(|p| p.alive && !p.is_concrete())
            .max_by(|a, b| {
                let ua = a.utility.expect("evaluated above").hi();
                let ub = b.utility.expect("evaluated above").hi();
                ua.total_cmp(&ub).then(b.id.cmp(&a.id))
            })
            .map(|p| p.id);
        let Some(target_id) = target else {
            let winner = pool
                .iter()
                .filter(|p| p.alive)
                .max_by(|a, b| {
                    let ua = a.utility.expect("evaluated above").lo();
                    let ub = b.utility.expect("evaluated above").lo();
                    ua.total_cmp(&ub).then(b.id.cmp(&a.id))
                })
                .expect("pool never empties: elimination spares a maximum");
            let plan = as_concrete(&winner.cands).expect("winner is concrete");
            return Some(DripsOutcome {
                space: winner.space,
                plan,
                utility: winner.utility.expect("evaluated above").lo(),
                refinements,
            });
        };
        refinements += 1;
        let pos = pool
            .iter()
            .position(|p| p.id == target_id)
            .expect("target is in the pool");
        let parent = pool.swap_remove(pos);
        let bucket = (0..parent.nodes.len())
            .filter(|&b| parent.cands[b].len() > 1)
            .max_by_key(|&b| parent.cands[b].len())
            .expect("abstract plan has a non-singleton bucket");
        let tree = &trees[parent.space][bucket];
        for &child in tree.children(parent.nodes[bucket]) {
            let mut nodes = parent.nodes.clone();
            nodes[bucket] = child;
            let mut cands = parent.cands.clone();
            cands[bucket] = tree.indices(child).to_vec();
            pool.push(RefPlan {
                space: parent.space,
                nodes,
                cands,
                utility: None,
                alive: true,
                id: next_id,
            });
            next_id += 1;
        }
    }
}

/// A certificate that failed verification: its position in the checked
/// slice and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertificateError {
    /// Index into the certificate slice handed to [`verify_certificates`].
    pub index: usize,
    /// Human-readable mismatch description.
    pub reason: String,
}

impl std::fmt::Display for CertificateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "certificate {}: {}", self.index, self.reason)
    }
}

impl std::error::Error for CertificateError {}

/// Independently re-checks every elimination certificate against the
/// problem instance: (1) the recorded dominance comparison holds under
/// the kernel's own `eliminates` predicate *and* under the certificate's
/// dependency-free replay ([`EliminationCertificate::comparison_holds`]),
/// and (2) both utility intervals re-derive bit-for-bit from `measure`.
///
/// `emissions` is the sequence of plans recorded as executed, in order —
/// an iDrips run's emitted plans. Certificates carry the context epoch
/// they were decided at; the verifier replays the execution context by
/// recording emissions until it reaches each certificate's epoch, so
/// context-sensitive measures verify exactly. (Runs that *retracted*
/// plans move the epoch without a corresponding emission and cannot be
/// replayed this way; such certificates report an unreachable epoch.)
///
/// Returns the number of certificates verified (all of them) or the
/// first mismatch.
pub fn verify_certificates<M: UtilityMeasure + ?Sized>(
    inst: &ProblemInstance,
    measure: &M,
    emissions: &[Vec<usize>],
    certs: &[EliminationCertificate],
) -> Result<usize, CertificateError> {
    let mut ctx = ExecutionContext::new();
    let mut next = 0usize;
    for (index, cert) in certs.iter().enumerate() {
        let fail = |reason: String| CertificateError { index, reason };
        // A verifier must reject malformed input, not panic on it.
        for (what, (lo, hi)) in [
            ("victim", cert.victim_interval),
            ("champion", cert.champion_interval),
        ] {
            if !(lo.is_finite() && hi.is_finite() && lo <= hi) {
                return Err(fail(format!("{what} interval [{lo}, {hi}] is malformed")));
            }
        }
        // (1) the comparison itself, via both implementations.
        let champ_u = Interval::new(cert.champion_interval.0, cert.champion_interval.1);
        let victim_u = Interval::new(cert.victim_interval.0, cert.victim_interval.1);
        let by_kernel = eliminates(
            (champ_u, cert.champion_id as usize),
            (victim_u, cert.victim_id as usize),
        );
        if !by_kernel {
            return Err(fail(format!(
                "recorded intervals do not dominate: champion [{}, {}] (id {}) vs victim [{}, {}] (id {})",
                champ_u.lo(), champ_u.hi(), cert.champion_id,
                victim_u.lo(), victim_u.hi(), cert.victim_id,
            )));
        }
        if !cert.comparison_holds() {
            return Err(fail(
                "certificate replay disagrees with the kernel's eliminates predicate".into(),
            ));
        }
        // (2) the intervals re-derive from the measure at the recorded
        // epoch.
        while ctx.epoch() < cert.epoch {
            let Some(plan) = emissions.get(next) else {
                return Err(fail(format!(
                    "epoch {} unreachable from {} emissions",
                    cert.epoch,
                    emissions.len()
                )));
            };
            ctx.record(plan);
            next += 1;
        }
        if ctx.epoch() != cert.epoch {
            return Err(fail(format!(
                "epoch {} behind the replayed context ({})",
                cert.epoch,
                ctx.epoch()
            )));
        }
        for (what, cands, recorded) in [
            ("victim", &cert.victim, victim_u),
            ("champion", &cert.champion, champ_u),
        ] {
            let redone = measure.utility_interval(inst, cands, &ctx);
            if redone.lo().to_bits() != recorded.lo().to_bits()
                || redone.hi().to_bits() != recorded.hi().to_bits()
            {
                return Err(fail(format!(
                    "{what} interval mismatch at epoch {}: recorded [{}, {}], re-derived [{}, {}]",
                    cert.epoch,
                    recorded.lo(),
                    recorded.hi(),
                    redone.lo(),
                    redone.hi(),
                )));
            }
        }
    }
    Ok(certs.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::ByExpectedTuples;
    use crate::planspace::full_space;
    use qpo_catalog::GeneratorConfig;
    use qpo_utility::{CountingMeasure, Coverage, FailureCost};

    #[test]
    fn heap_entry_order_matches_ieee_with_id_tiebreak() {
        let a = HeapEntry::new(1.0, 3);
        let b = HeapEntry::new(1.0, 5);
        assert!(a > b, "equal hi: smaller id wins");
        assert!(HeapEntry::new(2.0, 9) > HeapEntry::new(1.0, 0));
        // -0.0 normalizes to +0.0, so ties still break on id.
        assert!(HeapEntry::new(-0.0, 1) > HeapEntry::new(0.0, 2));
        assert!(HeapEntry::new(0.0, 1) > HeapEntry::new(-0.0, 2));
    }

    #[test]
    fn kernel_and_reference_agree_on_a_single_space() {
        for seed in 0..8u64 {
            let inst = GeneratorConfig::new(3, 6).with_seed(seed).build();
            let ctx = ExecutionContext::new();
            let spaces = [full_space(&inst)];
            let mut kernel = OrderingKernel::new();
            let fast = kernel.find_best(&inst, &Coverage, &ctx, &spaces, &ByExpectedTuples);
            let slow = reference_find_best(&inst, &Coverage, &ctx, &spaces, &ByExpectedTuples);
            assert_eq!(fast, slow, "seed {seed}");
        }
    }

    #[test]
    fn cache_reuse_across_identical_calls_is_total() {
        let inst = GeneratorConfig::new(3, 6).with_seed(5).build();
        let ctx = ExecutionContext::new();
        let spaces = [full_space(&inst)];
        let m = CountingMeasure::new(FailureCost::without_caching());
        let mut kernel = OrderingKernel::new();
        let first = kernel.find_best(&inst, &m, &ctx, &spaces, &ByExpectedTuples);
        let evals_after_first = m.interval_evals();
        assert!(evals_after_first > 0);
        let second = kernel.find_best(&inst, &m, &ctx, &spaces, &ByExpectedTuples);
        assert_eq!(first, second);
        assert_eq!(
            m.interval_evals(),
            evals_after_first,
            "context-free rerun is answered entirely from the memo table"
        );
        let stats = kernel.stats();
        assert!(stats.interval_cache_hits >= evals_after_first);
        assert!(stats.tree_cache_hits > 0);
        let (t, i) = kernel.cache_sizes();
        assert!(t > 0 && i > 0);
    }

    #[test]
    fn context_epoch_invalidates_the_interval_cache() {
        let inst = GeneratorConfig::new(2, 4).with_seed(3).build();
        let spaces = [full_space(&inst)];
        let m = CountingMeasure::new(FailureCost::with_caching());
        let mut ctx = ExecutionContext::new();
        let mut kernel = OrderingKernel::new();
        let first = kernel
            .find_best(&inst, &m, &ctx, &spaces, &ByExpectedTuples)
            .unwrap();
        let before = m.interval_evals();
        ctx.record(&first.plan);
        kernel.find_best(&inst, &m, &ctx, &spaces, &ByExpectedTuples);
        assert!(
            m.interval_evals() > before,
            "context-sensitive measure re-evaluates after record"
        );
        // And the re-evaluated result matches the reference kernel.
        let slow = reference_find_best(&inst, &m, &ctx, &spaces, &ByExpectedTuples);
        let fast = kernel.find_best(&inst, &m, &ctx, &spaces, &ByExpectedTuples);
        assert_eq!(fast, slow);
    }

    #[test]
    fn parallel_evaluation_is_deterministic() {
        let inst = GeneratorConfig::new(3, 8).with_seed(11).build();
        let ctx = ExecutionContext::new();
        let spaces = [full_space(&inst)];
        // Force the parallel path for every round with ≥ 2 pending evals.
        let mut wide = OrderingKernel::new()
            .with_parallel_threshold(2)
            .with_workers(4);
        let mut serial = OrderingKernel::new().with_workers(1);
        let a = wide.find_best(&inst, &Coverage, &ctx, &spaces, &ByExpectedTuples);
        let b = serial.find_best(&inst, &Coverage, &ctx, &spaces, &ByExpectedTuples);
        assert_eq!(a, b);
        assert!(
            wide.stats().parallel_batches > 0,
            "the threaded path must actually run under a forced threshold"
        );
        assert_eq!(serial.stats().parallel_batches, 0);
    }

    #[test]
    fn certificates_record_every_elimination_and_verify() {
        let inst = GeneratorConfig::new(3, 6).with_seed(2).build();
        let ctx = ExecutionContext::new();
        let spaces = [full_space(&inst)];
        let mut plain = OrderingKernel::new();
        let mut certified = OrderingKernel::new().with_certificates(true);
        let expected = plain.find_best(&inst, &Coverage, &ctx, &spaces, &ByExpectedTuples);
        let got = certified.find_best(&inst, &Coverage, &ctx, &spaces, &ByExpectedTuples);
        assert_eq!(got, expected, "recording provenance never changes emission");
        let certs = certified.take_certificates();
        assert_eq!(
            certs.len() as u64,
            certified.stats().eliminations,
            "one certificate per elimination"
        );
        assert!(!certs.is_empty(), "dominance prunes something at 3×6");
        for cert in &certs {
            assert!(cert.comparison_holds());
            assert!(!cert.victim.is_empty() && !cert.champion.is_empty());
        }
        let verified = verify_certificates(&inst, &Coverage, &[], &certs).expect("all replay");
        assert_eq!(verified, certs.len());
        assert!(certified.certificates().is_empty(), "take drains");
    }

    #[test]
    fn verify_rejects_tampered_certificates() {
        let inst = GeneratorConfig::new(3, 6).with_seed(2).build();
        let ctx = ExecutionContext::new();
        let spaces = [full_space(&inst)];
        let mut kernel = OrderingKernel::new().with_certificates(true);
        kernel.find_best(&inst, &Coverage, &ctx, &spaces, &ByExpectedTuples);
        let certs = kernel.take_certificates();

        // Inflate the victim's upper bound past the champion's lower
        // bound: the dominance comparison no longer holds.
        let mut broken = certs.clone();
        broken[0].victim_interval.1 = broken[0].champion_interval.0 + 1.0;
        broken[0].victim_interval.0 = broken[0].victim_interval.1.min(broken[0].victim_interval.0);
        let err = verify_certificates(&inst, &Coverage, &[], &broken).unwrap_err();
        assert_eq!(err.index, 0);
        assert!(err.reason.contains("do not dominate"), "{err}");

        // Nudge a recorded bound slightly downward: the comparison still
        // holds, but the bit-for-bit re-derivation catches it.
        let mut nudged = certs;
        nudged[0].victim_interval.0 -= 1e-9;
        let err = verify_certificates(&inst, &Coverage, &[], &nudged).unwrap_err();
        assert!(err.reason.contains("interval mismatch"), "{err}");

        // And malformed intervals are rejected, not panicked on.
        let mut malformed = nudged;
        malformed[0].champion_interval = (1.0, 0.0);
        let err = verify_certificates(&inst, &Coverage, &[], &malformed).unwrap_err();
        assert!(err.reason.contains("malformed"), "{err}");
    }

    #[test]
    fn verify_replays_context_sensitive_epochs_from_emissions() {
        let inst = GeneratorConfig::new(2, 4).with_seed(3).build();
        let spaces = [full_space(&inst)];
        let measure = FailureCost::with_caching();
        let mut ctx = ExecutionContext::new();
        let mut kernel = OrderingKernel::new().with_certificates(true);
        let mut emissions: Vec<Vec<usize>> = Vec::new();
        for _ in 0..3 {
            let out = kernel
                .find_best(&inst, &measure, &ctx, &spaces, &ByExpectedTuples)
                .expect("space is non-empty");
            ctx.record(&out.plan);
            emissions.push(out.plan);
        }
        let certs = kernel.take_certificates();
        assert!(
            certs.iter().any(|c| c.epoch > 0),
            "later rounds eliminate at non-zero epochs"
        );
        verify_certificates(&inst, &measure, &emissions, &certs).expect("epoch replay verifies");
        // Without the emissions the later epochs are unreachable.
        let err = verify_certificates(&inst, &measure, &[], &certs).unwrap_err();
        assert!(err.reason.contains("unreachable"), "{err}");
    }

    #[test]
    fn clear_caches_resets_tables_but_keeps_stats() {
        let inst = GeneratorConfig::new(2, 4).with_seed(1).build();
        let ctx = ExecutionContext::new();
        let mut kernel = OrderingKernel::new();
        kernel
            .find_best(
                &inst,
                &Coverage,
                &ctx,
                &[full_space(&inst)],
                &ByExpectedTuples,
            )
            .unwrap();
        assert!(kernel.cache_sizes().0 > 0);
        let stats = kernel.stats();
        kernel.clear_caches();
        assert_eq!(kernel.cache_sizes(), (0, 0));
        assert_eq!(kernel.stats(), stats);
        assert!(stats.rounds > 0 && stats.interval_evals > 0);
        assert_eq!(stats.evals_saved(), stats.interval_cache_hits);
    }
}
