//! Plan-ordering algorithms for data integration.
//!
//! Rust implementation of the algorithms of **Doan & Halevy, "Efficiently
//! Ordering Query Plans for Data Integration" (ICDE 2002)**: given buckets
//! of candidate sources per query subgoal and a utility measure
//! `u(p | executed, Q)`, emit concrete plans in exact decreasing-utility
//! order, *incrementally* — the first plans arrive without enumerating the
//! Cartesian product.
//!
//! | Algorithm | Section | Requires | Character |
//! |-----------|---------|----------|-----------|
//! | [`Greedy`] | §4 | full monotonicity | per-bucket argmax + space splitting; no plan enumeration |
//! | [`Drips`]  | §5.1 | — | abstraction refinement; finds only the *first* plan |
//! | [`IDrips`] | §5.2 | — | re-runs Drips per emission; works for every measure |
//! | [`Streamer`] | §5.2 | diminishing returns | single abstraction + dominance-graph recycling |
//! | [`Pi`] | §6 | — | independence-aware brute force (the paper's baseline) |
//! | [`Naive`] | — | — | full recomputation brute force (sanity baseline) |
//!
//! All orderers implement [`PlanOrderer`] and produce *identical utility
//! sequences* (Definition 2.1) whenever they are applicable;
//! [`verify_ordering`] checks that property against brute force.
//!
//! ```
//! use qpo_catalog::GeneratorConfig;
//! use qpo_core::{ByExpectedTuples, PlanOrderer, Pi, Streamer, verify_ordering};
//! use qpo_utility::Coverage;
//!
//! // A synthetic instance: 3 subgoals × 5 sources, overlap 0.3 (§6 setup).
//! let inst = GeneratorConfig::new(3, 5).with_seed(7).build();
//!
//! // Streamer emits the 10 best plans without enumerating all 125.
//! let mut streamer = Streamer::new(&inst, &Coverage, &ByExpectedTuples).unwrap();
//! let plans = streamer.order_k(10);
//! verify_ordering(&inst, &Coverage, &plans, 1e-12).unwrap();
//!
//! // The PI baseline agrees on every utility.
//! let baseline = Pi::new(&inst, &Coverage).order_k(10);
//! for (a, b) in plans.iter().zip(&baseline) {
//!     assert!((a.utility - b.utility).abs() < 1e-12);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abstraction;
pub mod advice;
pub mod drips;
pub mod greedy;
pub mod idrips;
pub mod kernel;
pub mod merged;
pub mod orderer;
pub mod pi;
pub mod planspace;
pub mod streamer;

pub use abstraction::{
    AbstractionHeuristic, AbstractionTree, ByExpectedTuples, ByExtentMidpoint, ByTransmissionCost,
    NodeId, RandomKey,
};
pub use advice::{advise, AlgorithmAdvice, Recommended};
pub use drips::{find_best, Drips, DripsOutcome};
pub use greedy::Greedy;
pub use idrips::IDrips;
pub use kernel::{
    reference_find_best, verify_certificates, CertificateError, KernelStats, OrderingKernel,
};
pub use merged::{merge_greedys, merge_streamers, MergedOrderer};
pub use orderer::{
    utility_cmp, verify_ordering, OrderedPlan, OrdererError, OutcomeStatus, PlanOrderer,
    PlanOutcome,
};
pub use pi::{Naive, Pi};
pub use planspace::{full_space, remove_plan, space_contains, space_size, PlanSpace};
pub use streamer::{Streamer, StreamerStats};
