//! Source abstraction (§5.1): grouping similar sources into hierarchies.
//!
//! Drips, iDrips and Streamer reason over *abstract sources* — groups of
//! concrete sources treated as one — arranged in a binary hierarchy built
//! agglomeratively from sources sorted by a heuristic key. The paper's
//! default heuristic groups sources "based on their similarity wrt the
//! number of expected output tuples" (§6); alternatives are provided for
//! the ablation experiment.

use qpo_catalog::{ProblemInstance, SourceRef};

/// Orders sources within a bucket so that neighbours are "similar"; the
/// hierarchy then merges neighbours.
pub trait AbstractionHeuristic {
    /// Heuristic name, for experiment tables.
    fn name(&self) -> &'static str;

    /// Sort key; sources with close keys are grouped together.
    fn key(&self, inst: &ProblemInstance, source: SourceRef) -> f64;
}

impl<H: AbstractionHeuristic + ?Sized> AbstractionHeuristic for &H {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn key(&self, inst: &ProblemInstance, source: SourceRef) -> f64 {
        (**self).key(inst, source)
    }
}

impl<H: AbstractionHeuristic + ?Sized> AbstractionHeuristic for Box<H> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn key(&self, inst: &ProblemInstance, source: SourceRef) -> f64 {
        (**self).key(inst, source)
    }
}

/// The paper's default: group by expected output tuples `n_i`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ByExpectedTuples;

impl AbstractionHeuristic for ByExpectedTuples {
    fn name(&self) -> &'static str {
        "by-tuples"
    }
    fn key(&self, inst: &ProblemInstance, source: SourceRef) -> f64 {
        inst.stat(source).tuples
    }
}

/// Group by extent midpoint — clusters sources covering nearby data, which
/// tightens coverage intervals.
#[derive(Debug, Clone, Copy, Default)]
pub struct ByExtentMidpoint;

impl AbstractionHeuristic for ByExtentMidpoint {
    fn name(&self) -> &'static str {
        "by-extent"
    }
    fn key(&self, inst: &ProblemInstance, source: SourceRef) -> f64 {
        let e = inst.stat(source).extent;
        e.start as f64 + e.len as f64 / 2.0
    }
}

/// Group by per-item transmission cost — tightens cost intervals.
#[derive(Debug, Clone, Copy, Default)]
pub struct ByTransmissionCost;

impl AbstractionHeuristic for ByTransmissionCost {
    fn name(&self) -> &'static str {
        "by-alpha"
    }
    fn key(&self, inst: &ProblemInstance, source: SourceRef) -> f64 {
        inst.stat(source).transmission_cost
    }
}

/// A deliberately uninformative heuristic (ablation baseline): a seeded
/// hash of the source reference.
#[derive(Debug, Clone, Copy)]
pub struct RandomKey {
    /// Hash seed.
    pub seed: u64,
}

impl AbstractionHeuristic for RandomKey {
    fn name(&self) -> &'static str {
        "random"
    }
    fn key(&self, _inst: &ProblemInstance, source: SourceRef) -> f64 {
        // splitmix64 over (seed, bucket, index).
        let mut x = self
            .seed
            .wrapping_add(source.bucket as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(source.index as u64);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (x ^ (x >> 31)) as f64
    }
}

/// Node handle within an [`AbstractionTree`].
pub type NodeId = usize;

/// A binary (agglomerative) abstraction hierarchy over one bucket's
/// candidate source indices. Leaves are concrete sources; each internal
/// node's indices are the union of its children's.
#[derive(Debug, Clone)]
pub struct AbstractionTree {
    nodes: Vec<Node>,
    root: NodeId,
}

#[derive(Debug, Clone)]
struct Node {
    /// Sorted concrete source indices covered by this node.
    indices: Vec<usize>,
    /// Child node ids; empty for leaves.
    children: Vec<NodeId>,
}

impl AbstractionTree {
    /// Builds the hierarchy for `candidates` of `bucket`, pairing
    /// neighbours in heuristic-key order level by level until one root
    /// remains.
    ///
    /// # Panics
    /// Panics if `candidates` is empty.
    pub fn build<H: AbstractionHeuristic + ?Sized>(
        inst: &ProblemInstance,
        bucket: usize,
        candidates: &[usize],
        heuristic: &H,
    ) -> Self {
        assert!(!candidates.is_empty(), "cannot abstract an empty bucket");
        let mut order: Vec<usize> = candidates.to_vec();
        order.sort_by(|&a, &b| {
            let ka = heuristic.key(inst, SourceRef::new(bucket, a));
            let kb = heuristic.key(inst, SourceRef::new(bucket, b));
            crate::utility_cmp(ka, kb).then(a.cmp(&b))
        });

        let mut nodes: Vec<Node> = order
            .iter()
            .map(|&i| Node {
                indices: vec![i],
                children: Vec::new(),
            })
            .collect();
        let mut level: Vec<NodeId> = (0..nodes.len()).collect();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                match pair {
                    [single] => next.push(*single),
                    [a, b] => {
                        let mut indices =
                            [nodes[*a].indices.as_slice(), nodes[*b].indices.as_slice()].concat();
                        indices.sort_unstable();
                        nodes.push(Node {
                            indices,
                            children: vec![*a, *b],
                        });
                        next.push(nodes.len() - 1);
                    }
                    _ => unreachable!("chunks(2) yields 1- or 2-element slices"),
                }
            }
            level = next;
        }
        AbstractionTree {
            root: level[0],
            nodes,
        }
    }

    /// The root node (covering every candidate).
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Sorted concrete indices covered by a node.
    pub fn indices(&self, id: NodeId) -> &[usize] {
        &self.nodes[id].indices
    }

    /// Child node ids (empty for leaves).
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id].children
    }

    /// True iff the node is a single concrete source.
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.nodes[id].children.is_empty()
    }

    /// Number of concrete sources under the node.
    pub fn width(&self, id: NodeId) -> usize {
        self.nodes[id].indices.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpo_catalog::{Extent, SourceStats};

    fn inst(tuples: &[f64]) -> ProblemInstance {
        let bucket = tuples
            .iter()
            .map(|&n| {
                SourceStats::new()
                    .with_extent(Extent::new(0, 1))
                    .with_tuples(n)
            })
            .collect();
        ProblemInstance::new(0.0, vec![100], vec![bucket]).unwrap()
    }

    #[test]
    fn groups_similar_tuple_counts_first() {
        // Keys: 10, 1000, 12, 990 → sorted: s0(10), s2(12), s3(990), s1(1000).
        let inst = inst(&[10.0, 1000.0, 12.0, 990.0]);
        let t = AbstractionTree::build(&inst, 0, &[0, 1, 2, 3], &ByExpectedTuples);
        assert_eq!(t.indices(t.root()), &[0, 1, 2, 3]);
        let kids = t.children(t.root());
        assert_eq!(kids.len(), 2);
        let mut groups: Vec<Vec<usize>> = kids.iter().map(|&c| t.indices(c).to_vec()).collect();
        groups.sort();
        assert_eq!(
            groups,
            vec![vec![0, 2], vec![1, 3]],
            "similar sizes grouped"
        );
    }

    #[test]
    fn single_candidate_is_a_leaf_root() {
        let inst = inst(&[5.0, 6.0]);
        let t = AbstractionTree::build(&inst, 0, &[1], &ByExpectedTuples);
        assert!(t.is_leaf(t.root()));
        assert_eq!(t.indices(t.root()), &[1]);
        assert_eq!(t.width(t.root()), 1);
    }

    #[test]
    fn odd_counts_carry_the_straggler_up() {
        let inst = inst(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let t = AbstractionTree::build(&inst, 0, &[0, 1, 2, 3, 4], &ByExpectedTuples);
        assert_eq!(t.width(t.root()), 5);
        // Every concrete index appears exactly once among the leaves.
        fn leaves(t: &AbstractionTree, id: NodeId, out: &mut Vec<usize>) {
            if t.is_leaf(id) {
                out.extend_from_slice(t.indices(id));
            } else {
                for &c in t.children(id) {
                    leaves(t, c, out);
                }
            }
        }
        let mut ls = Vec::new();
        leaves(&t, t.root(), &mut ls);
        ls.sort_unstable();
        assert_eq!(ls, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn children_partition_parent() {
        let inst = inst(&[4.0, 3.0, 2.0, 1.0, 8.0, 9.0, 7.0]);
        let t = AbstractionTree::build(&inst, 0, &[0, 1, 2, 3, 4, 5, 6], &ByExtentMidpoint);
        let mut stack = vec![t.root()];
        while let Some(id) = stack.pop() {
            if t.is_leaf(id) {
                continue;
            }
            let mut union: Vec<usize> = t
                .children(id)
                .iter()
                .flat_map(|&c| t.indices(c).iter().copied())
                .collect();
            union.sort_unstable();
            assert_eq!(union, t.indices(id), "children partition node {id}");
            stack.extend_from_slice(t.children(id));
        }
    }

    #[test]
    fn heuristics_have_names_and_keys() {
        let inst = inst(&[3.0]);
        let r = SourceRef::new(0, 0);
        assert_eq!(ByExpectedTuples.name(), "by-tuples");
        assert_eq!(ByExpectedTuples.key(&inst, r), 3.0);
        assert_eq!(ByExtentMidpoint.name(), "by-extent");
        assert_eq!(ByExtentMidpoint.key(&inst, r), 0.5);
        assert_eq!(ByTransmissionCost.name(), "by-alpha");
        assert_eq!(ByTransmissionCost.key(&inst, r), 0.0);
        let rk = RandomKey { seed: 1 };
        assert_eq!(rk.name(), "random");
        // Deterministic per seed, differs across seeds (overwhelmingly).
        assert_eq!(rk.key(&inst, r), RandomKey { seed: 1 }.key(&inst, r));
        assert_ne!(rk.key(&inst, r), RandomKey { seed: 2 }.key(&inst, r));
    }

    #[test]
    fn random_heuristic_still_builds_valid_trees() {
        let inst = inst(&[1.0, 2.0, 3.0, 4.0]);
        let t = AbstractionTree::build(&inst, 0, &[0, 1, 2, 3], &RandomKey { seed: 9 });
        assert_eq!(t.indices(t.root()), &[0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "empty bucket")]
    fn empty_candidates_panic() {
        let inst = inst(&[1.0]);
        let _ = AbstractionTree::build(&inst, 0, &[], &ByExpectedTuples);
    }
}
