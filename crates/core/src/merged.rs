//! Merged ordering across several plan spaces (§7).
//!
//! MiniCon produces *multiple* plan spaces (one per partition of the query
//! subgoals into covered sets); §7 notes that "modifying the ordering
//! algorithms to handle a set of plan spaces (instead of one) is trivial".
//! For **context-free** measures — utilities that do not depend on what has
//! executed — the global ordering is exactly the merge of the per-space
//! orderings: each space's orderer emits in decreasing utility, so a k-way
//! merge by head utility is globally correct. Context-dependent measures
//! (coverage, caching costs) would need cross-space context threading,
//! which per-space orderers cannot provide; [`merge_streamers`] therefore
//! refuses them.

use crate::abstraction::AbstractionHeuristic;
use crate::orderer::{OrderedPlan, OrdererError, PlanOrderer};
use crate::streamer::Streamer;
use qpo_catalog::ProblemInstance;
use qpo_utility::UtilityMeasure;

/// K-way merge over per-space orderers. Each emitted item carries the index
/// of the plan space it came from, so callers can map index plans back to
/// the right generalized buckets.
pub struct MergedOrderer<'a> {
    orderers: Vec<Box<dyn PlanOrderer + 'a>>,
    /// Buffered head of each orderer (`None` = exhausted).
    heads: Vec<Option<OrderedPlan>>,
}

impl<'a> MergedOrderer<'a> {
    /// Merges the given per-space orderers.
    ///
    /// # Correctness requirement
    /// The utility measure driving the orderers must be context-free;
    /// otherwise emissions from one space would change utilities in
    /// another and the merge order would be wrong. Use
    /// [`merge_streamers`] to get this checked, or uphold it yourself.
    pub fn new(mut orderers: Vec<Box<dyn PlanOrderer + 'a>>) -> Self {
        let heads = orderers.iter_mut().map(|o| o.next_plan()).collect();
        MergedOrderer { orderers, heads }
    }

    /// Number of plan spaces being merged.
    pub fn spaces(&self) -> usize {
        self.orderers.len()
    }

    /// Emits the globally next-best plan as `(space index, plan)`, or
    /// `None` when every space is exhausted.
    pub fn next_plan(&mut self) -> Option<(usize, OrderedPlan)> {
        let best = self
            .heads
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.as_ref().map(|p| (i, p.utility)))
            .max_by(|(ia, ua), (ib, ub)| {
                crate::utility_cmp(*ua, *ub).then(ib.cmp(ia)) // ties → lower space index
            })
            .map(|(i, _)| i)?;
        let plan = self.heads[best].take().expect("head buffered");
        self.heads[best] = self.orderers[best].next_plan();
        Some((best, plan))
    }

    /// Emits up to `k` plans.
    pub fn order_k(&mut self, k: usize) -> Vec<(usize, OrderedPlan)> {
        let mut out = Vec::with_capacity(k.min(1024));
        for _ in 0..k {
            match self.next_plan() {
                Some(p) => out.push(p),
                None => break,
            }
        }
        out
    }
}

/// Builds one [`Streamer`] per plan-space instance and merges them.
///
/// Fails with [`OrdererError::ContextDependent`] unless the measure is
/// context-free, and with [`OrdererError::NoDiminishingReturns`] if
/// Streamer itself does not apply (context-free implies diminishing
/// returns for well-behaved measures, but the check is kept explicit).
pub fn merge_streamers<'a, M, H>(
    instances: &'a [ProblemInstance],
    measure: &'a M,
    heuristic: &H,
) -> Result<MergedOrderer<'a>, OrdererError>
where
    M: UtilityMeasure,
    H: AbstractionHeuristic + ?Sized,
{
    if !measure.context_free() {
        return Err(OrdererError::ContextDependent(measure.name()));
    }
    let mut orderers: Vec<Box<dyn PlanOrderer + 'a>> = Vec::with_capacity(instances.len());
    for inst in instances {
        orderers.push(Box::new(Streamer::new(inst, measure, heuristic)?));
    }
    Ok(MergedOrderer::new(orderers))
}

/// Builds one [`crate::Greedy`] per plan-space instance and merges them —
/// the monotone-measure counterpart of [`merge_streamers`]. Requires the
/// measure to be context-free (for merge correctness) and fully monotonic
/// on every instance (for Greedy's applicability).
pub fn merge_greedys<'a, M>(
    instances: &'a [ProblemInstance],
    measure: &'a M,
) -> Result<MergedOrderer<'a>, OrdererError>
where
    M: UtilityMeasure,
{
    if !measure.context_free() {
        return Err(OrdererError::ContextDependent(measure.name()));
    }
    let mut orderers: Vec<Box<dyn PlanOrderer + 'a>> = Vec::with_capacity(instances.len());
    for inst in instances {
        orderers.push(Box::new(crate::Greedy::new(inst, measure)?));
    }
    Ok(MergedOrderer::new(orderers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::ByExpectedTuples;
    use qpo_catalog::GeneratorConfig;
    use qpo_utility::{Coverage, ExecutionContext, FailureCost, MonetaryCost};

    fn instances() -> Vec<ProblemInstance> {
        vec![
            GeneratorConfig::new(2, 3).with_seed(1).build(),
            GeneratorConfig::new(3, 2).with_seed(2).build(),
            GeneratorConfig::new(1, 4).with_seed(3).build(),
        ]
    }

    #[test]
    fn rejects_context_dependent_measures() {
        let insts = instances();
        assert!(matches!(
            merge_streamers(&insts, &Coverage, &ByExpectedTuples)
                .err()
                .unwrap(),
            OrdererError::ContextDependent("coverage")
        ));
        assert!(merge_streamers(&insts, &MonetaryCost::with_caching(), &ByExpectedTuples).is_err());
    }

    #[test]
    fn merge_is_globally_sorted_and_complete() {
        let insts = instances();
        let m = FailureCost::without_caching();
        let mut merged = merge_streamers(&insts, &m, &ByExpectedTuples).unwrap();
        assert_eq!(merged.spaces(), 3);
        let total: usize = insts.iter().map(ProblemInstance::plan_count).sum();
        let out = merged.order_k(total + 10);
        assert_eq!(out.len(), total, "every plan of every space emitted");
        // Globally non-increasing utilities.
        for w in out.windows(2) {
            assert!(w[0].1.utility >= w[1].1.utility - 1e-12);
        }
        // Matches the brute-force global ordering's utility sequence.
        let ctx = ExecutionContext::new();
        let mut brute: Vec<f64> = Vec::new();
        for inst in &insts {
            for p in inst.all_plans() {
                brute.push(m.utility(inst, &p, &ctx));
            }
        }
        brute.sort_by(|a, b| crate::utility_cmp(*b, *a));
        for (o, b) in out.iter().zip(&brute) {
            assert!((o.1.utility - b).abs() < 1e-12);
        }
        // Space indices are in range.
        assert!(out.iter().all(|(s, _)| *s < 3));
        assert!(merged.next_plan().is_none());
    }

    #[test]
    fn empty_space_list_is_empty() {
        let mut merged = MergedOrderer::new(Vec::new());
        assert_eq!(merged.spaces(), 0);
        assert!(merged.next_plan().is_none());
    }

    #[test]
    fn merged_greedys_match_merged_streamers() {
        use qpo_utility::LinearCost;
        let insts = instances();
        let g: Vec<f64> = merge_greedys(&insts, &LinearCost)
            .unwrap()
            .order_k(20)
            .into_iter()
            .map(|(_, p)| p.utility)
            .collect();
        let s: Vec<f64> = merge_streamers(&insts, &LinearCost, &ByExpectedTuples)
            .unwrap()
            .order_k(20)
            .into_iter()
            .map(|(_, p)| p.utility)
            .collect();
        assert_eq!(g.len(), s.len());
        for (a, b) in g.iter().zip(&s) {
            assert!((a - b).abs() < 1e-12, "{g:?} vs {s:?}");
        }
        // Coverage is context-dependent → rejected.
        assert!(merge_greedys(&insts, &Coverage).is_err());
    }
}
