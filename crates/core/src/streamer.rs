//! Streamer (§5.2, Figure 5): abstraction-based ordering with dominance
//! recycling.
//!
//! Streamer abstracts sources **once**, then maintains a *dominance graph*
//! whose nodes are (abstract and concrete) plans and whose edges `p → q`
//! record that some member of `p` dominates everything in `q`. Each edge
//! carries the set `E(p, q)` of plans removed since the edge was created;
//! an edge survives the removal of plan `d` iff some member of `p` is
//! independent of every plan in `E(p,q) ∪ {d}` — then that member's utility
//! is unchanged while `q`'s can only have fallen (diminishing returns), so
//! the dominance still holds. This recycling is what lets Streamer avoid
//! re-deriving the dominance work iDrips redoes every round.
//!
//! Applicable only when the measure exhibits utility-diminishing returns.

use crate::abstraction::{AbstractionHeuristic, AbstractionTree, NodeId};
use crate::orderer::{OrderedPlan, OrdererError, PlanOrderer};
use qpo_catalog::ProblemInstance;
use qpo_interval::Interval;
use qpo_obs::{Counter, Obs};
use qpo_utility::{as_concrete, ExecutionContext, UtilityMeasure};
use std::collections::{BTreeMap, BTreeSet};

/// Work counters exposed for the experiments.
///
/// A view over the live `qpo_streamer_*_total` counters — on the
/// orderer's own registry by default, on a shared one after
/// [`Streamer::with_obs`] — materialized by [`Streamer::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamerStats {
    /// Refinements of abstract plans (Step 2.c).
    pub refinements: usize,
    /// Dominance links created (Step 2.b).
    pub links_created: usize,
    /// Link validity checks that passed, extending `E(p,q)` (Step 2.d).
    pub links_recycled: usize,
    /// Links removed because validity could not be certified.
    pub links_invalidated: usize,
    /// Utility (re)computations (Step 2.a).
    pub utility_recomputations: usize,
}

/// Live metric handles behind [`StreamerStats`].
#[derive(Debug, Clone)]
struct StreamerMetrics {
    refinements: Counter,
    links_created: Counter,
    links_recycled: Counter,
    links_invalidated: Counter,
    utility_recomputations: Counter,
}

impl StreamerMetrics {
    fn registered(obs: &Obs) -> Self {
        let c = |name| obs.registry.counter(name, &[]);
        StreamerMetrics {
            refinements: c("qpo_streamer_refinements_total"),
            links_created: c("qpo_streamer_links_created_total"),
            links_recycled: c("qpo_streamer_links_recycled_total"),
            links_invalidated: c("qpo_streamer_links_invalidated_total"),
            utility_recomputations: c("qpo_streamer_utility_recomputations_total"),
        }
    }

    fn stats(&self) -> StreamerStats {
        StreamerStats {
            refinements: self.refinements.get() as usize,
            links_created: self.links_created.get() as usize,
            links_recycled: self.links_recycled.get() as usize,
            links_invalidated: self.links_invalidated.get() as usize,
            utility_recomputations: self.utility_recomputations.get() as usize,
        }
    }
}

#[derive(Debug, Clone)]
struct SNode {
    /// Abstraction-tree node per bucket.
    nodes: Vec<NodeId>,
    /// Candidate indices per bucket (materialized from `nodes`).
    cands: Vec<Vec<usize>>,
    /// `None` = nil in the paper's pseudocode (needs recomputation).
    utility: Option<Interval>,
}

impl SNode {
    fn is_concrete(&self) -> bool {
        self.cands.iter().all(|c| c.len() == 1)
    }
}

#[derive(Debug, Clone)]
struct Link {
    from: usize,
    to: usize,
    /// The paper's `E(p,q)`: plans removed since the link was created.
    removed: Vec<Vec<usize>>,
}

/// The Streamer plan orderer.
pub struct Streamer<'a, M: UtilityMeasure + ?Sized> {
    inst: &'a ProblemInstance,
    measure: &'a M,
    trees: Vec<AbstractionTree>,
    ctx: ExecutionContext,
    nodes: BTreeMap<usize, SNode>,
    links: Vec<Link>,
    /// `(from, to)` index over `links`, for O(log L) duplicate checks.
    link_set: BTreeSet<(usize, usize)>,
    next_id: usize,
    metrics: StreamerMetrics,
}

impl<'a, M: UtilityMeasure + ?Sized> Streamer<'a, M> {
    /// Creates the orderer; sources are abstracted once, here. Fails if the
    /// measure lacks utility-diminishing returns.
    pub fn new<H: AbstractionHeuristic + ?Sized>(
        inst: &'a ProblemInstance,
        measure: &'a M,
        heuristic: &H,
    ) -> Result<Self, OrdererError> {
        if !measure.diminishing_returns() {
            return Err(OrdererError::NoDiminishingReturns(measure.name()));
        }
        let trees: Vec<AbstractionTree> = inst
            .buckets
            .iter()
            .enumerate()
            .map(|(b, bucket)| {
                let all: Vec<usize> = (0..bucket.len()).collect();
                AbstractionTree::build(inst, b, &all, heuristic)
            })
            .collect();
        let top_nodes: Vec<NodeId> = trees.iter().map(AbstractionTree::root).collect();
        let top_cands: Vec<Vec<usize>> = trees
            .iter()
            .zip(&top_nodes)
            .map(|(t, &n)| t.indices(n).to_vec())
            .collect();
        let mut nodes = BTreeMap::new();
        nodes.insert(
            0,
            SNode {
                nodes: top_nodes,
                cands: top_cands,
                utility: None,
            },
        );
        Ok(Streamer {
            inst,
            measure,
            trees,
            ctx: ExecutionContext::new(),
            nodes,
            links: Vec::new(),
            link_set: BTreeSet::new(),
            next_id: 1,
            metrics: StreamerMetrics::registered(&Obs::new()),
        })
    }

    /// Re-homes the orderer's counters onto a shared registry. Call right
    /// after construction — previously accumulated counts stay behind.
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.metrics = StreamerMetrics::registered(obs);
        self
    }

    /// Work counters.
    pub fn stats(&self) -> StreamerStats {
        self.metrics.stats()
    }

    /// Current dominance-graph size (nodes, links).
    pub fn graph_size(&self) -> (usize, usize) {
        (self.nodes.len(), self.links.len())
    }

    /// Renders the current dominance graph in Graphviz DOT format: one node
    /// per plan (doubly-outlined when abstract, annotated with its utility
    /// interval when known) and one edge per dominance link, labelled with
    /// the size of its `E(p,q)` recycling set. Figure 4 of the paper, live.
    pub fn dominance_graph_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph dominance {\n  rankdir=LR;\n");
        for (id, node) in &self.nodes {
            let cands: Vec<String> = node
                .cands
                .iter()
                .map(|c| {
                    let xs: Vec<String> = c.iter().map(usize::to_string).collect();
                    format!("{{{}}}", xs.join(","))
                })
                .collect();
            let utility = match node.utility {
                Some(u) => format!("\\n{u}"),
                None => "\\nnil".to_string(),
            };
            let shape = if node.is_concrete() { "box" } else { "ellipse" };
            writeln!(
                out,
                "  n{id} [shape={shape}, label=\"{}{utility}\"];",
                cands.join("×")
            )
            .expect("writing to a String cannot fail");
        }
        for link in &self.links {
            writeln!(
                out,
                "  n{} -> n{} [label=\"|E|={}\"];",
                link.from,
                link.to,
                link.removed.len()
            )
            .expect("writing to a String cannot fail");
        }
        out.push_str("}\n");
        out
    }

    /// Ids with no incoming dominance link.
    fn nondominated(&self) -> Vec<usize> {
        let dominated: BTreeSet<usize> = self.links.iter().map(|l| l.to).collect();
        self.nodes
            .keys()
            .copied()
            .filter(|id| !dominated.contains(id))
            .collect()
    }

    fn has_link(&self, from: usize, to: usize) -> bool {
        self.link_set.contains(&(from, to))
    }

    fn remove_node_and_links(&mut self, id: usize) -> SNode {
        self.link_set.retain(|&(f, t)| f != id && t != id);
        self.links.retain(|l| l.from != id && l.to != id);
        self.nodes.remove(&id).expect("node exists")
    }

    /// Step 2.c: replace an abstract plan by its children (splitting the
    /// widest bucket).
    fn refine(&mut self, id: usize) {
        let parent = self.remove_node_and_links(id);
        let bucket = (0..parent.cands.len())
            .filter(|&b| parent.cands[b].len() > 1)
            .max_by_key(|&b| parent.cands[b].len())
            .expect("refined plan is abstract");
        let tree = &self.trees[bucket];
        for &child in tree.children(parent.nodes[bucket]) {
            let mut nodes = parent.nodes.clone();
            nodes[bucket] = child;
            let mut cands = parent.cands.clone();
            cands[bucket] = tree.indices(child).to_vec();
            self.nodes.insert(
                self.next_id,
                SNode {
                    nodes,
                    cands,
                    utility: None,
                },
            );
            self.next_id += 1;
        }
        self.metrics.refinements.inc();
    }
}

impl<M: UtilityMeasure + ?Sized> PlanOrderer for Streamer<'_, M> {
    fn algorithm_name(&self) -> &'static str {
        "streamer"
    }

    fn next_plan(&mut self) -> Option<OrderedPlan> {
        loop {
            if self.nodes.is_empty() {
                return None;
            }
            // Step 2.a: recompute nil utilities of nondominated plans.
            let nd = self.nondominated();
            for &id in &nd {
                let node = self.nodes.get_mut(&id).expect("nondominated node exists");
                if node.utility.is_none() {
                    node.utility = Some(self.measure.utility_interval(
                        self.inst,
                        &node.cands,
                        &self.ctx,
                    ));
                    self.metrics.utility_recomputations.inc();
                }
            }
            // Step 2.b: create dominance links among nondominated pairs.
            // One incoming link suffices to make a plan dominated, so skip
            // targets that are already dominated (keeps tied clusters at
            // O(t) links instead of O(t²); dropping redundant links is
            // always sound).
            let utilities: Vec<(usize, Interval)> = nd
                .iter()
                .map(|&id| (id, self.nodes[&id].utility.expect("computed in 2.a")))
                .collect();
            let mut dominated_now: BTreeSet<usize> = self.links.iter().map(|l| l.to).collect();
            for &(b, ub) in &utilities {
                if dominated_now.contains(&b) {
                    continue; // a dominated plan need not dominate others
                }
                for &(c, uc) in &utilities {
                    if b == c || dominated_now.contains(&c) || !ub.dominates(uc) {
                        continue;
                    }
                    // Mutual (tied) dominance: orient by id so exactly one
                    // of each tied pair stays nondominated.
                    if uc.dominates(ub) && b > c {
                        continue;
                    }
                    if self.has_link(b, c) {
                        continue;
                    }
                    self.links.push(Link {
                        from: b,
                        to: c,
                        removed: Vec::new(),
                    });
                    self.link_set.insert((b, c));
                    dominated_now.insert(c);
                    self.metrics.links_created.inc();
                }
            }
            // Step 2.c: refine an abstract nondominated plan, if any (the
            // one with the highest optimistic utility).
            let nd = self.nondominated();
            let to_refine = nd
                .iter()
                .copied()
                .filter(|id| !self.nodes[id].is_concrete())
                .max_by(|&a, &b| {
                    let ua = self.nodes[&a].utility.expect("computed in 2.a").hi();
                    let ub = self.nodes[&b].utility.expect("computed in 2.a").hi();
                    crate::utility_cmp(ua, ub).then(b.cmp(&a))
                });
            if let Some(id) = to_refine {
                self.refine(id);
                continue;
            }
            // Step 2.d: every nondominated plan is concrete (and, by 2.b,
            // they all tie); output one.
            let d_id = nd
                .iter()
                .copied()
                .max_by(|&a, &b| {
                    let ua = self.nodes[&a].utility.expect("computed in 2.a").lo();
                    let ub = self.nodes[&b].utility.expect("computed in 2.a").lo();
                    crate::utility_cmp(ua, ub).then(b.cmp(&a))
                })
                .expect("graph is non-empty, so some plan is nondominated");
            let d = self.remove_node_and_links(d_id);
            let d_plan = as_concrete(&d.cands).expect("2.d plans are concrete");
            let d_utility = d.utility.expect("computed in 2.a").lo();

            // Recheck every surviving link: CheckValidity(q, E ∪ {d}).
            //
            // Fast path: if *every* member of the dominator is independent
            // of d, then d cannot disturb any witness, so the link stays
            // valid with E unchanged (adding d to E would be a no-op for
            // all future checks too). Otherwise extend E and re-certify.
            // E sets are capped: a link whose E would grow past the cap is
            // dropped instead — always sound (the target merely becomes
            // nondominated again) and it bounds per-removal work.
            const MAX_RECYCLE_SET: usize = 64;
            let mut kept = Vec::with_capacity(self.links.len());
            for mut link in std::mem::take(&mut self.links) {
                let q = &self.nodes[&link.from];
                let valid = if self.measure.all_independent(self.inst, &q.cands, &d_plan) {
                    true
                } else if link.removed.len() >= MAX_RECYCLE_SET {
                    false
                } else {
                    link.removed.push(d_plan.clone());
                    self.measure
                        .exists_independent(self.inst, &q.cands, &link.removed)
                };
                if valid {
                    self.metrics.links_recycled.inc();
                    kept.push(link);
                } else {
                    self.metrics.links_invalidated.inc();
                    self.link_set.remove(&(link.from, link.to));
                }
            }
            self.links = kept;
            // Invalidate utilities of plans that may depend on d.
            for node in self.nodes.values_mut() {
                if !self
                    .measure
                    .all_independent(self.inst, &node.cands, &d_plan)
                {
                    node.utility = None;
                }
            }
            self.ctx.record(&d_plan);
            return Some(OrderedPlan {
                plan: d_plan,
                utility: d_utility,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::{ByExpectedTuples, ByExtentMidpoint, RandomKey};
    use crate::orderer::verify_ordering;
    use crate::pi::Pi;
    use qpo_catalog::GeneratorConfig;
    use qpo_utility::{Coverage, FailureCost, FusionCost, MonetaryCost};

    #[test]
    fn rejects_measures_without_diminishing_returns() {
        let inst = GeneratorConfig::new(2, 3).build();
        let m = FailureCost::with_caching();
        assert!(matches!(
            Streamer::new(&inst, &m, &ByExpectedTuples).err().unwrap(),
            OrdererError::NoDiminishingReturns("failure-cost+cache")
        ));
        let m = MonetaryCost::with_caching();
        assert!(Streamer::new(&inst, &m, &ByExpectedTuples).is_err());
    }

    #[test]
    fn exact_ordering_for_coverage() {
        let inst = GeneratorConfig::new(2, 5).with_seed(3).build();
        let mut alg = Streamer::new(&inst, &Coverage, &ByExpectedTuples).unwrap();
        let ordering = alg.order_k(inst.plan_count());
        assert_eq!(ordering.len(), inst.plan_count());
        verify_ordering(&inst, &Coverage, &ordering, 1e-12).unwrap();
        assert_eq!(alg.next_plan(), None, "plan space exhausted");
    }

    #[test]
    fn exact_ordering_for_failure_cost_without_caching() {
        let inst = GeneratorConfig::new(3, 4).with_seed(9).build();
        let m = FailureCost::without_caching();
        let mut alg = Streamer::new(&inst, &m, &ByExpectedTuples).unwrap();
        let ordering = alg.order_k(12);
        verify_ordering(&inst, &m, &ordering, 1e-9).unwrap();
    }

    #[test]
    fn exact_ordering_for_monetary_without_caching() {
        let inst = GeneratorConfig::new(3, 4).with_seed(30).build();
        let m = MonetaryCost::without_caching();
        let ordering = Streamer::new(&inst, &m, &ByExpectedTuples)
            .unwrap()
            .order_k(10);
        verify_ordering(&inst, &m, &ordering, 1e-9).unwrap();
    }

    #[test]
    fn exact_ordering_for_fusion_cost() {
        let inst = GeneratorConfig::new(3, 5).with_seed(14).build();
        let ordering = Streamer::new(&inst, &FusionCost, &ByExpectedTuples)
            .unwrap()
            .order_k(15);
        verify_ordering(&inst, &FusionCost, &ordering, 1e-9).unwrap();
    }

    #[test]
    fn matches_pi_utility_sequence() {
        let inst = GeneratorConfig::new(2, 6).with_seed(77).build();
        let s: Vec<f64> = Streamer::new(&inst, &Coverage, &ByExpectedTuples)
            .unwrap()
            .order_k(20)
            .into_iter()
            .map(|o| o.utility)
            .collect();
        let p: Vec<f64> = Pi::new(&inst, &Coverage)
            .order_k(20)
            .into_iter()
            .map(|o| o.utility)
            .collect();
        assert_eq!(s.len(), p.len());
        for (a, b) in s.iter().zip(&p) {
            assert!((a - b).abs() < 1e-12, "streamer {s:?} vs pi {p:?}");
        }
    }

    #[test]
    fn heuristic_affects_speed_not_output() {
        let inst = GeneratorConfig::new(2, 6).with_seed(41).build();
        let base: Vec<f64> = Streamer::new(&inst, &Coverage, &ByExpectedTuples)
            .unwrap()
            .order_k(10)
            .into_iter()
            .map(|o| o.utility)
            .collect();
        for ordering in [
            Streamer::new(&inst, &Coverage, &ByExtentMidpoint)
                .unwrap()
                .order_k(10),
            Streamer::new(&inst, &Coverage, &RandomKey { seed: 5 })
                .unwrap()
                .order_k(10),
        ] {
            verify_ordering(&inst, &Coverage, &ordering, 1e-12).unwrap();
            for (a, o) in base.iter().zip(&ordering) {
                assert!((a - o.utility).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn recycles_dominance_relations() {
        // Moderate overlap → plenty of independence → links survive.
        let inst = GeneratorConfig::new(3, 8)
            .with_overlap_rate(0.2)
            .with_seed(6)
            .build();
        let mut alg = Streamer::new(&inst, &Coverage, &ByExpectedTuples).unwrap();
        alg.order_k(10);
        let st = alg.stats();
        assert!(st.links_created > 0);
        assert!(st.links_recycled > 0, "no links recycled: {st:?}");
        assert!(st.refinements > 0);
        let (n, l) = alg.graph_size();
        assert!(n > 0 && l > 0);
    }

    #[test]
    fn full_independence_recycles_everything() {
        // Without caching, cost utilities are context-free: every link
        // survives every removal.
        let inst = GeneratorConfig::new(2, 6).with_seed(19).build();
        let m = FailureCost::without_caching();
        let mut alg = Streamer::new(&inst, &m, &ByExpectedTuples).unwrap();
        alg.order_k(36);
        assert_eq!(alg.stats().links_invalidated, 0);
    }

    #[test]
    fn dot_dump_reflects_the_graph() {
        let inst = GeneratorConfig::new(2, 4).with_seed(12).build();
        let mut alg = Streamer::new(&inst, &Coverage, &ByExpectedTuples).unwrap();
        let initial = alg.dominance_graph_dot();
        assert!(initial.starts_with("digraph dominance {"));
        assert!(initial.contains("{0,1,2,3}"), "top plan present: {initial}");
        assert!(initial.contains("nil"), "utility not yet computed");
        alg.order_k(3);
        let later = alg.dominance_graph_dot();
        let (nodes, links) = alg.graph_size();
        assert_eq!(later.matches("shape=").count(), nodes);
        assert_eq!(later.matches(" -> ").count(), links);
        assert!(later.ends_with("}\n"));
    }

    #[test]
    fn single_source_buckets() {
        let inst = GeneratorConfig::new(3, 1).build();
        let mut alg = Streamer::new(&inst, &Coverage, &ByExpectedTuples).unwrap();
        let ordering = alg.order_k(5);
        assert_eq!(ordering.len(), 1, "only one plan exists");
        assert_eq!(ordering[0].plan, vec![0, 0, 0]);
        assert_eq!(alg.algorithm_name(), "streamer");
    }
}
