//! Drips (§5.1): abstraction-based search for the single best plan.
//!
//! Drips abstracts each bucket into a hierarchy of abstract sources, starts
//! from the top abstract plan, and repeatedly (a) evaluates utility
//! intervals, (b) eliminates dominated plans (`l_p ≥ h_q` ⇒ drop `q`), and
//! (c) refines the most promising abstract plan by replacing one abstract
//! source with its children — until the surviving nondominated plan is
//! concrete. Most concrete plans are pruned away inside eliminated abstract
//! plans without ever being evaluated.
//!
//! This module is the engine; [`crate::idrips`] iterates it over shrinking
//! plan spaces, and a standalone [`Drips`] orderer exposes the classic
//! find-the-first-plan behaviour. The search itself lives in
//! [`crate::kernel`]: [`find_best`] drives a fresh [`OrderingKernel`]
//! (incremental dominance, heap frontier, memoized evaluation), while the
//! original textbook loop survives as
//! [`reference_find_best`](crate::kernel::reference_find_best), the
//! differential-testing oracle.

use crate::abstraction::AbstractionHeuristic;
use crate::kernel::OrderingKernel;
use crate::orderer::{OrderedPlan, PlanOrderer};
use crate::planspace::{full_space, PlanSpace};
use qpo_catalog::ProblemInstance;
use qpo_utility::{ExecutionContext, UtilityMeasure};

/// Outcome of a Drips search.
#[derive(Debug, Clone, PartialEq)]
pub struct DripsOutcome {
    /// Index of the plan space the winner came from.
    pub space: usize,
    /// The winning concrete plan.
    pub plan: Vec<usize>,
    /// Its exact utility under the search context.
    pub utility: f64,
    /// Number of refinement steps performed.
    pub refinements: usize,
}

/// Runs Drips over the given plan spaces under `ctx`, returning the best
/// concrete plan across all of them (or `None` when there are no spaces).
///
/// This convenience entry point drives a *fresh* [`OrderingKernel`], so the
/// abstraction hierarchies are built per call ("reabstracts the sources in
/// the new plan spaces", §5.2). Orderers that call Drips repeatedly —
/// [`crate::IDrips`] — hold a long-lived kernel instead, whose tree and
/// interval caches carry across emissions.
pub fn find_best<M, H>(
    inst: &ProblemInstance,
    measure: &M,
    ctx: &ExecutionContext,
    spaces: &[PlanSpace],
    heuristic: &H,
) -> Option<DripsOutcome>
where
    M: UtilityMeasure + ?Sized,
    H: AbstractionHeuristic + ?Sized,
{
    OrderingKernel::new().find_best(inst, measure, ctx, spaces, heuristic)
}

/// Standalone Drips orderer: yields exactly one plan — the best — then
/// stops. Provided for parity with the paper ("Drips is not suited for data
/// integration because it finds only the first plan", §5.2).
pub struct Drips<'a, M: UtilityMeasure + ?Sized, H> {
    inst: &'a ProblemInstance,
    measure: &'a M,
    heuristic: H,
    done: bool,
    /// Refinements performed by the (single) search, for reporting.
    pub refinements: usize,
}

impl<'a, M: UtilityMeasure + ?Sized, H: AbstractionHeuristic> Drips<'a, M, H> {
    /// Creates the one-shot orderer.
    pub fn new(inst: &'a ProblemInstance, measure: &'a M, heuristic: H) -> Self {
        Drips {
            inst,
            measure,
            heuristic,
            done: false,
            refinements: 0,
        }
    }
}

impl<M: UtilityMeasure + ?Sized, H: AbstractionHeuristic> PlanOrderer for Drips<'_, M, H> {
    fn algorithm_name(&self) -> &'static str {
        "drips"
    }

    fn next_plan(&mut self) -> Option<OrderedPlan> {
        if self.done {
            return None;
        }
        self.done = true;
        let ctx = ExecutionContext::new();
        let outcome = find_best(
            self.inst,
            self.measure,
            &ctx,
            &[full_space(self.inst)],
            &self.heuristic,
        )?;
        self.refinements = outcome.refinements;
        Some(OrderedPlan {
            plan: outcome.plan,
            utility: outcome.utility,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::ByExpectedTuples;
    use qpo_catalog::{Extent, GeneratorConfig, SourceStats};
    use qpo_utility::{CountingMeasure, Coverage, FailureCost, MonetaryCost};

    fn coverage_inst() -> ProblemInstance {
        let src = |s, l| SourceStats::new().with_extent(Extent::new(s, l));
        ProblemInstance::new(
            1.0,
            vec![20, 20],
            vec![
                vec![src(0, 8), src(5, 8), src(14, 6)],
                vec![src(0, 10), src(9, 10), src(3, 4)],
            ],
        )
        .unwrap()
    }

    fn brute_best<M: UtilityMeasure>(inst: &ProblemInstance, m: &M) -> f64 {
        let ctx = ExecutionContext::new();
        inst.all_plans()
            .iter()
            .map(|p| m.utility(inst, p, &ctx))
            .fold(f64::MIN, f64::max)
    }

    #[test]
    fn finds_the_best_plan_for_coverage() {
        let inst = coverage_inst();
        let ctx = ExecutionContext::new();
        let out = find_best(
            &inst,
            &Coverage,
            &ctx,
            &[full_space(&inst)],
            &ByExpectedTuples,
        )
        .unwrap();
        assert_eq!(out.utility, brute_best(&inst, &Coverage));
        assert_eq!(out.space, 0);
    }

    #[test]
    fn finds_best_across_measures_on_generated_instances() {
        for seed in 0..5u64 {
            let inst = GeneratorConfig::new(3, 6).with_seed(seed).build();
            let ctx = ExecutionContext::new();
            let spaces = [full_space(&inst)];
            let cov = find_best(&inst, &Coverage, &ctx, &spaces, &ByExpectedTuples).unwrap();
            assert!(
                (cov.utility - brute_best(&inst, &Coverage)).abs() < 1e-12,
                "seed {seed} coverage"
            );
            let fc = FailureCost::without_caching();
            let out = find_best(&inst, &fc, &ctx, &spaces, &ByExpectedTuples).unwrap();
            assert!(
                (out.utility - brute_best(&inst, &fc)).abs() < 1e-9,
                "seed {seed} failure-cost"
            );
            let mc = MonetaryCost::without_caching();
            let out = find_best(&inst, &mc, &ctx, &spaces, &ByExpectedTuples).unwrap();
            assert!(
                (out.utility - brute_best(&inst, &mc)).abs() < 1e-9,
                "seed {seed} monetary"
            );
        }
    }

    #[test]
    fn respects_the_execution_context() {
        let inst = coverage_inst();
        let mut ctx = ExecutionContext::new();
        let first = find_best(
            &inst,
            &Coverage,
            &ctx,
            &[full_space(&inst)],
            &ByExpectedTuples,
        )
        .unwrap();
        ctx.record(&first.plan);
        let second = find_best(
            &inst,
            &Coverage,
            &ctx,
            &[full_space(&inst)],
            &ByExpectedTuples,
        )
        .unwrap();
        // The best plan given the first was executed: brute-force check.
        let best2 = inst
            .all_plans()
            .iter()
            .map(|p| Coverage.utility(&inst, p, &ctx))
            .fold(f64::MIN, f64::max);
        assert!((second.utility - best2).abs() < 1e-12);
    }

    #[test]
    fn evaluates_fewer_plans_than_brute_force_when_abstraction_helps() {
        // Many similar sources: abstraction prunes aggressively.
        let inst = GeneratorConfig::new(3, 12).with_seed(11).build();
        let m = CountingMeasure::new(FailureCost::without_caching());
        let ctx = ExecutionContext::new();
        find_best(&inst, &m, &ctx, &[full_space(&inst)], &ByExpectedTuples).unwrap();
        let total = m.total_evals();
        assert!(
            (total as usize) < inst.plan_count(),
            "Drips evaluated {total} ≥ {} plans",
            inst.plan_count()
        );
    }

    #[test]
    fn searches_multiple_spaces() {
        let inst = coverage_inst();
        let ctx = ExecutionContext::new();
        // Two disjoint sub-spaces; best plan must carry the right space id.
        let spaces = [
            vec![vec![0], vec![0, 1, 2]],
            vec![vec![1, 2], vec![0, 1, 2]],
        ];
        let out = find_best(&inst, &Coverage, &ctx, &spaces, &ByExpectedTuples).unwrap();
        let all_best = brute_best(&inst, &Coverage);
        assert!((out.utility - all_best).abs() < 1e-12);
        assert!(out.space < 2);
        // Empty space list → None.
        assert!(find_best(&inst, &Coverage, &ctx, &[], &ByExpectedTuples).is_none());
    }

    #[test]
    fn standalone_drips_orders_once() {
        let inst = coverage_inst();
        let mut d = Drips::new(&inst, &Coverage, ByExpectedTuples);
        assert_eq!(d.algorithm_name(), "drips");
        let first = d.next_plan().unwrap();
        assert_eq!(first.utility, brute_best(&inst, &Coverage));
        assert!(d.next_plan().is_none(), "Drips yields only the first plan");
    }

    #[test]
    fn tie_handling_never_eliminates_all() {
        // All sources identical: every plan ties; Drips must still return one.
        let src = || SourceStats::new().with_extent(Extent::new(0, 5));
        let inst = ProblemInstance::new(
            0.0,
            vec![10, 10],
            vec![vec![src(), src(), src(), src()], vec![src(), src()]],
        )
        .unwrap();
        let ctx = ExecutionContext::new();
        let out = find_best(
            &inst,
            &Coverage,
            &ctx,
            &[full_space(&inst)],
            &ByExpectedTuples,
        )
        .unwrap();
        assert_eq!(out.utility, 0.25);
    }
}
