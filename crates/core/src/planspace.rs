//! Plan spaces and the recursive-splitting removal of §4.
//!
//! A *plan space* is a Cartesian product of candidate sets, one per bucket.
//! Removing a single plan from a space (as Greedy and iDrips must after
//! emitting it) splits the space into at most `n` disjoint sub-spaces that
//! together contain every other plan (Figure 2 of the paper).

use qpo_catalog::ProblemInstance;

/// A plan space: per bucket, the candidate source indices (non-empty,
/// strictly increasing).
pub type PlanSpace = Vec<Vec<usize>>;

/// The space containing every plan of the instance.
pub fn full_space(inst: &ProblemInstance) -> PlanSpace {
    inst.buckets
        .iter()
        .map(|b| (0..b.len()).collect())
        .collect()
}

/// Number of plans in the space.
pub fn space_size(space: &PlanSpace) -> usize {
    space.iter().map(Vec::len).product()
}

/// True iff the plan lies in the space.
pub fn space_contains(space: &PlanSpace, plan: &[usize]) -> bool {
    plan.len() == space.len()
        && space
            .iter()
            .zip(plan)
            .all(|(cands, i)| cands.binary_search(i).is_ok())
}

/// Removes `plan` from `space` by recursive splitting (§4, Figure 2):
/// sub-space `b` fixes buckets `0..b` to the plan's sources, excludes the
/// plan's source from bucket `b`, and keeps the rest of the space intact.
/// Empty sub-spaces (where the excluded source was the only candidate) are
/// dropped.
///
/// # Panics
/// Panics if the plan is not in the space.
pub fn remove_plan(space: &PlanSpace, plan: &[usize]) -> Vec<PlanSpace> {
    assert!(
        space_contains(space, plan),
        "plan {plan:?} not in space {space:?}"
    );
    let mut result = Vec::with_capacity(space.len());
    for b in 0..space.len() {
        let mut sub: PlanSpace = Vec::with_capacity(space.len());
        for (bb, cands) in space.iter().enumerate() {
            if bb < b {
                sub.push(vec![plan[bb]]);
            } else if bb == b {
                sub.push(cands.iter().copied().filter(|&i| i != plan[b]).collect());
            } else {
                sub.push(cands.clone());
            }
        }
        if sub.iter().all(|c| !c.is_empty()) {
            result.push(sub);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpo_catalog::{Extent, SourceStats};

    fn space() -> PlanSpace {
        vec![vec![0, 1, 2], vec![0, 1, 2]]
    }

    #[test]
    fn full_space_of_instance() {
        let src = || SourceStats::new().with_extent(Extent::new(0, 1));
        let inst = ProblemInstance::new(
            0.0,
            vec![10, 10],
            vec![vec![src(), src()], vec![src(), src(), src()]],
        )
        .unwrap();
        let s = full_space(&inst);
        assert_eq!(s, vec![vec![0, 1], vec![0, 1, 2]]);
        assert_eq!(space_size(&s), 6);
    }

    #[test]
    fn contains() {
        let s = space();
        assert!(space_contains(&s, &[0, 2]));
        assert!(!space_contains(&s, &[0, 3]));
        assert!(!space_contains(&s, &[0]));
    }

    #[test]
    fn figure2_example() {
        // Removing V1V5 (= [0, 1]) from {V1,V2,V3} × {V4,V5,V6} gives
        // S3 = {V2,V3} × {V4,V5,V6} and S5 = {V1} × {V4,V6}.
        let subs = remove_plan(&space(), &[0, 1]);
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0], vec![vec![1, 2], vec![0, 1, 2]]);
        assert_eq!(subs[1], vec![vec![0], vec![0, 2]]);
    }

    #[test]
    fn removal_partitions_the_space() {
        let s = space();
        let plan = [1, 2];
        let subs = remove_plan(&s, &plan);
        // Together the sub-spaces hold every plan except the removed one,
        // exactly once.
        let mut all: Vec<Vec<usize>> = Vec::new();
        for sub in &subs {
            for &i in &sub[0] {
                for &j in &sub[1] {
                    all.push(vec![i, j]);
                }
            }
        }
        all.sort();
        assert_eq!(all.len(), space_size(&s) - 1);
        let dedup: std::collections::BTreeSet<_> = all.iter().collect();
        assert_eq!(dedup.len(), all.len(), "sub-spaces are disjoint");
        assert!(!all.contains(&plan.to_vec()));
    }

    #[test]
    fn removal_from_singleton_space_gives_nothing() {
        let s: PlanSpace = vec![vec![3], vec![7]];
        assert!(remove_plan(&s, &[3, 7]).is_empty());
    }

    #[test]
    fn removal_keeps_partial_singletons() {
        let s: PlanSpace = vec![vec![3], vec![5, 7]];
        let subs = remove_plan(&s, &[3, 5]);
        assert_eq!(subs, vec![vec![vec![3], vec![7]]]);
    }

    #[test]
    #[should_panic(expected = "not in space")]
    fn removal_of_foreign_plan_panics() {
        remove_plan(&space(), &[0, 9]);
    }

    #[test]
    fn repeated_removal_empties_the_space() {
        // Keep removing the lexicographically smallest plan until nothing
        // is left; we must see each plan exactly once.
        let mut spaces = vec![space()];
        let mut seen = std::collections::BTreeSet::new();
        while let Some(s) = spaces.pop() {
            let plan: Vec<usize> = s.iter().map(|c| c[0]).collect();
            assert!(seen.insert(plan.clone()), "plan {plan:?} seen twice");
            spaces.extend(remove_plan(&s, &plan));
        }
        assert_eq!(seen.len(), 9);
    }
}
