//! iDrips (§5.2): iterated Drips over shrinking plan spaces.
//!
//! Each round, iDrips re-abstracts the sources of every surviving plan
//! space, runs Drips across the spaces to find the current best plan,
//! emits it, and removes it from its space by the recursive splitting of
//! §4. The paper notes this deliberately redoes dominance work each round —
//! the weakness Streamer fixes — but it needs no structural assumptions at
//! all: it works for *every* utility measure, caching included.

use crate::abstraction::AbstractionHeuristic;
use crate::kernel::{reference_find_best, KernelStats, OrderingKernel};
use crate::orderer::{OrderedPlan, PlanOrderer, PlanOutcome};
use crate::planspace::{full_space, remove_plan, PlanSpace};
use qpo_catalog::ProblemInstance;
use qpo_utility::{ExecutionContext, UtilityMeasure};

/// The iDrips plan orderer.
///
/// Owns a long-lived [`OrderingKernel`], so the per-emission Drips runs
/// share hash-consed abstraction trees and (epoch-guarded) memoized
/// utility intervals — the cross-round reuse §5.2's "redoes dominance
/// work" remark invites. [`with_reference_kernel`] switches to the
/// pre-optimization textbook loop for differential testing and
/// benchmarking; both produce bit-for-bit identical emissions.
///
/// [`with_reference_kernel`]: IDrips::with_reference_kernel
pub struct IDrips<'a, M: UtilityMeasure + ?Sized, H> {
    inst: &'a ProblemInstance,
    measure: &'a M,
    heuristic: H,
    ctx: ExecutionContext,
    spaces: Vec<PlanSpace>,
    kernel: OrderingKernel,
    use_reference: bool,
    total_refinements: usize,
    emitted: usize,
}

impl<'a, M: UtilityMeasure + ?Sized, H: AbstractionHeuristic> IDrips<'a, M, H> {
    /// Creates the orderer over the instance's full plan space.
    pub fn new(inst: &'a ProblemInstance, measure: &'a M, heuristic: H) -> Self {
        IDrips {
            inst,
            measure,
            heuristic,
            ctx: ExecutionContext::new(),
            spaces: vec![full_space(inst)],
            kernel: OrderingKernel::new(),
            use_reference: false,
            total_refinements: 0,
            emitted: 0,
        }
    }

    /// Switches to the pre-optimization O(n²) reference kernel (fresh
    /// trees every round, no caches, serial evaluation). Used by the
    /// differential tests and the `bench_ordering` baseline runs.
    pub fn with_reference_kernel(mut self) -> Self {
        self.use_reference = true;
        self
    }

    /// Wires the underlying kernel to a shared observability bundle: its
    /// `qpo_kernel_*` counters land on `obs.registry` and its refinement /
    /// elimination / champion / cache events go to `obs.journal`.
    pub fn with_obs(mut self, obs: &qpo_obs::Obs) -> Self {
        self.kernel = std::mem::take(&mut self.kernel).with_obs(obs);
        self
    }

    /// Keeps an [`qpo_obs::EliminationCertificate`] for every dominance
    /// elimination the kernel performs (no effect under the reference
    /// kernel, which predates provenance). Recording never changes what
    /// is emitted.
    pub fn with_certificates(mut self, record: bool) -> Self {
        self.kernel = std::mem::take(&mut self.kernel).with_certificates(record);
        self
    }

    /// Certificates accumulated so far, in elimination order.
    pub fn certificates(&self) -> &[qpo_obs::EliminationCertificate] {
        self.kernel.certificates()
    }

    /// Drains the accumulated certificates — pair with
    /// [`crate::verify_certificates`] and the emitted plans to replay
    /// every dominance decision.
    pub fn take_certificates(&mut self) -> Vec<qpo_obs::EliminationCertificate> {
        self.kernel.take_certificates()
    }

    /// Counter snapshot from the incremental kernel (all zeros when the
    /// reference kernel drives this orderer).
    pub fn kernel_stats(&self) -> KernelStats {
        self.kernel.stats()
    }

    /// Plan spaces currently alive.
    pub fn frontier_size(&self) -> usize {
        self.spaces.len()
    }

    /// Refinement steps performed across all rounds so far.
    pub fn total_refinements(&self) -> usize {
        self.total_refinements
    }

    /// Plans emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }
}

impl<M: UtilityMeasure + ?Sized, H: AbstractionHeuristic> PlanOrderer for IDrips<'_, M, H> {
    fn algorithm_name(&self) -> &'static str {
        "idrips"
    }

    fn next_plan(&mut self) -> Option<OrderedPlan> {
        let outcome = if self.use_reference {
            reference_find_best(
                self.inst,
                self.measure,
                &self.ctx,
                &self.spaces,
                &self.heuristic,
            )
        } else {
            self.kernel.find_best(
                self.inst,
                self.measure,
                &self.ctx,
                &self.spaces,
                &self.heuristic,
            )
        }?;
        self.total_refinements += outcome.refinements;
        let space = self.spaces.swap_remove(outcome.space);
        self.spaces.extend(remove_plan(&space, &outcome.plan));
        self.ctx.record(&outcome.plan);
        self.emitted += 1;
        Some(OrderedPlan {
            plan: outcome.plan,
            utility: outcome.utility,
        })
    }

    /// iDrips re-runs Drips from the context on every emission, so
    /// retracting a failed plan is exact: the next round's dominance work
    /// simply no longer credits it.
    fn observe(&mut self, outcome: &PlanOutcome) {
        if outcome.is_failure() {
            self.ctx.retract(&outcome.plan);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::{ByExpectedTuples, RandomKey};
    use crate::orderer::verify_ordering;
    use qpo_catalog::GeneratorConfig;
    use qpo_utility::{Coverage, FailureCost, FusionCost, MonetaryCost};

    #[test]
    fn exact_ordering_for_coverage() {
        let inst = GeneratorConfig::new(2, 5).with_seed(3).build();
        let mut alg = IDrips::new(&inst, &Coverage, ByExpectedTuples);
        let ordering = alg.order_k(inst.plan_count());
        assert_eq!(ordering.len(), inst.plan_count());
        verify_ordering(&inst, &Coverage, &ordering, 1e-12).unwrap();
        assert_eq!(alg.next_plan(), None);
        assert_eq!(alg.emitted(), inst.plan_count());
    }

    #[test]
    fn exact_ordering_for_caching_cost() {
        // The caching measure has plan dependence and growing utilities;
        // iDrips must still be exact because it re-runs Drips per round.
        let inst = GeneratorConfig::new(3, 4).with_seed(8).build();
        let m = FailureCost::with_caching();
        let ordering = IDrips::new(&inst, &m, ByExpectedTuples).order_k(10);
        assert_eq!(ordering.len(), 10);
        verify_ordering(&inst, &m, &ordering, 1e-9).unwrap();
    }

    #[test]
    fn exact_ordering_for_monetary_both_variants() {
        let inst = GeneratorConfig::new(3, 4).with_seed(21).build();
        for caching in [false, true] {
            let m = if caching {
                MonetaryCost::with_caching()
            } else {
                MonetaryCost::without_caching()
            };
            let ordering = IDrips::new(&inst, &m, ByExpectedTuples).order_k(8);
            verify_ordering(&inst, &m, &ordering, 1e-9).unwrap();
        }
    }

    #[test]
    fn exact_even_with_a_bad_heuristic() {
        // A random grouping heuristic affects only speed, never output.
        let inst = GeneratorConfig::new(2, 6).with_seed(5).build();
        let good = IDrips::new(&inst, &Coverage, ByExpectedTuples).order_k(12);
        let bad = IDrips::new(&inst, &Coverage, RandomKey { seed: 4 }).order_k(12);
        verify_ordering(&inst, &Coverage, &bad, 1e-12).unwrap();
        let gu: Vec<f64> = good.iter().map(|o| o.utility).collect();
        let bu: Vec<f64> = bad.iter().map(|o| o.utility).collect();
        for (a, b) in gu.iter().zip(&bu) {
            assert!(
                (a - b).abs() < 1e-12,
                "utility sequences diverge: {gu:?} vs {bu:?}"
            );
        }
    }

    #[test]
    fn matches_fusion_cost_bruteforce() {
        let inst = GeneratorConfig::new(3, 5).with_seed(13).build();
        let ordering = IDrips::new(&inst, &FusionCost, ByExpectedTuples).order_k(15);
        verify_ordering(&inst, &FusionCost, &ordering, 1e-9).unwrap();
    }

    #[test]
    fn emits_every_plan_exactly_once() {
        let inst = GeneratorConfig::new(2, 4).with_seed(2).build();
        let ordering = IDrips::new(&inst, &Coverage, ByExpectedTuples).order_k(usize::MAX);
        assert_eq!(ordering.len(), 16);
        let set: std::collections::BTreeSet<_> = ordering.iter().map(|o| o.plan.clone()).collect();
        assert_eq!(set.len(), 16);
    }

    #[test]
    fn observed_failures_match_the_bruteforce_orderer() {
        use crate::orderer::PlanOutcome;
        use crate::pi::Naive;
        let inst = GeneratorConfig::new(2, 4).with_seed(11).build();
        let m = FailureCost::with_caching();
        let mut idrips = IDrips::new(&inst, &m, ByExpectedTuples);
        let mut naive = Naive::new(&inst, &m);
        for step in 0..inst.plan_count() {
            let a = idrips.next_plan().unwrap();
            let b = naive.next_plan().unwrap();
            assert!((a.utility - b.utility).abs() < 1e-9, "step {step}");
            if step % 3 == 0 {
                let outcome = PlanOutcome::failed(&a.plan);
                idrips.observe(&outcome);
                naive.observe(&PlanOutcome::failed(&b.plan));
            }
        }
    }

    #[test]
    fn reports_refinements() {
        let inst = GeneratorConfig::new(2, 6).with_seed(17).build();
        let mut alg = IDrips::new(&inst, &Coverage, ByExpectedTuples);
        alg.order_k(3);
        assert!(alg.total_refinements() > 0);
        assert!(alg.frontier_size() <= 3 * inst.query_len());
        assert_eq!(alg.algorithm_name(), "idrips");
    }
}
