//! The plan-orderer abstraction and the formal correctness check.
//!
//! Definition 2.1 (plan-ordering problem): emit plans `p_1, p_2, ...` such
//! that each `p_i` maximizes `u(p | p_1..p_{i-1}, Q)` over the plans not yet
//! emitted. Every algorithm in this crate implements [`PlanOrderer`] and
//! yields plans *incrementally* — the whole point of the paper is that the
//! first few plans arrive long before the plan space has been enumerated.

use qpo_catalog::ProblemInstance;
use qpo_utility::{ExecutionContext, UtilityMeasure};
use std::fmt;

/// One emitted plan with the utility it had at emission time (i.e. given
/// the plans emitted before it).
#[derive(Debug, Clone, PartialEq)]
pub struct OrderedPlan {
    /// One source index per bucket.
    pub plan: Vec<usize>,
    /// `u(plan | previously emitted plans, Q)`.
    pub utility: f64,
}

impl fmt::Display for OrderedPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (b, i) in self.plan.iter().enumerate() {
            if b > 0 {
                write!(f, " ")?;
            }
            write!(f, "b{b}s{i}")?;
        }
        write!(f, "] u={:.6}", self.utility)
    }
}

/// Why an ordering algorithm refused to start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrdererError {
    /// Greedy requires a fully monotonic utility measure (§4).
    NotFullyMonotonic(&'static str),
    /// Streamer requires utility-diminishing returns (§5.2).
    NoDiminishingReturns(&'static str),
    /// Merged multi-space ordering requires a context-free measure (§7).
    ContextDependent(&'static str),
}

impl fmt::Display for OrdererError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrdererError::NotFullyMonotonic(m) => {
                write!(
                    f,
                    "measure `{m}` is not fully monotonic; Greedy does not apply"
                )
            }
            OrdererError::NoDiminishingReturns(m) => write!(
                f,
                "measure `{m}` lacks utility-diminishing returns; Streamer does not apply"
            ),
            OrdererError::ContextDependent(m) => write!(
                f,
                "measure `{m}` is context-dependent; per-space orderings cannot be merged"
            ),
        }
    }
}

impl std::error::Error for OrdererError {}

/// Total order on utilities: `total_cmp` over `-0.0`-normalized values.
///
/// Adding `0.0` maps `-0.0` to `+0.0`, after which [`f64::total_cmp`]
/// agrees with the IEEE partial order on every non-NaN pair — so swapping
/// this in for a `partial_cmp(..).expect(..)` chain preserves bit-stable
/// orderings while turning the NaN panic path into a deterministic total
/// order (NaN sorts above every number, negative NaN below).
#[inline]
pub fn utility_cmp(a: f64, b: f64) -> std::cmp::Ordering {
    (a + 0.0).total_cmp(&(b + 0.0))
}

/// How an emitted plan actually turned out once the runtime executed it.
///
/// The utilities of Definition 2.1 condition on the plans *assumed*
/// executed; emission optimistically records that assumption. When real
/// execution disagrees — a source stayed down and the plan never ran — the
/// runtime reports the outcome back through [`PlanOrderer::observe`] so
/// later emissions condition on what actually happened.
#[derive(Debug, Clone, PartialEq)]
pub enum OutcomeStatus {
    /// The plan executed; it produced this many answer tuples (new or not).
    Succeeded {
        /// Tuples the plan returned.
        tuples: usize,
    },
    /// The plan never executed (a source was permanently down or retries
    /// were exhausted); none of its source operations ran.
    Failed,
}

/// The observed outcome of one emitted plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanOutcome {
    /// The plan, in bucket-index form (as emitted).
    pub plan: Vec<usize>,
    /// What execution observed.
    pub status: OutcomeStatus,
}

impl PlanOutcome {
    /// A successful execution returning `tuples` answers.
    pub fn succeeded(plan: &[usize], tuples: usize) -> Self {
        PlanOutcome {
            plan: plan.to_vec(),
            status: OutcomeStatus::Succeeded { tuples },
        }
    }

    /// A failed execution: the plan's source operations never ran.
    pub fn failed(plan: &[usize]) -> Self {
        PlanOutcome {
            plan: plan.to_vec(),
            status: OutcomeStatus::Failed,
        }
    }

    /// True iff the plan failed to execute.
    pub fn is_failure(&self) -> bool {
        matches!(self.status, OutcomeStatus::Failed)
    }
}

/// An incremental plan-ordering algorithm.
pub trait PlanOrderer {
    /// Algorithm name, as used in the paper's figures.
    fn algorithm_name(&self) -> &'static str;

    /// Emits the next best plan (given everything emitted so far), or
    /// `None` when the plan space is exhausted.
    fn next_plan(&mut self) -> Option<OrderedPlan>;

    /// Reports the observed outcome of a previously emitted plan.
    ///
    /// Orderers that condition on the execution context implement this to
    /// *retract* failed plans — the plan's source operations never ran, so
    /// subsequent utilities must not credit them (e.g. as cached). The
    /// default is a no-op, which is exact for context-free measures and a
    /// documented approximation otherwise (Streamer keeps it: its dominance
    /// graph is built under monotone context growth and cannot soundly
    /// un-execute a plan).
    fn observe(&mut self, _outcome: &PlanOutcome) {}

    /// Emits up to `k` plans.
    fn order_k(&mut self, k: usize) -> Vec<OrderedPlan> {
        let mut out = Vec::with_capacity(k.min(1024));
        for _ in 0..k {
            match self.next_plan() {
                Some(p) => out.push(p),
                None => break,
            }
        }
        out
    }
}

/// Replays an emitted ordering against a brute-force argmax and checks
/// Definition 2.1 exactly: every emitted plan must (a) still be available,
/// (b) carry its true utility under the context of its predecessors, and
/// (c) achieve the maximum utility among all remaining plans (within
/// `tolerance`, for floating-point noise).
///
/// Returns `Err` with a description of the first violation. Intended for
/// tests and the verification harness; cost is `O(k · |plan space|)`.
pub fn verify_ordering<M: UtilityMeasure + ?Sized>(
    inst: &ProblemInstance,
    measure: &M,
    ordering: &[OrderedPlan],
    tolerance: f64,
) -> Result<(), String> {
    let mut remaining = inst.all_plans();
    let mut ctx = ExecutionContext::new();
    for (step, out) in ordering.iter().enumerate() {
        let pos = remaining
            .iter()
            .position(|p| p == &out.plan)
            .ok_or_else(|| {
                format!(
                    "step {step}: plan {:?} already emitted or invalid",
                    out.plan
                )
            })?;
        let actual = measure.utility(inst, &out.plan, &ctx);
        if (actual - out.utility).abs() > tolerance {
            return Err(format!(
                "step {step}: plan {:?} reported utility {} but has {}",
                out.plan, out.utility, actual
            ));
        }
        let best = remaining
            .iter()
            .map(|p| measure.utility(inst, p, &ctx))
            .fold(f64::MIN, f64::max);
        if actual + tolerance < best {
            return Err(format!(
                "step {step}: plan {:?} has utility {} but the maximum among {} remaining plans is {}",
                out.plan,
                actual,
                remaining.len(),
                best
            ));
        }
        remaining.swap_remove(pos);
        ctx.record(&out.plan);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpo_catalog::{Extent, SourceStats};
    use qpo_utility::LinearCost;

    fn inst() -> ProblemInstance {
        let src = |c: f64| {
            SourceStats::new()
                .with_extent(Extent::new(0, 10))
                .with_tuples(1.0)
                .with_transmission_cost(c)
        };
        ProblemInstance::new(
            0.0,
            vec![100, 100],
            vec![vec![src(1.0), src(2.0)], vec![src(3.0), src(4.0)]],
        )
        .unwrap()
    }

    fn op(plan: &[usize], utility: f64) -> OrderedPlan {
        OrderedPlan {
            plan: plan.to_vec(),
            utility,
        }
    }

    #[test]
    fn verify_accepts_a_correct_ordering() {
        // Costs: [0,0]=4, [1,0]=5, [0,1]=5, [1,1]=6 → utilities −4 > −5 ≥ −5 > −6.
        let ordering = [
            op(&[0, 0], -4.0),
            op(&[1, 0], -5.0),
            op(&[0, 1], -5.0),
            op(&[1, 1], -6.0),
        ];
        verify_ordering(&inst(), &LinearCost, &ordering, 1e-9).unwrap();
    }

    #[test]
    fn verify_rejects_wrong_order() {
        let ordering = [op(&[1, 1], -6.0), op(&[0, 0], -4.0)];
        let err = verify_ordering(&inst(), &LinearCost, &ordering, 1e-9).unwrap_err();
        assert!(err.contains("maximum"), "{err}");
    }

    #[test]
    fn verify_rejects_wrong_utility() {
        let ordering = [op(&[0, 0], -999.0)];
        let err = verify_ordering(&inst(), &LinearCost, &ordering, 1e-9).unwrap_err();
        assert!(err.contains("reported utility"), "{err}");
    }

    #[test]
    fn verify_rejects_duplicates() {
        let ordering = [op(&[0, 0], -4.0), op(&[0, 0], -4.0)];
        let err = verify_ordering(&inst(), &LinearCost, &ordering, 1e-9).unwrap_err();
        assert!(err.contains("already emitted"), "{err}");
    }

    #[test]
    fn display_and_errors() {
        assert_eq!(op(&[0, 2], -1.5).to_string(), "[b0s0 b1s2] u=-1.500000");
        let e = OrdererError::NotFullyMonotonic("coverage");
        assert!(e.to_string().contains("Greedy"));
        let e = OrdererError::NoDiminishingReturns("failure-cost+cache");
        assert!(e.to_string().contains("Streamer"));
    }
}
