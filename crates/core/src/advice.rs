//! Algorithm-selection guidance — §6's summary, as an API.
//!
//! The paper closes with "guidance on which algorithms perform best under
//! which conditions": Greedy whenever the measure is fully monotonic
//! (it "clearly outperforms the other algorithms when applicable");
//! Streamer when diminishing returns holds and plan dependence is modest
//! (it recycles dominance relations); iDrips otherwise (it assumes
//! nothing); PI only as a baseline or when plan evaluation is trivially
//! cheap. [`advise`] evaluates those conditions for a concrete instance
//! and measure.

use crate::orderer::OrdererError;
use qpo_catalog::ProblemInstance;
use qpo_utility::UtilityMeasure;
use std::fmt;

/// Which algorithm §6's guidance points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recommended {
    /// The measure is fully monotonic: use Greedy.
    Greedy,
    /// Diminishing returns holds: use Streamer.
    Streamer,
    /// No structural property holds: use iDrips.
    IDrips,
}

impl fmt::Display for Recommended {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Recommended::Greedy => write!(f, "greedy"),
            Recommended::Streamer => write!(f, "streamer"),
            Recommended::IDrips => write!(f, "idrips"),
        }
    }
}

/// Applicability of each algorithm to a (instance, measure) pair, plus the
/// paper's recommendation.
#[derive(Debug, Clone)]
pub struct AlgorithmAdvice {
    /// `Ok` iff Greedy applies (full monotonicity).
    pub greedy: Result<(), OrdererError>,
    /// `Ok` iff Streamer applies (utility-diminishing returns).
    pub streamer: Result<(), OrdererError>,
    /// `Ok` iff multi-space merging applies (context-free measure).
    pub merged: Result<(), OrdererError>,
    /// iDrips and the brute-force baselines always apply.
    pub recommended: Recommended,
    /// One-sentence rationale, in the paper's terms.
    pub rationale: &'static str,
}

impl fmt::Display for AlgorithmAdvice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mark = |r: &Result<(), OrdererError>| if r.is_ok() { "yes" } else { "no" };
        writeln!(f, "greedy applicable:   {}", mark(&self.greedy))?;
        writeln!(f, "streamer applicable: {}", mark(&self.streamer))?;
        writeln!(f, "multi-space merge:   {}", mark(&self.merged))?;
        writeln!(f, "idrips applicable:   yes (always)")?;
        write!(f, "recommended: {} — {}", self.recommended, self.rationale)
    }
}

/// Evaluates §6's guidance for an instance and measure.
pub fn advise<M: UtilityMeasure + ?Sized>(inst: &ProblemInstance, measure: &M) -> AlgorithmAdvice {
    let greedy = if measure.is_fully_monotonic(inst) {
        Ok(())
    } else {
        Err(OrdererError::NotFullyMonotonic(measure.name()))
    };
    let streamer = if measure.diminishing_returns() {
        Ok(())
    } else {
        Err(OrdererError::NoDiminishingReturns(measure.name()))
    };
    let merged = if measure.context_free() {
        Ok(())
    } else {
        Err(OrdererError::ContextDependent(measure.name()))
    };
    let (recommended, rationale) = if greedy.is_ok() {
        (
            Recommended::Greedy,
            "fully monotonic: Greedy finds each best plan by per-bucket argmax, \
             linear in the number of sources (§4)",
        )
    } else if streamer.is_ok() {
        (
            Recommended::Streamer,
            "diminishing returns holds: Streamer abstracts once and recycles \
             dominance relations across emissions (§5.2)",
        )
    } else {
        (
            Recommended::IDrips,
            "no structural property holds (e.g. caching): iDrips re-runs Drips \
             per emission and assumes nothing (§5.2)",
        )
    };
    AlgorithmAdvice {
        greedy,
        streamer,
        merged,
        recommended,
        rationale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpo_catalog::GeneratorConfig;
    use qpo_utility::{Combined, Coverage, FailureCost, FusionCost, LinearCost, MonetaryCost};

    fn inst() -> ProblemInstance {
        GeneratorConfig::new(3, 4).build()
    }

    #[test]
    fn monotone_measures_get_greedy() {
        let advice = advise(&inst(), &LinearCost);
        assert_eq!(advice.recommended, Recommended::Greedy);
        assert!(advice.greedy.is_ok() && advice.streamer.is_ok() && advice.merged.is_ok());
        assert!(advice.to_string().contains("recommended: greedy"));
    }

    #[test]
    fn coverage_gets_streamer() {
        let advice = advise(&inst(), &Coverage);
        assert_eq!(advice.recommended, Recommended::Streamer);
        assert!(advice.greedy.is_err());
        assert!(advice.merged.is_err(), "coverage is context-dependent");
        assert!(advice.to_string().contains("dominance relations"));
    }

    #[test]
    fn caching_measures_get_idrips() {
        for advice in [
            advise(&inst(), &FailureCost::with_caching()),
            advise(&inst(), &MonetaryCost::with_caching()),
        ] {
            assert_eq!(advice.recommended, Recommended::IDrips);
            assert!(advice.streamer.is_err());
            assert!(advice.to_string().contains("idrips"));
        }
    }

    #[test]
    fn fusion_cost_depends_on_alpha_uniformity() {
        // Generated instances have varying α → not fully monotonic, but
        // context-free → Streamer + merging both apply.
        let advice = advise(&inst(), &FusionCost);
        assert_eq!(advice.recommended, Recommended::Streamer);
        assert!(advice.merged.is_ok());
    }

    #[test]
    fn combined_measures_compose_advice() {
        let m = Combined::new(Coverage, 10.0, FailureCost::without_caching(), 1.0);
        let advice = advise(&inst(), &m);
        assert_eq!(advice.recommended, Recommended::Streamer);
        let m = Combined::new(Coverage, 10.0, FailureCost::with_caching(), 1.0);
        assert_eq!(advise(&inst(), &m).recommended, Recommended::IDrips);
    }

    #[test]
    fn recommended_display() {
        assert_eq!(Recommended::Greedy.to_string(), "greedy");
        assert_eq!(Recommended::Streamer.to_string(), "streamer");
        assert_eq!(Recommended::IDrips.to_string(), "idrips");
    }
}
