//! PI — the paper's reference baseline (§6): brute force over the full
//! plan space, made as strong as possible by exploiting plan independence.
//!
//! PI materializes every concrete plan once. Each round it recomputes only
//! the utilities invalidated by the previously emitted plan (those of plans
//! *not independent* of it), then emits the maximum. Its first round
//! therefore evaluates the whole plan space — exactly the cost the
//! abstraction algorithms avoid.

use crate::orderer::{OrderedPlan, PlanOrderer, PlanOutcome};
use qpo_catalog::ProblemInstance;
use qpo_utility::{ExecutionContext, UtilityMeasure};

/// The independence-aware brute-force orderer.
pub struct Pi<'a, M: UtilityMeasure + ?Sized> {
    inst: &'a ProblemInstance,
    measure: &'a M,
    ctx: ExecutionContext,
    /// `(plan, cached utility)`; `None` = needs recomputation.
    plans: Vec<(Vec<usize>, Option<f64>)>,
}

impl<'a, M: UtilityMeasure + ?Sized> Pi<'a, M> {
    /// Creates the orderer; the plan space is materialized eagerly (that is
    /// the point of the baseline).
    pub fn new(inst: &'a ProblemInstance, measure: &'a M) -> Self {
        Pi {
            inst,
            measure,
            ctx: ExecutionContext::new(),
            plans: inst.all_plans().into_iter().map(|p| (p, None)).collect(),
        }
    }

    /// Plans still available.
    pub fn remaining(&self) -> usize {
        self.plans.len()
    }
}

impl<M: UtilityMeasure + ?Sized> PlanOrderer for Pi<'_, M> {
    fn algorithm_name(&self) -> &'static str {
        "pi"
    }

    fn next_plan(&mut self) -> Option<OrderedPlan> {
        if self.plans.is_empty() {
            return None;
        }
        for (plan, utility) in &mut self.plans {
            if utility.is_none() {
                *utility = Some(self.measure.utility(self.inst, plan, &self.ctx));
            }
        }
        let best = self
            .plans
            .iter()
            .enumerate()
            .max_by(|(_, (pa, ua)), (_, (pb, ub))| {
                let ua = ua.expect("computed above");
                let ub = ub.expect("computed above");
                crate::utility_cmp(ua, ub).then_with(|| pb.cmp(pa)) // ties → smaller plan wins
            })
            .map(|(i, _)| i)
            .expect("non-empty plan list");
        let (plan, utility) = self.plans.swap_remove(best);
        let utility = utility.expect("computed above");
        // Invalidate only plans that depend on the emitted one.
        for (p, u) in &mut self.plans {
            if !self.measure.independent(self.inst, p, &plan) {
                *u = None;
            }
        }
        self.ctx.record(&plan);
        Some(OrderedPlan { plan, utility })
    }

    fn observe(&mut self, outcome: &PlanOutcome) {
        if outcome.is_failure() && self.ctx.retract(&outcome.plan) {
            // The retracted plan's operations are no longer in the context;
            // utilities that conditioned on them are stale.
            for (p, u) in &mut self.plans {
                if !self.measure.independent(self.inst, p, &outcome.plan) {
                    *u = None;
                }
            }
        }
    }
}

/// Naive brute force: recomputes *every* remaining utility each round.
/// Strictly dominated by [`Pi`]; kept as a sanity baseline and for the
/// ablation that isolates the value of independence information.
pub struct Naive<'a, M: UtilityMeasure + ?Sized> {
    inst: &'a ProblemInstance,
    measure: &'a M,
    ctx: ExecutionContext,
    plans: Vec<Vec<usize>>,
}

impl<'a, M: UtilityMeasure + ?Sized> Naive<'a, M> {
    /// Creates the orderer.
    pub fn new(inst: &'a ProblemInstance, measure: &'a M) -> Self {
        Naive {
            inst,
            measure,
            ctx: ExecutionContext::new(),
            plans: inst.all_plans(),
        }
    }
}

impl<M: UtilityMeasure + ?Sized> PlanOrderer for Naive<'_, M> {
    fn algorithm_name(&self) -> &'static str {
        "naive"
    }

    fn next_plan(&mut self) -> Option<OrderedPlan> {
        if self.plans.is_empty() {
            return None;
        }
        let (best, utility) = self
            .plans
            .iter()
            .enumerate()
            .map(|(i, p)| (i, self.measure.utility(self.inst, p, &self.ctx)))
            .max_by(|(ia, ua), (ib, ub)| {
                crate::utility_cmp(*ua, *ub).then_with(|| self.plans[*ib].cmp(&self.plans[*ia]))
            })
            .expect("non-empty plan list");
        let plan = self.plans.swap_remove(best);
        self.ctx.record(&plan);
        Some(OrderedPlan { plan, utility })
    }

    fn observe(&mut self, outcome: &PlanOutcome) {
        if outcome.is_failure() {
            self.ctx.retract(&outcome.plan);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orderer::verify_ordering;
    use qpo_catalog::{Extent, SourceStats};
    use qpo_utility::{CountingMeasure, Coverage, FailureCost, LinearCost};

    fn coverage_inst() -> ProblemInstance {
        let src = |s, l| SourceStats::new().with_extent(Extent::new(s, l));
        ProblemInstance::new(
            1.0,
            vec![20, 20],
            vec![
                vec![src(0, 8), src(5, 8), src(14, 6)],
                vec![src(0, 10), src(9, 10), src(3, 4)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn pi_orders_coverage_exactly() {
        let inst = coverage_inst();
        let mut pi = Pi::new(&inst, &Coverage);
        assert_eq!(pi.remaining(), 9);
        let ordering = pi.order_k(9);
        assert_eq!(ordering.len(), 9);
        verify_ordering(&inst, &Coverage, &ordering, 1e-12).unwrap();
        assert_eq!(pi.next_plan(), None);
        // Utilities are non-increasing? Not guaranteed in general for
        // context-dependent measures, but holds under diminishing returns.
        for w in ordering.windows(2) {
            assert!(w[0].utility >= w[1].utility - 1e-12);
        }
    }

    #[test]
    fn naive_matches_pi_utility_sequence() {
        let inst = coverage_inst();
        let pi: Vec<f64> = Pi::new(&inst, &Coverage)
            .order_k(9)
            .into_iter()
            .map(|o| o.utility)
            .collect();
        let naive: Vec<f64> = Naive::new(&inst, &Coverage)
            .order_k(9)
            .into_iter()
            .map(|o| o.utility)
            .collect();
        assert_eq!(pi, naive);
    }

    #[test]
    fn pi_recomputes_fewer_utilities_than_naive() {
        let inst = coverage_inst();
        let m_pi = CountingMeasure::new(Coverage);
        Pi::new(&inst, &m_pi).order_k(9);
        let m_naive = CountingMeasure::new(Coverage);
        Naive::new(&inst, &m_naive).order_k(9);
        assert!(
            m_pi.concrete_evals() < m_naive.concrete_evals(),
            "PI {} vs Naive {}",
            m_pi.concrete_evals(),
            m_naive.concrete_evals()
        );
    }

    #[test]
    fn pi_on_context_free_measure_evaluates_each_plan_once() {
        let inst = coverage_inst();
        let m = CountingMeasure::new(LinearCost);
        Pi::new(&inst, &m).order_k(9);
        assert_eq!(
            m.concrete_evals(),
            9,
            "full independence → no recomputation"
        );
    }

    #[test]
    fn pi_handles_caching_cost_dependence() {
        let inst = coverage_inst();
        let m = FailureCost::with_caching();
        let ordering = Pi::new(&inst, &m).order_k(9);
        verify_ordering(&inst, &m, &ordering, 1e-9).unwrap();
    }

    #[test]
    fn naive_verifies_on_caching_cost() {
        let inst = coverage_inst();
        let m = FailureCost::with_caching();
        let ordering = Naive::new(&inst, &m).order_k(9);
        verify_ordering(&inst, &m, &ordering, 1e-9).unwrap();
    }

    #[test]
    fn observing_a_failure_reconditions_later_pops() {
        // Under the caching measure a failed plan must stop contributing
        // cached operations: after the retract, the next pop's utility is
        // the argmax over the remaining plans in an *empty* context.
        let inst = coverage_inst();
        let m = FailureCost::with_caching();
        let mut pi = Pi::new(&inst, &m);
        let first = pi.next_plan().unwrap();
        pi.observe(&crate::orderer::PlanOutcome::failed(&first.plan));
        let second = pi.next_plan().unwrap();
        let empty = ExecutionContext::new();
        let best_in_empty = inst
            .all_plans()
            .into_iter()
            .filter(|p| *p != first.plan)
            .map(|p| m.utility(&inst, &p, &empty))
            .fold(f64::MIN, f64::max);
        assert!(
            (second.utility - best_in_empty).abs() < 1e-12,
            "post-retract pop {} vs empty-context argmax {}",
            second.utility,
            best_in_empty
        );
    }

    #[test]
    fn pi_and_naive_agree_under_injected_failures() {
        let inst = coverage_inst();
        let m = FailureCost::with_caching();
        let mut pi = Pi::new(&inst, &m);
        let mut naive = Naive::new(&inst, &m);
        for step in 0..9 {
            let a = pi.next_plan().unwrap();
            let b = naive.next_plan().unwrap();
            assert_eq!(a.plan, b.plan, "step {step}");
            assert!((a.utility - b.utility).abs() < 1e-12, "step {step}");
            // Fail every other plan and tell both orderers.
            if step % 2 == 0 {
                let outcome = crate::orderer::PlanOutcome::failed(&a.plan);
                pi.observe(&outcome);
                naive.observe(&outcome);
            } else {
                let outcome = crate::orderer::PlanOutcome::succeeded(&a.plan, 3);
                pi.observe(&outcome);
                naive.observe(&outcome);
            }
        }
    }

    #[test]
    fn observing_success_changes_nothing() {
        let inst = coverage_inst();
        let m = FailureCost::with_caching();
        let mut with_feedback = Pi::new(&inst, &m);
        let mut without = Pi::new(&inst, &m);
        for _ in 0..9 {
            let a = with_feedback.next_plan().unwrap();
            with_feedback.observe(&crate::orderer::PlanOutcome::succeeded(&a.plan, 1));
            let b = without.next_plan().unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn names() {
        let inst = coverage_inst();
        assert_eq!(Pi::new(&inst, &Coverage).algorithm_name(), "pi");
        assert_eq!(Naive::new(&inst, &Coverage).algorithm_name(), "naive");
    }
}
