//! The Greedy algorithm (§4): plan ordering for fully monotonic measures.
//!
//! Full monotonicity gives each bucket a total source order, so the best
//! plan of a plan space is found by picking the best source per bucket —
//! no plan enumeration at all. After emitting a plan, Greedy removes it by
//! recursive splitting (Figure 2), keeping a frontier of at most `O(k·n)`
//! plan spaces whose best plans are re-compared each round. The paper
//! proves correctness and an `O(m·n²·k²)` bound.

use crate::orderer::{OrderedPlan, OrdererError, PlanOrderer};
use crate::planspace::{full_space, remove_plan, PlanSpace};
use qpo_catalog::{ProblemInstance, SourceRef};
use qpo_utility::{ExecutionContext, UtilityMeasure};

/// Greedy plan orderer. Construction fails if the measure is not fully
/// monotonic.
pub struct Greedy<'a, M: UtilityMeasure + ?Sized> {
    inst: &'a ProblemInstance,
    measure: &'a M,
    ctx: ExecutionContext,
    spaces: Vec<PlanSpace>,
    emitted: usize,
}

impl<'a, M: UtilityMeasure + ?Sized> Greedy<'a, M> {
    /// Creates the orderer over the instance's full plan space.
    pub fn new(inst: &'a ProblemInstance, measure: &'a M) -> Result<Self, OrdererError> {
        if !measure.is_fully_monotonic(inst) {
            return Err(OrdererError::NotFullyMonotonic(measure.name()));
        }
        Ok(Greedy {
            inst,
            measure,
            ctx: ExecutionContext::new(),
            spaces: vec![full_space(inst)],
            emitted: 0,
        })
    }

    /// Number of plan spaces currently on the frontier.
    pub fn frontier_size(&self) -> usize {
        self.spaces.len()
    }

    /// Number of plans emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Best plan of a space: the most-preferred source per bucket
    /// (monotonicity makes this exact). Ties break to the smallest index
    /// for determinism.
    fn best_of_space(&self, space: &PlanSpace) -> Vec<usize> {
        space
            .iter()
            .enumerate()
            .map(|(b, cands)| {
                *cands
                    .iter()
                    .max_by(|&&x, &&y| {
                        let kx = self
                            .measure
                            .source_preference(self.inst, SourceRef::new(b, x));
                        let ky = self
                            .measure
                            .source_preference(self.inst, SourceRef::new(b, y));
                        crate::utility_cmp(kx, ky).then(y.cmp(&x)) // prefer the smaller index on ties
                    })
                    .expect("plan-space buckets are non-empty")
            })
            .collect()
    }
}

impl<M: UtilityMeasure + ?Sized> PlanOrderer for Greedy<'_, M> {
    fn algorithm_name(&self) -> &'static str {
        "greedy"
    }

    fn next_plan(&mut self) -> Option<OrderedPlan> {
        if self.spaces.is_empty() {
            return None;
        }
        // Compare the best plan of every frontier space under the current
        // context; monotonicity fixes each space's champion, but champions
        // across spaces must be compared by actual utility.
        let mut best: Option<(usize, Vec<usize>, f64)> = None;
        for (idx, space) in self.spaces.iter().enumerate() {
            let plan = self.best_of_space(space);
            let utility = self.measure.utility(self.inst, &plan, &self.ctx);
            let better = match &best {
                None => true,
                Some((_, bplan, bu)) => utility > *bu || (utility == *bu && plan < *bplan),
            };
            if better {
                best = Some((idx, plan, utility));
            }
        }
        let (idx, plan, utility) = best.expect("non-empty frontier");
        let space = self.spaces.swap_remove(idx);
        self.spaces.extend(remove_plan(&space, &plan));
        self.ctx.record(&plan);
        self.emitted += 1;
        Some(OrderedPlan { plan, utility })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orderer::verify_ordering;
    use qpo_catalog::{Extent, SourceStats};
    use qpo_utility::{Coverage, FusionCost, LinearCost};

    fn inst(costs: &[&[f64]]) -> ProblemInstance {
        let buckets = costs
            .iter()
            .map(|bucket| {
                bucket
                    .iter()
                    .map(|&c| {
                        SourceStats::new()
                            .with_extent(Extent::new(0, 10))
                            .with_tuples(c)
                            .with_transmission_cost(1.0)
                    })
                    .collect()
            })
            .collect();
        ProblemInstance::new(0.0, vec![100; costs.len()], buckets).unwrap()
    }

    #[test]
    fn rejects_non_monotonic_measures() {
        let i = inst(&[&[1.0, 2.0]]);
        assert!(matches!(
            Greedy::new(&i, &Coverage).err().unwrap(),
            OrdererError::NotFullyMonotonic("coverage")
        ));
    }

    #[test]
    fn emits_exact_ordering_for_linear_cost() {
        let i = inst(&[&[3.0, 1.0, 2.0], &[5.0, 4.0]]);
        let mut g = Greedy::new(&i, &LinearCost).unwrap();
        let ordering = g.order_k(6);
        assert_eq!(ordering.len(), 6, "all plans emitted");
        verify_ordering(&i, &LinearCost, &ordering, 1e-9).unwrap();
        // First plan combines the cheapest source of each bucket.
        assert_eq!(ordering[0].plan, vec![1, 1]);
        assert_eq!(ordering[0].utility, -(1.0 + 4.0));
        assert_eq!(g.next_plan(), None, "space exhausted");
        assert_eq!(g.emitted(), 6);
    }

    #[test]
    fn works_for_uniform_alpha_fusion_cost() {
        let i = inst(&[&[5.0, 2.0, 9.0], &[7.0, 3.0, 4.0], &[6.0, 8.0]]);
        assert!(FusionCost.is_fully_monotonic(&i));
        let mut g = Greedy::new(&i, &FusionCost).unwrap();
        let ordering = g.order_k(18);
        assert_eq!(ordering.len(), 18);
        verify_ordering(&i, &FusionCost, &ordering, 1e-9).unwrap();
    }

    #[test]
    fn single_bucket_degenerates_to_sorting() {
        let i = inst(&[&[4.0, 1.0, 3.0, 2.0]]);
        let mut g = Greedy::new(&i, &LinearCost).unwrap();
        let plans: Vec<Vec<usize>> = g.order_k(10).into_iter().map(|o| o.plan).collect();
        assert_eq!(plans, vec![vec![1], vec![3], vec![2], vec![0]]);
    }

    #[test]
    fn tie_breaks_to_lexicographically_smallest() {
        let i = inst(&[&[1.0, 1.0], &[2.0, 2.0]]);
        let mut g = Greedy::new(&i, &LinearCost).unwrap();
        let plans: Vec<Vec<usize>> = g.order_k(4).into_iter().map(|o| o.plan).collect();
        assert_eq!(plans, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn frontier_stays_small() {
        let i = inst(&[&[1.0, 2.0, 3.0, 4.0, 5.0], &[1.0, 2.0, 3.0, 4.0, 5.0]]);
        let mut g = Greedy::new(&i, &LinearCost).unwrap();
        for _ in 0..10 {
            g.next_plan().unwrap();
            // After k removals the frontier holds at most k·n spaces.
            assert!(g.frontier_size() <= g.emitted() * i.query_len() + 1);
        }
    }
}
