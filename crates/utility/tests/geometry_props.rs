//! Property tests for the box-geometry engine that exact coverage rests on.

use proptest::prelude::*;
use qpo_catalog::Extent;
use qpo_utility::{residual_volume, union_volume, BoxN};

fn arb_box(dims: usize) -> impl Strategy<Value = BoxN> {
    proptest::collection::vec((0u64..8, 0u64..6), dims)
        .prop_map(|es| BoxN::new(es.into_iter().map(|(s, l)| Extent::new(s, l)).collect()))
}

/// Grid brute force over the (small) coordinate space.
fn grid_residual(target: &BoxN, others: &[BoxN]) -> u128 {
    fn inside(b: &BoxN, p: &[u64]) -> bool {
        b.extents().iter().zip(p).all(|(e, &v)| e.contains(v))
    }
    let dims = target.dims();
    let mut count = 0u128;
    let mut point = vec![0u64; dims];
    'outer: loop {
        if inside(target, &point) && !others.iter().any(|o| inside(o, &point)) {
            count += 1;
        }
        for coord in point.iter_mut() {
            *coord += 1;
            if *coord < 16 {
                continue 'outer;
            }
            *coord = 0;
        }
        break;
    }
    count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn residual_matches_grid_2d(target in arb_box(2),
                                others in proptest::collection::vec(arb_box(2), 0..5)) {
        prop_assert_eq!(residual_volume(&target, &others), grid_residual(&target, &others));
    }

    #[test]
    fn residual_matches_grid_3d(target in arb_box(3),
                                others in proptest::collection::vec(arb_box(3), 0..4)) {
        prop_assert_eq!(residual_volume(&target, &others), grid_residual(&target, &others));
    }

    #[test]
    fn residual_is_monotone_in_subtrahends(target in arb_box(2),
                                           others in proptest::collection::vec(arb_box(2), 1..5)) {
        let mut prev = residual_volume(&target, &[]);
        prop_assert_eq!(prev, target.volume());
        for i in 1..=others.len() {
            let now = residual_volume(&target, &others[..i]);
            prop_assert!(now <= prev, "residual grew when subtracting more");
            prev = now;
        }
    }

    #[test]
    fn residual_is_order_insensitive(target in arb_box(2),
                                     others in proptest::collection::vec(arb_box(2), 0..5)) {
        let forward = residual_volume(&target, &others);
        let mut reversed = others.clone();
        reversed.reverse();
        prop_assert_eq!(forward, residual_volume(&target, &reversed));
    }

    #[test]
    fn union_bounds(boxes in proptest::collection::vec(arb_box(2), 0..5)) {
        let u = union_volume(&boxes);
        let sum: u128 = boxes.iter().map(BoxN::volume).sum();
        let max = boxes.iter().map(BoxN::volume).max().unwrap_or(0);
        prop_assert!(u <= sum, "union exceeds sum");
        prop_assert!(u >= max, "union below largest member");
    }

    #[test]
    fn union_is_permutation_invariant(boxes in proptest::collection::vec(arb_box(3), 0..5)) {
        let u = union_volume(&boxes);
        let mut shuffled = boxes.clone();
        shuffled.rotate_left(boxes.len() / 2);
        prop_assert_eq!(u, union_volume(&shuffled));
    }

    #[test]
    fn subtract_partitions_volume(a in arb_box(3), b in arb_box(3)) {
        let frags = a.subtract(&b);
        let frag_total: u128 = frags.iter().map(BoxN::volume).sum();
        prop_assert_eq!(frag_total + a.intersect(&b).volume(), a.volume());
        for (i, f) in frags.iter().enumerate() {
            prop_assert!(!f.is_empty(), "empty fragment emitted");
            prop_assert!(!f.overlaps(&b), "fragment overlaps subtrahend");
            for g in &frags[i + 1..] {
                prop_assert!(!f.overlaps(g), "fragments overlap each other");
            }
        }
    }
}
