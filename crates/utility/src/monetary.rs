//! Average monetary cost per output tuple (§6's fourth measure):
//! `u(p) = −Cost(p) / NumOutputTuples(p)`, where `Cost` charges each
//! source's per-tuple fee on the items it ships (computed over the eq. (2)
//! bound-parameter chain) and `NumOutputTuples` is the chain's final result
//! size, as in \[23\] (Yerneni et al., EDBT '98).

use crate::context::ExecutionContext;
use crate::measure::UtilityMeasure;
use qpo_catalog::ProblemInstance;
use qpo_interval::Interval;

/// The average-monetary-cost-per-tuple measure, with optional caching of
/// source operations (a cached operation incurs no fee).
#[derive(Debug, Clone, Copy)]
pub struct MonetaryCost {
    caching: bool,
}

impl MonetaryCost {
    /// No-caching variant: context-free, hence fully plan-independent and
    /// (trivially) diminishing-returns; Streamer applies.
    pub fn without_caching() -> Self {
        MonetaryCost { caching: false }
    }

    /// Caching variant: fees are waived for cached operations, so utilities
    /// grow as caches fill — no diminishing returns.
    pub fn with_caching() -> Self {
        MonetaryCost { caching: true }
    }

    /// Whether this variant models caching.
    pub fn caching(&self) -> bool {
        self.caching
    }

    /// Returns `(fee interval, output-tuples interval)` for the candidate
    /// product under `ctx`.
    fn fee_and_output(
        &self,
        inst: &ProblemInstance,
        candidates: &[Vec<usize>],
        ctx: &ExecutionContext,
    ) -> (Interval, Interval) {
        let mut fee = Interval::ZERO;
        let mut r_prev: Option<Interval> = None;
        for (b, cands) in candidates.iter().enumerate() {
            let universe = inst.universes[b] as f64;
            // Fee term per candidate is affine in the incoming result size
            // (constant for the first bucket); hull over candidates at the
            // extremes of r_prev, exactly as the cost chain does.
            let mut lo = f64::MAX;
            let mut hi = f64::MIN;
            let mut n_lo = f64::MAX;
            let mut n_hi = f64::MIN;
            for &i in cands {
                let s = &inst.buckets[b][i];
                let waived = self.caching && ctx.is_cached(b, i);
                let (t_lo, t_hi) = match r_prev {
                    None => {
                        let t = if waived {
                            0.0
                        } else {
                            s.fee_per_tuple * s.tuples
                        };
                        (t, t)
                    }
                    Some(r) => {
                        let slope = if waived {
                            0.0
                        } else {
                            s.fee_per_tuple * s.tuples / universe
                        };
                        (slope * r.lo(), slope * r.hi())
                    }
                };
                lo = lo.min(t_lo);
                hi = hi.max(t_hi);
                n_lo = n_lo.min(s.tuples);
                n_hi = n_hi.max(s.tuples);
            }
            fee = fee + Interval::new(lo, hi);
            r_prev = Some(match r_prev {
                None => Interval::new(n_lo, n_hi),
                Some(r) => Interval::new(r.lo() * n_lo / universe, r.hi() * n_hi / universe),
            });
        }
        let out = r_prev.expect("at least one bucket");
        (fee, out)
    }
}

impl UtilityMeasure for MonetaryCost {
    fn name(&self) -> &'static str {
        if self.caching {
            "monetary+cache"
        } else {
            "monetary"
        }
    }

    fn utility(&self, inst: &ProblemInstance, plan: &[usize], ctx: &ExecutionContext) -> f64 {
        let singles: Vec<Vec<usize>> = plan.iter().map(|&i| vec![i]).collect();
        let (fee, out) = self.fee_and_output(inst, &singles, ctx);
        debug_assert!(fee.is_point() && out.is_point());
        assert!(
            out.lo() > 0.0,
            "plan produces no tuples; fee/tuple undefined"
        );
        -fee.lo() / out.lo()
    }

    fn utility_interval(
        &self,
        inst: &ProblemInstance,
        candidates: &[Vec<usize>],
        ctx: &ExecutionContext,
    ) -> Interval {
        let (fee, out) = self.fee_and_output(inst, candidates, ctx);
        assert!(
            out.lo() > 0.0,
            "candidate plans may produce no tuples; fee/tuple undefined"
        );
        -(fee / out)
    }

    fn diminishing_returns(&self) -> bool {
        !self.caching
    }

    fn context_free(&self) -> bool {
        !self.caching
    }

    fn monotone_subgoals(&self, inst: &ProblemInstance) -> Vec<bool> {
        // A ratio of two source-dependent quantities: replacing a source
        // can raise the numerator and denominator together, so no
        // per-bucket total order exists in general.
        vec![false; inst.query_len()]
    }

    fn independent(&self, _inst: &ProblemInstance, p: &[usize], q: &[usize]) -> bool {
        if !self.caching {
            return true;
        }
        p.iter().zip(q).all(|(a, b)| a != b)
    }

    fn all_independent(
        &self,
        _inst: &ProblemInstance,
        candidates: &[Vec<usize>],
        d: &[usize],
    ) -> bool {
        if !self.caching {
            return true;
        }
        candidates
            .iter()
            .zip(d)
            .all(|(cands, &di)| !cands.contains(&di))
    }

    fn exists_independent(
        &self,
        _inst: &ProblemInstance,
        candidates: &[Vec<usize>],
        executed: &[Vec<usize>],
    ) -> bool {
        if !self.caching {
            return true;
        }
        candidates
            .iter()
            .enumerate()
            .all(|(b, cands)| cands.iter().any(|&i| executed.iter().all(|e| e[b] != i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpo_catalog::{Extent, SourceStats};

    fn inst() -> ProblemInstance {
        let src = |n: f64, fee: f64| {
            SourceStats::new()
                .with_extent(Extent::new(0, 10))
                .with_tuples(n)
                .with_fee(fee)
        };
        ProblemInstance::new(
            1.0,
            vec![100, 100],
            vec![
                vec![src(10.0, 0.5), src(40.0, 0.1)],
                vec![src(50.0, 0.2), src(25.0, 0.4)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn hand_computed_ratio() {
        let inst = inst();
        let ctx = ExecutionContext::new();
        // plan [0,0]: fee = 0.5·10 + 0.2·(10·50/100) = 5 + 1 = 6; out = 5.
        assert_eq!(
            MonetaryCost::without_caching().utility(&inst, &[0, 0], &ctx),
            -1.2
        );
        // plan [1,0]: fee = 0.1·40 + 0.2·(40·50/100) = 4 + 4 = 8; out = 20.
        assert_eq!(
            MonetaryCost::without_caching().utility(&inst, &[1, 0], &ctx),
            -0.4
        );
    }

    #[test]
    fn interval_contains_all_members() {
        let inst = inst();
        let ctx = ExecutionContext::new();
        let m = MonetaryCost::without_caching();
        let cands = vec![vec![0, 1], vec![0, 1]];
        let iv = m.utility_interval(&inst, &cands, &ctx);
        for p in inst.all_plans() {
            let u = m.utility(&inst, &p, &ctx);
            assert!(
                iv.lo() - 1e-12 <= u && u <= iv.hi() + 1e-12,
                "utility {u} of {p:?} outside {iv}"
            );
        }
        assert!(m
            .utility_interval(&inst, &[vec![1], vec![1]], &ctx)
            .is_point());
    }

    #[test]
    fn caching_waives_fees() {
        let inst = inst();
        let m = MonetaryCost::with_caching();
        let mut ctx = ExecutionContext::new();
        let before = m.utility(&inst, &[0, 0], &ctx);
        ctx.record(&[0, 1]); // caches (0,0) and (1,1)
        let after = m.utility(&inst, &[0, 0], &ctx);
        // fee drops from 6 to 1 (first term waived); out stays 5.
        assert_eq!(after, -0.2);
        assert!(after > before);
        assert!(!m.diminishing_returns());
        assert!(MonetaryCost::without_caching().diminishing_returns());
    }

    #[test]
    fn caching_interval_soundness_with_context() {
        let inst = inst();
        let m = MonetaryCost::with_caching();
        let mut ctx = ExecutionContext::new();
        ctx.record(&[1, 0]);
        let cands = vec![vec![0, 1], vec![0, 1]];
        let iv = m.utility_interval(&inst, &cands, &ctx);
        for p in inst.all_plans() {
            let u = m.utility(&inst, &p, &ctx);
            assert!(
                iv.lo() - 1e-12 <= u && u <= iv.hi() + 1e-12,
                "utility {u} of {p:?} outside {iv}"
            );
        }
    }

    #[test]
    fn independence_mirrors_cost_caching_semantics() {
        let inst = inst();
        let nc = MonetaryCost::without_caching();
        assert!(nc.independent(&inst, &[0, 0], &[0, 0]));
        assert!(nc.exists_independent(&inst, &[vec![0, 1], vec![0]], &[vec![0, 0]]));
        let c = MonetaryCost::with_caching();
        assert!(!c.independent(&inst, &[0, 0], &[0, 1]));
        assert!(c.independent(&inst, &[0, 0], &[1, 1]));
        assert!(!c.all_independent(&inst, &[vec![0, 1], vec![0]], &[1, 1]));
        assert!(c.all_independent(&inst, &[vec![0], vec![0]], &[1, 1]));
    }

    #[test]
    fn names_and_flags() {
        assert_eq!(MonetaryCost::without_caching().name(), "monetary");
        assert_eq!(MonetaryCost::with_caching().name(), "monetary+cache");
        assert!(!MonetaryCost::without_caching().is_fully_monotonic(&inst()));
        assert!(MonetaryCost::with_caching().caching());
    }
}
