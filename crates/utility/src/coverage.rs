//! Plan coverage (§2, Example 2.1): the probability that a random answer
//! tuple is returned by this plan and by no previously executed plan.
//!
//! Under the extent/box model (see [`crate::geometry`]): the coverage of
//! plan `p` given executed plans `E` is
//! `vol(box_p \ ∪_{e∈E} box_e) / Π_b N_b`. Coverage exhibits
//! *utility-diminishing returns* (executing more plans can only shrink what
//! is new) and plans with disjoint boxes are *independent* — both exactly
//! the properties §3 of the paper derives for its coverage measure.

use crate::context::ExecutionContext;
use crate::geometry::{residual_volume, BoxN};
use crate::measure::{as_concrete, UtilityMeasure};
use qpo_catalog::{Extent, ProblemInstance};
use qpo_interval::Interval;

/// The plan-coverage utility measure.
#[derive(Debug, Clone, Copy, Default)]
pub struct Coverage;

impl Coverage {
    /// Creates the measure.
    pub fn new() -> Self {
        Coverage
    }

    fn extent(inst: &ProblemInstance, bucket: usize, index: usize) -> Extent {
        inst.buckets[bucket][index].extent
    }

    /// The product box covered by a concrete plan.
    pub fn plan_box(inst: &ProblemInstance, plan: &[usize]) -> BoxN {
        BoxN::new(
            plan.iter()
                .enumerate()
                .map(|(b, &i)| Self::extent(inst, b, i))
                .collect(),
        )
    }

    fn total_volume(inst: &ProblemInstance) -> f64 {
        inst.universes.iter().map(|&u| u as f64).product()
    }
}

impl UtilityMeasure for Coverage {
    fn name(&self) -> &'static str {
        "coverage"
    }

    fn utility(&self, inst: &ProblemInstance, plan: &[usize], ctx: &ExecutionContext) -> f64 {
        let target = Self::plan_box(inst, plan);
        let executed: Vec<BoxN> = ctx
            .executed()
            .iter()
            .map(|e| Self::plan_box(inst, e))
            .collect();
        residual_volume(&target, &executed) as f64 / Self::total_volume(inst)
    }

    /// Sound interval via per-axis candidate ranges and Bonferroni bounds:
    /// for any member plan `s`,
    /// `max_e vol(s∩e) ≤ vol(s ∩ ∪E) ≤ Σ_e vol(s∩e)`, so
    /// `coverage(s) ∈ [vol_lo(p) − Σ_e hi(p∩e),  vol_hi(p) − max_e lo(p∩e)]`
    /// (clamped to non-negative, normalized by the universe volume).
    fn utility_interval(
        &self,
        inst: &ProblemInstance,
        candidates: &[Vec<usize>],
        ctx: &ExecutionContext,
    ) -> Interval {
        if let Some(plan) = as_concrete(candidates) {
            return Interval::point(self.utility(inst, &plan, ctx));
        }
        // Normalized per-axis fractions keep products well-conditioned.
        let mut vol = Interval::ONE;
        for (b, cands) in candidates.iter().enumerate() {
            let u = inst.universes[b] as f64;
            let lens = cands
                .iter()
                .map(|&i| Self::extent(inst, b, i).len as f64 / u);
            let lo = lens.clone().fold(f64::MAX, f64::min);
            let hi = lens.fold(f64::MIN, f64::max);
            vol = vol * Interval::new(lo, hi);
        }
        let mut overlap_hi_sum = 0.0;
        let mut overlap_lo_max = 0.0f64;
        for e in ctx.executed() {
            let mut ov = Interval::ONE;
            for (b, cands) in candidates.iter().enumerate() {
                let u = inst.universes[b] as f64;
                let e_ext = Self::extent(inst, b, e[b]);
                let fracs = cands
                    .iter()
                    .map(|&i| Self::extent(inst, b, i).intersect(e_ext).len as f64 / u);
                let lo = fracs.clone().fold(f64::MAX, f64::min);
                let hi = fracs.fold(f64::MIN, f64::max);
                ov = ov * Interval::new(lo, hi);
            }
            overlap_hi_sum += ov.hi();
            overlap_lo_max = overlap_lo_max.max(ov.lo());
        }
        let lo = (vol.lo() - overlap_hi_sum).max(0.0);
        let hi = (vol.hi() - overlap_lo_max).max(lo);
        Interval::new(lo, hi)
    }

    fn diminishing_returns(&self) -> bool {
        true
    }

    fn monotone_subgoals(&self, inst: &ProblemInstance) -> Vec<bool> {
        // Coverage depends on overlap structure, not a per-bucket total
        // order: replacing a source can help in one plan and hurt in
        // another. Conservatively: no subgoal is monotonic.
        vec![false; inst.query_len()]
    }

    /// Exact under the box model: disjoint boxes cannot affect each other's
    /// residual volume.
    fn independent(&self, inst: &ProblemInstance, p: &[usize], q: &[usize]) -> bool {
        p.iter()
            .zip(q)
            .enumerate()
            .any(|(b, (&i, &j))| !Self::extent(inst, b, i).overlaps(Self::extent(inst, b, j)))
    }

    /// Every member of the abstract plan is independent of `d` if on some
    /// axis *all* candidates are disjoint from `d`'s extent.
    fn all_independent(
        &self,
        inst: &ProblemInstance,
        candidates: &[Vec<usize>],
        d: &[usize],
    ) -> bool {
        candidates.iter().enumerate().any(|(b, cands)| {
            let d_ext = Self::extent(inst, b, d[b]);
            cands
                .iter()
                .all(|&i| !Self::extent(inst, b, i).overlaps(d_ext))
        })
    }

    /// Greedy per-axis witness construction: choose on each axis the
    /// candidate disjoint from the most remaining executed plans; the
    /// resulting member plan is independent of every executed plan it
    /// "kills" on some axis. Sound and incomplete, as §3 allows.
    fn exists_independent(
        &self,
        inst: &ProblemInstance,
        candidates: &[Vec<usize>],
        executed: &[Vec<usize>],
    ) -> bool {
        let mut remaining: Vec<&Vec<usize>> = executed.iter().collect();
        if remaining.is_empty() {
            return true;
        }
        for (b, cands) in candidates.iter().enumerate() {
            let kills = |i: usize, e: &Vec<usize>| {
                !Self::extent(inst, b, i).overlaps(Self::extent(inst, b, e[b]))
            };
            let best = cands
                .iter()
                .max_by_key(|&&i| remaining.iter().filter(|e| kills(i, e)).count());
            if let Some(&i) = best {
                remaining.retain(|e| !kills(i, e));
                if remaining.is_empty() {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpo_catalog::SourceStats;

    /// 2 buckets over universes of 10; extents chosen for hand-computable
    /// volumes.
    fn inst() -> ProblemInstance {
        let src = |s, l| SourceStats::new().with_extent(Extent::new(s, l));
        ProblemInstance::new(
            0.0,
            vec![10, 10],
            vec![
                vec![src(0, 4), src(2, 4), src(8, 2)],
                vec![src(0, 5), src(5, 5)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn first_plan_coverage_is_box_volume() {
        let inst = inst();
        let ctx = ExecutionContext::new();
        // box = [0,4) x [0,5): 20 cells of 100.
        assert_eq!(Coverage.utility(&inst, &[0, 0], &ctx), 0.20);
        assert_eq!(Coverage.utility(&inst, &[2, 1], &ctx), 0.10);
    }

    #[test]
    fn coverage_shrinks_after_overlapping_execution() {
        let inst = inst();
        let mut ctx = ExecutionContext::new();
        ctx.record(&[0, 0]);
        // [2,6) x [0,5) minus [0,4) x [0,5): remaining [4,6) x [0,5) = 10.
        assert_eq!(Coverage.utility(&inst, &[1, 0], &ctx), 0.10);
        // A disjoint plan is unaffected.
        assert_eq!(Coverage.utility(&inst, &[2, 1], &ctx), 0.10);
        // Executing the same plan again yields zero new coverage.
        assert_eq!(Coverage.utility(&inst, &[0, 0], &ctx), 0.0);
    }

    #[test]
    fn diminishing_returns_holds_empirically() {
        let inst = inst();
        let plan = [1, 0];
        let mut ctx = ExecutionContext::new();
        let mut prev = Coverage.utility(&inst, &plan, &ctx);
        for e in [[0, 0], [2, 1], [0, 1]] {
            ctx.record(&e);
            let now = Coverage.utility(&inst, &plan, &ctx);
            assert!(now <= prev, "coverage increased after executing {e:?}");
            prev = now;
        }
        assert!(Coverage.diminishing_returns());
    }

    #[test]
    fn independence_is_exact_for_disjoint_boxes() {
        let inst = inst();
        // axis 0: [0,4) vs [8,10) disjoint → independent.
        assert!(Coverage.independent(&inst, &[0, 0], &[2, 0]));
        // overlapping on both axes → dependent.
        assert!(!Coverage.independent(&inst, &[0, 0], &[1, 0]));
        // disjoint on axis 1 → independent.
        assert!(Coverage.independent(&inst, &[0, 0], &[1, 1]));
    }

    #[test]
    fn interval_is_point_for_concrete() {
        let inst = inst();
        let mut ctx = ExecutionContext::new();
        ctx.record(&[0, 0]);
        ctx.record(&[2, 1]);
        let iv = Coverage.utility_interval(&inst, &[vec![1], vec![0]], &ctx);
        assert!(iv.is_point());
        assert_eq!(iv.lo(), Coverage.utility(&inst, &[1, 0], &ctx));
    }

    #[test]
    fn interval_contains_all_members_under_context() {
        let inst = inst();
        let mut ctx = ExecutionContext::new();
        for e in [[0usize, 0usize], [1, 1]] {
            ctx.record(&e);
        }
        let cands = vec![vec![0, 1, 2], vec![0, 1]];
        let iv = Coverage.utility_interval(&inst, &cands, &ctx);
        for &i in &cands[0] {
            for &j in &cands[1] {
                let u = Coverage.utility(&inst, &[i, j], &ctx);
                assert!(
                    iv.lo() <= u + 1e-12 && u <= iv.hi() + 1e-12,
                    "utility {u} of [{i},{j}] outside {iv}"
                );
            }
        }
    }

    #[test]
    fn all_independent_needs_a_fully_disjoint_axis() {
        let inst = inst();
        // Candidates {0,1} on axis 0 both overlap d=[1,0]'s extent [2,6).
        assert!(!Coverage.all_independent(&inst, &[vec![0, 1], vec![0]], &[1, 0]));
        // But axis 1 candidate {0}=[0,5) is disjoint from d=[*,1]'s [5,10).
        assert!(Coverage.all_independent(&inst, &[vec![0, 1], vec![0]], &[1, 1]));
    }

    #[test]
    fn exists_independent_finds_witnesses_across_axes() {
        let inst = inst();
        // Executed: e1=[0,0] and e2=[0,1]. Candidate set: axis0 {2} kills
        // both on axis 0 (extent [8,10) disjoint from [0,4)).
        assert!(Coverage.exists_independent(
            &inst,
            &[vec![2], vec![0, 1]],
            &[vec![0, 0], vec![0, 1]]
        ));
        // Candidates {0,1} on axis 0 overlap e=[1,*]; axis 1 {0} vs e_1=0
        // also overlaps → no witness.
        assert!(!Coverage.exists_independent(&inst, &[vec![0, 1], vec![0]], &[vec![1, 0]]));
        // Empty executed set: trivially true.
        assert!(Coverage.exists_independent(&inst, &[vec![0, 1], vec![0]], &[]));
    }

    #[test]
    fn not_monotonic() {
        let inst = inst();
        assert!(!Coverage.is_fully_monotonic(&inst));
    }
}
