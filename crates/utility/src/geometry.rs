//! Axis-aligned box geometry over source extents.
//!
//! A concrete plan covers the product box of its sources' extents; the
//! coverage of a plan given executed plans `E` is the volume of its box
//! minus the volume already covered: `vol(box_p \ ∪_{e∈E} box_e)`. We
//! compute this exactly by maintaining a disjoint-fragment decomposition:
//! subtracting a box from a box yields at most `2·d` disjoint fragments.
//!
//! Volumes use `u128`: with universes up to ~10⁴ and query lengths up to 7,
//! products stay far below `2¹²⁷`.

use qpo_catalog::Extent;

/// An axis-aligned box: one extent per query subgoal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoxN {
    extents: Vec<Extent>,
}

impl BoxN {
    /// Creates a box from per-axis extents.
    pub fn new(extents: Vec<Extent>) -> Self {
        BoxN { extents }
    }

    /// Number of axes.
    pub fn dims(&self) -> usize {
        self.extents.len()
    }

    /// Per-axis extents.
    pub fn extents(&self) -> &[Extent] {
        &self.extents
    }

    /// Product of extent lengths. The empty product (zero axes) is 1.
    pub fn volume(&self) -> u128 {
        self.extents.iter().map(|e| e.len as u128).product()
    }

    /// True iff some axis is empty (volume zero).
    pub fn is_empty(&self) -> bool {
        self.extents.iter().any(|e| e.is_empty())
    }

    /// Axis-wise intersection; empty on any axis makes the box empty.
    pub fn intersect(&self, other: &BoxN) -> BoxN {
        debug_assert_eq!(self.dims(), other.dims());
        BoxN::new(
            self.extents
                .iter()
                .zip(&other.extents)
                .map(|(a, b)| a.intersect(*b))
                .collect(),
        )
    }

    /// True iff the boxes share volume.
    pub fn overlaps(&self, other: &BoxN) -> bool {
        !self.intersect(other).is_empty()
    }

    /// Subtracts `other`, returning disjoint fragments that exactly cover
    /// `self \ other`. Produces at most `2·dims` fragments.
    pub fn subtract(&self, other: &BoxN) -> Vec<BoxN> {
        let inter = self.intersect(other);
        if inter.is_empty() {
            return if self.is_empty() {
                vec![]
            } else {
                vec![self.clone()]
            };
        }
        let mut fragments = Vec::new();
        // Peel the region outside the intersection one axis at a time:
        // after axis i is processed, `core` matches the intersection on
        // axes 0..=i and `self` on the rest.
        let mut core = self.clone();
        for axis in 0..self.dims() {
            let [left, right] = core.extents[axis].subtract(inter.extents[axis]);
            for piece in [left, right] {
                if !piece.is_empty() {
                    let mut frag = core.clone();
                    frag.extents[axis] = piece;
                    if !frag.is_empty() {
                        fragments.push(frag);
                    }
                }
            }
            core.extents[axis] = inter.extents[axis];
        }
        fragments
    }
}

/// Volume of `target \ ∪ others`, computed by iterated subtraction over a
/// disjoint-fragment worklist.
pub fn residual_volume(target: &BoxN, others: &[BoxN]) -> u128 {
    if target.is_empty() {
        return 0;
    }
    let mut fragments = vec![target.clone()];
    for other in others {
        if other.is_empty() || !target.overlaps(other) {
            continue;
        }
        let mut next = Vec::with_capacity(fragments.len());
        for frag in &fragments {
            next.extend(frag.subtract(other));
        }
        fragments = next;
        if fragments.is_empty() {
            return 0;
        }
    }
    fragments.iter().map(BoxN::volume).sum()
}

/// Volume of `∪ boxes` (inclusion-free: computed by summing residuals of
/// each box against its predecessors).
pub fn union_volume(boxes: &[BoxN]) -> u128 {
    boxes
        .iter()
        .enumerate()
        .map(|(i, b)| residual_volume(b, &boxes[..i]))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bx(extents: &[(u64, u64)]) -> BoxN {
        BoxN::new(extents.iter().map(|&(s, l)| Extent::new(s, l)).collect())
    }

    #[test]
    fn volume_and_empty() {
        assert_eq!(bx(&[(0, 3), (0, 4)]).volume(), 12);
        assert_eq!(bx(&[(0, 3), (5, 0)]).volume(), 0);
        assert!(bx(&[(0, 3), (5, 0)]).is_empty());
        assert!(!bx(&[(0, 1)]).is_empty());
        assert_eq!(BoxN::new(vec![]).volume(), 1, "zero-dim box has volume 1");
    }

    #[test]
    fn intersect_and_overlap() {
        let a = bx(&[(0, 10), (0, 10)]);
        let b = bx(&[(5, 10), (8, 10)]);
        let i = a.intersect(&b);
        assert_eq!(i, bx(&[(5, 5), (8, 2)]));
        assert!(a.overlaps(&b));
        assert!(
            !a.overlaps(&bx(&[(10, 2), (0, 10)])),
            "touching axes don't overlap"
        );
    }

    #[test]
    fn subtract_disjoint_returns_self() {
        let a = bx(&[(0, 5), (0, 5)]);
        let frags = a.subtract(&bx(&[(9, 2), (0, 5)]));
        assert_eq!(frags, vec![a]);
    }

    #[test]
    fn subtract_covering_returns_nothing() {
        let a = bx(&[(2, 3), (2, 3)]);
        assert!(a.subtract(&bx(&[(0, 10), (0, 10)])).is_empty());
    }

    #[test]
    fn subtract_fragments_are_disjoint_and_conserve_volume() {
        let a = bx(&[(0, 10), (0, 10), (0, 10)]);
        let b = bx(&[(3, 4), (5, 10), (0, 2)]);
        let frags = a.subtract(&b);
        let inter = a.intersect(&b);
        let total: u128 = frags.iter().map(BoxN::volume).sum();
        assert_eq!(total + inter.volume(), a.volume());
        for (i, f) in frags.iter().enumerate() {
            assert!(!f.overlaps(&inter), "fragment {i} overlaps removed region");
            for g in &frags[i + 1..] {
                assert!(!f.overlaps(g), "fragments overlap each other");
            }
        }
    }

    /// Brute-force volume on small grids for cross-checking.
    fn grid_residual(target: &BoxN, others: &[BoxN]) -> u128 {
        fn points(b: &BoxN) -> Vec<Vec<u64>> {
            let mut pts = vec![vec![]];
            for e in b.extents() {
                let mut next = Vec::new();
                for p in &pts {
                    for v in e.start..e.end() {
                        let mut q = p.clone();
                        q.push(v);
                        next.push(q);
                    }
                }
                pts = next;
            }
            pts
        }
        let inside = |b: &BoxN, p: &[u64]| b.extents().iter().zip(p).all(|(e, &v)| e.contains(v));
        points(target)
            .iter()
            .filter(|p| !others.iter().any(|o| inside(o, p)))
            .count() as u128
    }

    #[test]
    fn residual_matches_grid_bruteforce() {
        let target = bx(&[(0, 6), (2, 5)]);
        let others = [
            bx(&[(1, 3), (0, 4)]),
            bx(&[(4, 4), (3, 9)]),
            bx(&[(0, 1), (0, 20)]),
        ];
        assert_eq!(
            residual_volume(&target, &others),
            grid_residual(&target, &others)
        );
    }

    #[test]
    fn residual_matches_grid_bruteforce_3d() {
        let target = bx(&[(0, 4), (0, 4), (0, 4)]);
        let others = [
            bx(&[(0, 2), (0, 2), (0, 2)]),
            bx(&[(1, 3), (1, 3), (1, 3)]),
            bx(&[(3, 1), (0, 4), (2, 2)]),
        ];
        assert_eq!(
            residual_volume(&target, &others),
            grid_residual(&target, &others)
        );
    }

    #[test]
    fn residual_corner_cases() {
        let t = bx(&[(0, 5)]);
        assert_eq!(residual_volume(&t, &[]), 5);
        assert_eq!(residual_volume(&t, std::slice::from_ref(&t)), 0);
        assert_eq!(residual_volume(&bx(&[(0, 0)]), &[]), 0, "empty target");
        // Duplicated subtrahends change nothing.
        let o = bx(&[(0, 2)]);
        assert_eq!(residual_volume(&t, &[o.clone(), o.clone(), o]), 3);
    }

    #[test]
    fn union_volume_examples() {
        assert_eq!(union_volume(&[]), 0);
        assert_eq!(union_volume(&[bx(&[(0, 4)]), bx(&[(2, 4)])]), 6);
        assert_eq!(
            union_volume(&[
                bx(&[(0, 2), (0, 2)]),
                bx(&[(1, 2), (1, 2)]),
                bx(&[(0, 3), (0, 3)])
            ]),
            9
        );
    }
}
