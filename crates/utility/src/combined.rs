//! Weighted combinations of utility measures.
//!
//! Example 1.2 of the paper: "preferences over coverage and cost can be
//! modeled with the utility measure `u(p) = α·coverage(p) + β·cost(p)`,
//! where α and β are constants specifying the tradeoffs". [`Combined`]
//! implements the general form `w_a·u_a + w_b·u_b` over any two measures
//! (remember that cost-like measures here already return *negated* costs,
//! so both weights are non-negative).

use crate::context::ExecutionContext;
use crate::measure::{as_concrete, UtilityMeasure};
use qpo_catalog::ProblemInstance;
use qpo_interval::Interval;

/// The weighted sum `w_a·u_a(p|·) + w_b·u_b(p|·)`.
///
/// Structural properties compose conservatively:
/// - diminishing returns holds iff it holds for both components (with
///   non-negative weights, a sum of non-increasing utilities is
///   non-increasing);
/// - two plans are independent iff both components say so;
/// - monotonicity is not claimed (even two fully monotonic components may
///   rank a bucket's sources differently), so Greedy does not apply;
/// - abstract independence witnesses are only certified for concrete
///   plans — a shared witness for both components cannot be derived from
///   the components' separate witnesses, so Streamer recycles fewer links
///   under combined measures (correctness is unaffected).
pub struct Combined<A, B> {
    a: A,
    b: B,
    weight_a: f64,
    weight_b: f64,
}

impl<A: UtilityMeasure, B: UtilityMeasure> Combined<A, B> {
    /// Creates the combination `weight_a·a + weight_b·b`.
    ///
    /// # Panics
    /// Panics if a weight is negative or non-finite (negative weights
    /// would silently break the diminishing-returns composition).
    pub fn new(a: A, weight_a: f64, b: B, weight_b: f64) -> Self {
        assert!(
            weight_a >= 0.0 && weight_a.is_finite(),
            "invalid weight {weight_a}"
        );
        assert!(
            weight_b >= 0.0 && weight_b.is_finite(),
            "invalid weight {weight_b}"
        );
        Combined {
            a,
            b,
            weight_a,
            weight_b,
        }
    }

    /// The component measures.
    pub fn components(&self) -> (&A, &B) {
        (&self.a, &self.b)
    }

    /// The weights.
    pub fn weights(&self) -> (f64, f64) {
        (self.weight_a, self.weight_b)
    }
}

impl<A: UtilityMeasure, B: UtilityMeasure> UtilityMeasure for Combined<A, B> {
    fn name(&self) -> &'static str {
        "combined"
    }

    fn utility(&self, inst: &ProblemInstance, plan: &[usize], ctx: &ExecutionContext) -> f64 {
        self.weight_a * self.a.utility(inst, plan, ctx)
            + self.weight_b * self.b.utility(inst, plan, ctx)
    }

    fn utility_interval(
        &self,
        inst: &ProblemInstance,
        candidates: &[Vec<usize>],
        ctx: &ExecutionContext,
    ) -> Interval {
        if let Some(plan) = as_concrete(candidates) {
            return Interval::point(self.utility(inst, &plan, ctx));
        }
        self.a
            .utility_interval(inst, candidates, ctx)
            .scale(self.weight_a)
            + self
                .b
                .utility_interval(inst, candidates, ctx)
                .scale(self.weight_b)
    }

    fn diminishing_returns(&self) -> bool {
        self.a.diminishing_returns() && self.b.diminishing_returns()
    }

    fn context_free(&self) -> bool {
        self.a.context_free() && self.b.context_free()
    }

    fn monotone_subgoals(&self, inst: &ProblemInstance) -> Vec<bool> {
        vec![false; inst.query_len()]
    }

    fn independent(&self, inst: &ProblemInstance, p: &[usize], q: &[usize]) -> bool {
        self.a.independent(inst, p, q) && self.b.independent(inst, p, q)
    }

    fn all_independent(
        &self,
        inst: &ProblemInstance,
        candidates: &[Vec<usize>],
        d: &[usize],
    ) -> bool {
        self.a.all_independent(inst, candidates, d) && self.b.all_independent(inst, candidates, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::FailureCost;
    use crate::coverage::Coverage;
    use qpo_catalog::{Extent, ProblemInstance, SourceStats};

    fn inst() -> ProblemInstance {
        let src = |s, l, alpha: f64| {
            SourceStats::new()
                .with_extent(Extent::new(s, l))
                .with_transmission_cost(alpha)
        };
        ProblemInstance::new(
            1.0,
            vec![20, 20],
            vec![
                vec![src(0, 8, 0.5), src(5, 8, 1.0), src(14, 6, 0.1)],
                vec![src(0, 10, 0.3), src(9, 10, 0.8)],
            ],
        )
        .unwrap()
    }

    fn combined() -> Combined<Coverage, FailureCost> {
        // Coverage ∈ [0,1]; scale it up so both terms matter.
        Combined::new(Coverage, 100.0, FailureCost::without_caching(), 1.0)
    }

    #[test]
    fn utility_is_the_weighted_sum() {
        let inst = inst();
        let ctx = ExecutionContext::new();
        let m = combined();
        let plan = [0usize, 1];
        let expected = 100.0 * Coverage.utility(&inst, &plan, &ctx)
            + FailureCost::without_caching().utility(&inst, &plan, &ctx);
        assert_eq!(m.utility(&inst, &plan, &ctx), expected);
        assert_eq!(m.weights(), (100.0, 1.0));
        assert_eq!(m.components().0.name(), "coverage");
    }

    #[test]
    fn interval_contains_members_and_is_point_for_concrete() {
        let inst = inst();
        let mut ctx = ExecutionContext::new();
        ctx.record(&[1, 0]);
        let m = combined();
        let cands = vec![vec![0, 1, 2], vec![0, 1]];
        let iv = m.utility_interval(&inst, &cands, &ctx);
        for p in inst.all_plans() {
            let u = m.utility(&inst, &p, &ctx);
            assert!(
                iv.lo() - 1e-9 <= u && u <= iv.hi() + 1e-9,
                "{u} outside {iv} for {p:?}"
            );
        }
        assert!(m
            .utility_interval(&inst, &[vec![2], vec![1]], &ctx)
            .is_point());
    }

    #[test]
    fn structural_properties_compose() {
        let inst = inst();
        let m = combined();
        assert!(m.diminishing_returns(), "both components diminish");
        assert!(!m.is_fully_monotonic(&inst));
        // Independence = conjunction: failure-cost is always independent,
        // so the combined verdict equals coverage's.
        assert_eq!(
            m.independent(&inst, &[0, 0], &[2, 0]),
            Coverage.independent(&inst, &[0, 0], &[2, 0])
        );
        assert!(!m.independent(&inst, &[0, 0], &[1, 0]));
        // With a caching component, diminishing returns is lost.
        let with_cache = Combined::new(Coverage, 1.0, FailureCost::with_caching(), 1.0);
        assert!(!with_cache.diminishing_returns());
    }

    #[test]
    fn zero_weight_erases_a_component() {
        let inst = inst();
        let ctx = ExecutionContext::new();
        let only_cost = Combined::new(Coverage, 0.0, FailureCost::without_caching(), 1.0);
        for p in inst.all_plans() {
            assert_eq!(
                only_cost.utility(&inst, &p, &ctx),
                FailureCost::without_caching().utility(&inst, &p, &ctx)
            );
        }
    }

    #[test]
    #[should_panic(expected = "invalid weight")]
    fn rejects_negative_weights() {
        let _ = Combined::new(Coverage, -1.0, Coverage, 1.0);
    }
}
