//! Execution context: the plans assumed already executed.
//!
//! The paper's utility is `u(p | p1, ..., pl, Q)` — the worth of `p` *given*
//! that `p1..pl` ran first (§2). The context records those plans and, for
//! caching-aware measures, the set of source operations whose results are
//! cached (one operation per `(bucket, source)` pair; see DESIGN.md for the
//! source-level caching approximation).

use std::collections::BTreeSet;

/// The ordered list of executed plans plus a cached-operation index.
#[derive(Debug, Clone, Default)]
pub struct ExecutionContext {
    executed: Vec<Vec<usize>>,
    /// Per bucket, the set of source indices whose operation is cached.
    cached: Vec<BTreeSet<usize>>,
    /// Monotone modification counter: bumped on every [`record`] and every
    /// successful [`retract`]. Memoization layers key cached utilities on
    /// this value so context-sensitive results are invalidated the instant
    /// the context changes.
    ///
    /// [`record`]: ExecutionContext::record
    /// [`retract`]: ExecutionContext::retract
    epoch: u64,
}

/// Equality compares the executed history and cache index only; the epoch
/// is a modification counter, not part of the context's meaning (a context
/// that records and then retracts a plan equals its former self).
impl PartialEq for ExecutionContext {
    fn eq(&self, other: &Self) -> bool {
        self.executed == other.executed && self.cached == other.cached
    }
}

impl Eq for ExecutionContext {}

impl ExecutionContext {
    /// An empty context: nothing executed, nothing cached.
    pub fn new() -> Self {
        ExecutionContext::default()
    }

    /// Records a plan as executed (appended to the history; its source
    /// operations become cached).
    pub fn record(&mut self, plan: &[usize]) {
        if self.cached.len() < plan.len() {
            self.cached.resize_with(plan.len(), BTreeSet::new);
        }
        for (bucket, &index) in plan.iter().enumerate() {
            self.cached[bucket].insert(index);
        }
        self.executed.push(plan.to_vec());
        self.epoch += 1;
    }

    /// Retracts the most recent occurrence of `plan` from the history — the
    /// runtime's correction when a plan assumed executed turned out to fail
    /// (its source operations never ran, so nothing of it is cached).
    /// Rebuilds the cached-operation index from the surviving plans.
    /// Returns `false` (and changes nothing) if the plan is not in the
    /// history.
    pub fn retract(&mut self, plan: &[usize]) -> bool {
        let Some(pos) = self.executed.iter().rposition(|p| p == plan) else {
            return false;
        };
        self.executed.remove(pos);
        for set in &mut self.cached {
            set.clear();
        }
        for executed in &self.executed {
            for (bucket, &index) in executed.iter().enumerate() {
                self.cached[bucket].insert(index);
            }
        }
        self.epoch += 1;
        true
    }

    /// The modification epoch: strictly increases on every [`record`] and
    /// every successful [`retract`]. Two reads returning the same epoch
    /// bracket a window in which the context did not change, so any
    /// context-dependent value computed inside the window is still valid.
    ///
    /// [`record`]: ExecutionContext::record
    /// [`retract`]: ExecutionContext::retract
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The executed plans, oldest first.
    pub fn executed(&self) -> &[Vec<usize>] {
        &self.executed
    }

    /// Number of executed plans.
    pub fn len(&self) -> usize {
        self.executed.len()
    }

    /// True iff nothing has been executed.
    pub fn is_empty(&self) -> bool {
        self.executed.is_empty()
    }

    /// True iff the operation `(bucket, index)` has a cached result.
    pub fn is_cached(&self, bucket: usize, index: usize) -> bool {
        self.cached.get(bucket).is_some_and(|s| s.contains(&index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut ctx = ExecutionContext::new();
        assert!(ctx.is_empty());
        assert!(!ctx.is_cached(0, 0));

        ctx.record(&[2, 5]);
        ctx.record(&[2, 7]);
        assert_eq!(ctx.len(), 2);
        assert_eq!(ctx.executed(), &[vec![2, 5], vec![2, 7]]);
        assert!(ctx.is_cached(0, 2));
        assert!(ctx.is_cached(1, 5) && ctx.is_cached(1, 7));
        assert!(!ctx.is_cached(1, 2), "caching is per bucket");
        assert!(!ctx.is_cached(9, 0), "out-of-range bucket is not cached");
    }

    #[test]
    fn retract_removes_plan_and_rebuilds_cache() {
        let mut ctx = ExecutionContext::new();
        ctx.record(&[2, 5]);
        ctx.record(&[2, 7]);
        assert!(ctx.retract(&[2, 5]));
        assert_eq!(ctx.executed(), &[vec![2, 7]]);
        assert!(ctx.is_cached(0, 2), "still cached via the surviving plan");
        assert!(ctx.is_cached(1, 7));
        assert!(!ctx.is_cached(1, 5), "uniquely-owned operation uncached");
        assert!(!ctx.retract(&[9, 9]), "unknown plan is a no-op");
        assert_eq!(ctx.len(), 1);
    }

    #[test]
    fn retract_takes_the_most_recent_duplicate() {
        let mut ctx = ExecutionContext::new();
        ctx.record(&[0]);
        ctx.record(&[1]);
        ctx.record(&[0]);
        assert!(ctx.retract(&[0]));
        assert_eq!(ctx.executed(), &[vec![0], vec![1]]);
        assert!(ctx.is_cached(0, 0), "earlier duplicate keeps the cache");
    }

    #[test]
    fn retract_then_record_round_trips() {
        let mut ctx = ExecutionContext::new();
        ctx.record(&[3, 1]);
        let snapshot = ctx.clone();
        ctx.record(&[4, 2]);
        assert!(ctx.retract(&[4, 2]));
        assert_eq!(ctx, snapshot);
    }

    #[test]
    fn epoch_bumps_on_every_mutation_but_not_on_noops() {
        let mut ctx = ExecutionContext::new();
        assert_eq!(ctx.epoch(), 0);
        ctx.record(&[1, 2]);
        assert_eq!(ctx.epoch(), 1);
        ctx.record(&[3, 4]);
        assert_eq!(ctx.epoch(), 2);
        assert!(ctx.retract(&[1, 2]));
        assert_eq!(ctx.epoch(), 3, "successful retract bumps");
        assert!(!ctx.retract(&[9, 9]));
        assert_eq!(ctx.epoch(), 3, "failed retract is a no-op");
        // Equality ignores the epoch: same content, different history.
        let mut other = ExecutionContext::new();
        other.record(&[3, 4]);
        assert_eq!(ctx, other);
        assert_ne!(ctx.epoch(), other.epoch());
    }

    #[test]
    fn order_is_preserved() {
        let mut ctx = ExecutionContext::new();
        ctx.record(&[1]);
        ctx.record(&[0]);
        assert_eq!(ctx.executed()[0], vec![1]);
        assert_eq!(ctx.executed()[1], vec![0]);
    }
}
