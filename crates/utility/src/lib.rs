//! Utility measures for query plans.
//!
//! The plan-ordering problem (Doan & Halevy, ICDE 2002) is parameterized by
//! a utility measure `u(p | executed plans, Q)`. This crate provides the
//! [`UtilityMeasure`] abstraction and the paper's measures:
//!
//! | Measure | Paper ref | Monotonic | Dim. returns | Independence |
//! |---------|-----------|-----------|--------------|--------------|
//! | [`Coverage`] | §2 Ex. 2.1, Fig 6 a–c | no | yes | disjoint boxes |
//! | [`LinearCost`] | §3 eq. (1) | **fully** | trivially | full |
//! | [`FusionCost`] | §3 eq. (2) | last subgoal / uniform-α | trivially | full |
//! | [`FailureCost`] | §6, Fig 6 d–i | no | no-caching only | no-caching: full; caching: disjoint sources |
//! | [`MonetaryCost`] | §6, Fig 6 j–l | no | no-caching only | as above |
//! | [`Combined`] | §1 Ex. 1.2 | no | both components | both components |
//!
//! Abstract plans (one candidate set per bucket) evaluate to sound
//! [`qpo_interval::Interval`]s; concrete plans evaluate to exact points.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod combined;
pub mod context;
pub mod cost;
pub mod coverage;
pub mod geometry;
pub mod measure;
pub mod monetary;

pub use combined::Combined;
pub use context::ExecutionContext;
pub use cost::{FailureCost, FusionCost, LinearCost};
pub use coverage::Coverage;
pub use geometry::{residual_volume, union_volume, BoxN};
pub use measure::{as_concrete, CountingMeasure, UtilityMeasure};
pub use monetary::MonetaryCost;
