//! The utility-measure abstraction.
//!
//! A measure assigns each concrete plan a real utility — **higher is
//! better**; cost-like measures return negated costs — that may depend on
//! the execution context (§2's `u(p | p1..pl, Q)`). For the abstraction
//! algorithms it must also evaluate *abstract* plans (one candidate set per
//! bucket) to a sound interval, and answer the structural questions the
//! algorithms key on: plan independence, utility-diminishing returns, and
//! (full) monotonicity.

use crate::context::ExecutionContext;
use qpo_catalog::{ProblemInstance, SourceRef};
use qpo_interval::Interval;
use std::sync::atomic::{AtomicU64, Ordering};

/// A utility measure `u(p | executed, Q)` over a [`ProblemInstance`].
///
/// Measures are `Sync`: the ordering kernel fans pending interval
/// evaluations out over a scoped thread pool, sharing one `&M` across
/// workers, so any internal state must be thread-safe (plain data or
/// atomics — see [`CountingMeasure`]).
///
/// # Soundness contracts
///
/// Implementations must uphold:
///
/// - [`utility_interval`](UtilityMeasure::utility_interval) contains
///   [`utility`](UtilityMeasure::utility) of **every** concrete plan in the
///   candidate product, for the same context; for an all-singleton candidate
///   list it must be the exact point.
/// - [`independent`](UtilityMeasure::independent) may only return `true` if
///   neither plan's utility changes when the other is executed (it may
///   return `false` even for independent plans — sound, not complete).
/// - [`all_independent`](UtilityMeasure::all_independent) may only return
///   `true` if **every** concrete plan in the candidate product is
///   independent of `d`.
/// - [`exists_independent`](UtilityMeasure::exists_independent) may only
///   return `true` if **some** concrete plan in the candidate product is
///   independent of every plan in `executed`.
/// - [`diminishing_returns`](UtilityMeasure::diminishing_returns) may only
///   return `true` if no plan's utility can increase as more plans execute.
/// - If [`monotone_subgoals`](UtilityMeasure::monotone_subgoals) is all
///   `true`, then replacing a source by one with a higher
///   [`source_preference`](UtilityMeasure::source_preference) in any plan,
///   under any context, must not lower the plan's utility.
pub trait UtilityMeasure: Sync {
    /// Short identifier used in logs and experiment tables.
    fn name(&self) -> &'static str;

    /// Exact utility of a concrete plan (one source index per bucket).
    fn utility(&self, inst: &ProblemInstance, plan: &[usize], ctx: &ExecutionContext) -> f64;

    /// Sound utility interval for an abstract plan (one non-empty candidate
    /// index set per bucket).
    fn utility_interval(
        &self,
        inst: &ProblemInstance,
        candidates: &[Vec<usize>],
        ctx: &ExecutionContext,
    ) -> Interval;

    /// True iff utilities can never increase as more plans execute.
    fn diminishing_returns(&self) -> bool;

    /// True iff utilities do not depend on the execution context at all
    /// (`u(p | E, Q) = u(p | ∅, Q)` for every `E`). Context-free measures
    /// are fully plan-independent and trivially diminishing-returns; they
    /// also permit merging orderings across disjoint plan spaces (§7).
    /// Defaults to `false` (always sound).
    fn context_free(&self) -> bool {
        false
    }

    /// Per-subgoal monotonicity flags (see §3 of the paper). The measure is
    /// *fully monotonic* iff all entries are `true`.
    fn monotone_subgoals(&self, inst: &ProblemInstance) -> Vec<bool>;

    /// True iff the measure is monotonic with respect to every subgoal.
    fn is_fully_monotonic(&self, inst: &ProblemInstance) -> bool {
        let flags = self.monotone_subgoals(inst);
        !flags.is_empty() && flags.iter().all(|&b| b)
    }

    /// Ranking key for sources within their bucket: replacing a source by
    /// one with a higher key never lowers plan utility. Only meaningful for
    /// fully monotonic measures; the default panics.
    fn source_preference(&self, _inst: &ProblemInstance, _source: SourceRef) -> f64 {
        unimplemented!("{} is not fully monotonic", self.name())
    }

    /// Sound pairwise independence of two concrete plans.
    fn independent(&self, inst: &ProblemInstance, p: &[usize], q: &[usize]) -> bool;

    /// Sound test that *every* concrete plan in `candidates` is independent
    /// of the concrete plan `d`. Default: decide exactly for concrete
    /// candidates, otherwise answer conservatively (`false`).
    fn all_independent(
        &self,
        inst: &ProblemInstance,
        candidates: &[Vec<usize>],
        d: &[usize],
    ) -> bool {
        match as_concrete(candidates) {
            Some(p) => self.independent(inst, &p, d),
            None => false,
        }
    }

    /// Sound test that *some* concrete plan in `candidates` is independent
    /// of every plan in `executed`. Default: decide exactly for concrete
    /// candidates, otherwise answer conservatively (`false`).
    fn exists_independent(
        &self,
        inst: &ProblemInstance,
        candidates: &[Vec<usize>],
        executed: &[Vec<usize>],
    ) -> bool {
        match as_concrete(candidates) {
            Some(p) => executed.iter().all(|e| self.independent(inst, &p, e)),
            None => false,
        }
    }
}

impl<M: UtilityMeasure + ?Sized> UtilityMeasure for &M {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn utility(&self, inst: &ProblemInstance, plan: &[usize], ctx: &ExecutionContext) -> f64 {
        (**self).utility(inst, plan, ctx)
    }
    fn utility_interval(
        &self,
        inst: &ProblemInstance,
        candidates: &[Vec<usize>],
        ctx: &ExecutionContext,
    ) -> Interval {
        (**self).utility_interval(inst, candidates, ctx)
    }
    fn diminishing_returns(&self) -> bool {
        (**self).diminishing_returns()
    }
    fn context_free(&self) -> bool {
        (**self).context_free()
    }
    fn monotone_subgoals(&self, inst: &ProblemInstance) -> Vec<bool> {
        (**self).monotone_subgoals(inst)
    }
    fn source_preference(&self, inst: &ProblemInstance, source: SourceRef) -> f64 {
        (**self).source_preference(inst, source)
    }
    fn independent(&self, inst: &ProblemInstance, p: &[usize], q: &[usize]) -> bool {
        (**self).independent(inst, p, q)
    }
    fn all_independent(
        &self,
        inst: &ProblemInstance,
        candidates: &[Vec<usize>],
        d: &[usize],
    ) -> bool {
        (**self).all_independent(inst, candidates, d)
    }
    fn exists_independent(
        &self,
        inst: &ProblemInstance,
        candidates: &[Vec<usize>],
        executed: &[Vec<usize>],
    ) -> bool {
        (**self).exists_independent(inst, candidates, executed)
    }
}

impl<M: UtilityMeasure + ?Sized> UtilityMeasure for Box<M> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn utility(&self, inst: &ProblemInstance, plan: &[usize], ctx: &ExecutionContext) -> f64 {
        (**self).utility(inst, plan, ctx)
    }
    fn utility_interval(
        &self,
        inst: &ProblemInstance,
        candidates: &[Vec<usize>],
        ctx: &ExecutionContext,
    ) -> Interval {
        (**self).utility_interval(inst, candidates, ctx)
    }
    fn diminishing_returns(&self) -> bool {
        (**self).diminishing_returns()
    }
    fn context_free(&self) -> bool {
        (**self).context_free()
    }
    fn monotone_subgoals(&self, inst: &ProblemInstance) -> Vec<bool> {
        (**self).monotone_subgoals(inst)
    }
    fn source_preference(&self, inst: &ProblemInstance, source: SourceRef) -> f64 {
        (**self).source_preference(inst, source)
    }
    fn independent(&self, inst: &ProblemInstance, p: &[usize], q: &[usize]) -> bool {
        (**self).independent(inst, p, q)
    }
    fn all_independent(
        &self,
        inst: &ProblemInstance,
        candidates: &[Vec<usize>],
        d: &[usize],
    ) -> bool {
        (**self).all_independent(inst, candidates, d)
    }
    fn exists_independent(
        &self,
        inst: &ProblemInstance,
        candidates: &[Vec<usize>],
        executed: &[Vec<usize>],
    ) -> bool {
        (**self).exists_independent(inst, candidates, executed)
    }
}

/// If every candidate set is a singleton, returns the concrete plan.
pub fn as_concrete(candidates: &[Vec<usize>]) -> Option<Vec<usize>> {
    candidates
        .iter()
        .map(|c| if c.len() == 1 { Some(c[0]) } else { None })
        .collect()
}

/// Decorator counting evaluations — the "number of plans evaluated" metric
/// the paper's discussion of Figure 6 relies on.
///
/// Counters are atomic so the decorator stays [`Sync`] and counts remain
/// exact when the ordering kernel evaluates intervals on worker threads.
pub struct CountingMeasure<M> {
    inner: M,
    concrete_evals: AtomicU64,
    interval_evals: AtomicU64,
}

impl<M: UtilityMeasure> CountingMeasure<M> {
    /// Wraps a measure with zeroed counters.
    pub fn new(inner: M) -> Self {
        CountingMeasure {
            inner,
            concrete_evals: AtomicU64::new(0),
            interval_evals: AtomicU64::new(0),
        }
    }

    /// Concrete-plan evaluations so far.
    pub fn concrete_evals(&self) -> u64 {
        self.concrete_evals.load(Ordering::Relaxed)
    }

    /// Abstract-plan (interval) evaluations so far.
    pub fn interval_evals(&self) -> u64 {
        self.interval_evals.load(Ordering::Relaxed)
    }

    /// Total evaluations (the paper counts both: "evaluating an abstract
    /// plan is just slightly more expensive than evaluating a concrete
    /// plan", §5.1).
    pub fn total_evals(&self) -> u64 {
        self.concrete_evals() + self.interval_evals()
    }

    /// Resets both counters.
    pub fn reset(&self) {
        self.concrete_evals.store(0, Ordering::Relaxed);
        self.interval_evals.store(0, Ordering::Relaxed);
    }

    /// The wrapped measure.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: UtilityMeasure> UtilityMeasure for CountingMeasure<M> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn utility(&self, inst: &ProblemInstance, plan: &[usize], ctx: &ExecutionContext) -> f64 {
        self.concrete_evals.fetch_add(1, Ordering::Relaxed);
        self.inner.utility(inst, plan, ctx)
    }

    fn utility_interval(
        &self,
        inst: &ProblemInstance,
        candidates: &[Vec<usize>],
        ctx: &ExecutionContext,
    ) -> Interval {
        self.interval_evals.fetch_add(1, Ordering::Relaxed);
        self.inner.utility_interval(inst, candidates, ctx)
    }

    fn diminishing_returns(&self) -> bool {
        self.inner.diminishing_returns()
    }

    fn context_free(&self) -> bool {
        self.inner.context_free()
    }

    fn monotone_subgoals(&self, inst: &ProblemInstance) -> Vec<bool> {
        self.inner.monotone_subgoals(inst)
    }

    fn source_preference(&self, inst: &ProblemInstance, source: SourceRef) -> f64 {
        self.inner.source_preference(inst, source)
    }

    fn independent(&self, inst: &ProblemInstance, p: &[usize], q: &[usize]) -> bool {
        self.inner.independent(inst, p, q)
    }

    fn all_independent(
        &self,
        inst: &ProblemInstance,
        candidates: &[Vec<usize>],
        d: &[usize],
    ) -> bool {
        self.inner.all_independent(inst, candidates, d)
    }

    fn exists_independent(
        &self,
        inst: &ProblemInstance,
        candidates: &[Vec<usize>],
        executed: &[Vec<usize>],
    ) -> bool {
        self.inner.exists_independent(inst, candidates, executed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpo_catalog::{Extent, SourceStats};

    /// A toy measure for exercising trait defaults: utility = −Σ access
    /// cost, context-free.
    struct Toy;

    impl UtilityMeasure for Toy {
        fn name(&self) -> &'static str {
            "toy"
        }
        fn utility(&self, inst: &ProblemInstance, plan: &[usize], _ctx: &ExecutionContext) -> f64 {
            -inst
                .plan_stats(plan)
                .iter()
                .map(|s| s.access_cost)
                .sum::<f64>()
        }
        fn utility_interval(
            &self,
            inst: &ProblemInstance,
            candidates: &[Vec<usize>],
            _ctx: &ExecutionContext,
        ) -> Interval {
            let mut lo = 0.0;
            let mut hi = 0.0;
            for (b, cands) in candidates.iter().enumerate() {
                let costs = cands.iter().map(|&i| inst.buckets[b][i].access_cost);
                lo -= costs.clone().fold(f64::MIN, f64::max);
                hi -= costs.fold(f64::MAX, f64::min);
            }
            Interval::new(lo, hi)
        }
        fn diminishing_returns(&self) -> bool {
            true
        }
        fn monotone_subgoals(&self, inst: &ProblemInstance) -> Vec<bool> {
            vec![true; inst.query_len()]
        }
        fn source_preference(&self, inst: &ProblemInstance, source: SourceRef) -> f64 {
            -inst.stat(source).access_cost
        }
        fn independent(&self, _inst: &ProblemInstance, _p: &[usize], _q: &[usize]) -> bool {
            true
        }
    }

    fn inst() -> ProblemInstance {
        let src = |c: f64| {
            SourceStats::new()
                .with_extent(Extent::new(0, 10))
                .with_access_cost(c)
        };
        ProblemInstance::new(
            0.0,
            vec![100, 100],
            vec![vec![src(1.0), src(2.0)], vec![src(3.0), src(4.0)]],
        )
        .unwrap()
    }

    #[test]
    fn as_concrete_detects_singletons() {
        assert_eq!(as_concrete(&[vec![3], vec![1]]), Some(vec![3, 1]));
        assert_eq!(as_concrete(&[vec![3], vec![1, 2]]), None);
        assert_eq!(as_concrete(&[]), Some(vec![]));
    }

    #[test]
    fn default_abstract_independence_is_conservative() {
        let inst = inst();
        let toy = Toy;
        // Concrete candidates reduce to the pairwise test.
        assert!(toy.all_independent(&inst, &[vec![0], vec![0]], &[1, 1]));
        assert!(toy.exists_independent(&inst, &[vec![0], vec![0]], &[vec![1, 1]]));
        // Genuinely abstract candidates: defaults answer false.
        assert!(!toy.all_independent(&inst, &[vec![0, 1], vec![0]], &[1, 1]));
        assert!(!toy.exists_independent(&inst, &[vec![0, 1], vec![0]], &[]));
    }

    #[test]
    fn fully_monotonic_flag() {
        let inst = inst();
        assert!(Toy.is_fully_monotonic(&inst));
        assert_eq!(Toy.source_preference(&inst, SourceRef::new(0, 1)), -2.0);
    }

    #[test]
    fn counting_decorator_counts() {
        let inst = inst();
        let m = CountingMeasure::new(Toy);
        let ctx = ExecutionContext::new();
        assert_eq!(m.total_evals(), 0);
        let u = m.utility(&inst, &[0, 0], &ctx);
        assert_eq!(u, -4.0);
        let iv = m.utility_interval(&inst, &[vec![0, 1], vec![0, 1]], &ctx);
        assert!(iv.contains(u));
        assert_eq!(m.concrete_evals(), 1);
        assert_eq!(m.interval_evals(), 1);
        assert_eq!(m.total_evals(), 2);
        m.reset();
        assert_eq!(m.total_evals(), 0);
        assert_eq!(m.name(), "toy");
        assert!(m.diminishing_returns());
        assert!(m.is_fully_monotonic(&inst));
        assert!(m.independent(&inst, &[0, 0], &[1, 1]));
        assert_eq!(m.inner().name(), "toy");
    }

    #[test]
    fn toy_interval_contains_all_members() {
        let inst = inst();
        let ctx = ExecutionContext::new();
        let cands = vec![vec![0, 1], vec![0, 1]];
        let iv = Toy.utility_interval(&inst, &cands, &ctx);
        for p in inst.all_plans() {
            assert!(iv.contains(Toy.utility(&inst, &p, &ctx)), "{p:?}");
        }
    }
}
